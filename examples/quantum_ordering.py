#!/usr/bin/env python
"""The quantum algorithm end to end (simulated), with query accounting.

Runs the paper's OptOBDD(k, alpha) divide-and-conquer with the simulated
Durr-Hoyer minimum finder, shows the modeled quantum query ledger, the
iterated-composition constant of Theorem 13, and the failure behaviour of
the sampled dynamics (Theorem 1: output always valid, minimum w.h.p.).

No quantum hardware is involved — see DESIGN.md's substitution table.

Run:  python examples/quantum_ordering.py
"""

import random

from repro import (
    QuantumMinimumFinder,
    QueryLedger,
    TruthTable,
    opt_obdd,
    run_fs,
    solve_table2,
)
from repro.quantum import durr_hoyer


def main() -> None:
    n = 8
    table = TruthTable.random(n, seed=42)
    reference = run_fs(table)
    print(f"random function on {n} variables; certified minimum OBDD: "
          f"{reference.size} nodes\n")

    # --- exact-mode simulation: true answers + Lemma 6 query accounting
    from repro import OperationCounters

    counters = OperationCounters()
    ledger = QueryLedger()
    finder = QuantumMinimumFinder(ledger=ledger, epsilon=1e-9,
                                  rng=random.Random(0), counters=counters)
    result = opt_obdd(table, finder=finder, counters=counters)
    assert result.mincost == reference.mincost
    print("OptOBDD (simulated quantum, exact mode):")
    print(f"  division levels used: {result.levels}")
    print(f"  minimum found: {result.size} nodes, order {result.order}")
    print(f"  modeled quantum queries: {ledger.total:.0f} "
          f"over {ledger.invocations} minimum-finding calls")
    print(f"  classical evaluations the simulator performed: "
          f"{result.counters.classical_evaluations} "
          "(simulation overhead, not charged)\n")

    # --- sampled mode: actual Durr-Hoyer dynamics, can fail
    print("sampled Durr-Hoyer dynamics (20 runs @ eps=0.01/call):")
    hits = 0
    for trial in range(20):
        sampled = QuantumMinimumFinder(epsilon=0.01, mode="sampled",
                                       rng=random.Random(trial))
        out = opt_obdd(table, finder=sampled)
        hits += out.mincost == reference.mincost
    print(f"  found the true minimum in {hits}/20 runs "
          "(always a valid OBDD either way)\n")

    # --- raw minimum finding: sqrt(N) query scaling
    print("Durr-Hoyer query scaling (mean of 30 sims):")
    print(f"{'N':>6} {'queries':>9} {'q/sqrt(N)':>10}")
    for exponent in (4, 6, 8, 10):
        size = 1 << exponent
        rnd = random.Random(size)
        values = [rnd.randint(0, 10 * size) for _ in range(size)]
        mean = sum(
            durr_hoyer(values, rng=random.Random(t), epsilon=0.05).queries
            for t in range(30)
        ) / 30
        print(f"{size:>6} {mean:>9.1f} {mean / size ** 0.5:>10.2f}")

    # --- Theorem 13: the composition fixed point
    print("\niterated composition (Table 2): exponent base per level")
    for i, row in enumerate(solve_table2(10)):
        print(f"  level {i + 1}: {row.gamma_subroutine:.5f} -> {row.base:.5f}")
    print("final constant (Theorem 13): <= 2.77286")


if __name__ == "__main__":
    main()
