#!/usr/bin/env python
"""Formal verification scenario: adder equivalence checking with OBDDs.

The VLSI-design use case the paper's introduction motivates: two
implementations of the same arithmetic function are equivalent iff their
canonical OBDDs coincide.  We build a gate-level ripple-carry adder
(Corollary 2: circuits are valid inputs), compare it against the
behavioural specification, then use the exact optimizer to pick the
cheapest ordering for the equivalence check — and show how much a naive
ordering costs.

Run:  python examples/circuit_verification.py
"""

from repro import BDD, find_optimal_ordering, obdd_size, to_truth_table
from repro.expr import ripple_carry_adder_circuit
from repro.functions import adder_bit


def main() -> None:
    bits = 3
    print(f"verifying a {bits}-bit ripple-carry adder, bit by bit\n")

    for output in range(bits + 1):
        # Gate-level implementation (netlist) vs behavioural spec.
        circuit = ripple_carry_adder_circuit(bits, output)
        implementation = to_truth_table(circuit)
        specification = adder_bit(bits, output)

        # Canonical-OBDD equivalence: same manager, same ordering ->
        # equivalent functions get the same node id.
        manager = BDD(2 * bits)
        impl_root = manager.from_truth_table(implementation)
        spec_root = manager.from_truth_table(specification)
        verdict = "EQUIVALENT" if impl_root == spec_root else "MISMATCH"

        # Ordering quality for this output bit.
        result = find_optimal_ordering(specification)
        separated = list(range(2 * bits))  # a0..a2 then b0..b2
        interleaved = [v for i in range(bits) for v in (i, i + bits)]
        print(f"sum bit {output}: {verdict}")
        print(f"  OBDD size, operands separated : "
              f"{obdd_size(specification, separated)}")
        print(f"  OBDD size, operands interleaved: "
              f"{obdd_size(specification, interleaved)}")
        print(f"  OBDD size, certified optimal   : {result.size} "
              f"(order {result.order})")
        assert impl_root == spec_root

    # Inject a bug and show the check catches it.
    print("\ninjecting a bug (xor gate swapped for or) ...")
    buggy = ripple_carry_adder_circuit(bits, 1)
    buggy.gates[2] = type(buggy.gates[2])("or", buggy.gates[2].output,
                                          buggy.gates[2].inputs)
    manager = BDD(2 * bits)
    buggy_root = manager.from_truth_table(to_truth_table(buggy))
    spec_root = manager.from_truth_table(adder_bit(bits, 1))
    assert buggy_root != spec_root
    # A counterexample falls out of the XOR of the two diagrams.
    difference = manager.apply_xor(buggy_root, spec_root)
    witness = next(manager.sat_iter(difference))
    a = sum(witness[i] << i for i in range(bits))
    b = sum(witness[i + bits] << i for i in range(bits))
    print(f"bug detected; counterexample: a={a}, b={b} "
          f"(spec bit {(a + b >> 1) & 1}, buggy circuit "
          f"{to_truth_table(buggy).evaluate_packed(a | (b << bits))})")


if __name__ == "__main__":
    main()
