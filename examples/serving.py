#!/usr/bin/env python
"""Ordering as a service: the ``repro serve`` daemon end to end.

A synthesis pipeline or CI fleet that calls the optimizer from many
places wastes most of its wall-clock on per-call setup: pool spin-up,
cold caches, repeated kernel work for functions that are the same up to
variable renaming.  The daemon amortizes all three — one warm execution
backend, one shared canonical result cache, and single-flighted
duplicate requests — behind a newline-delimited-JSON socket.

This example embeds a server in-process (``running_server``; the
standalone form is ``python -m repro serve --port 7421``), drives it
with two clients, submits a whole manifest as one ``solve_many``
request, and reads the metrics that prove the sharing: duplicate
requests cost exactly one kernel sweep.

Run:  python examples/serving.py
"""

from repro.serve import ServeClient, ServeConfig, running_server


def main() -> None:
    # 1. Stand up a daemon: one warm pool, one shared cache.  The
    #    standalone equivalent:
    #    python -m repro serve --backend thread --jobs 2 --timeout 60
    config = ServeConfig(
        backend="thread", jobs=2, max_inflight=2,
        queue_limit=16, default_timeout=60.0,
    )
    with running_server(config) as server:
        host, port = server.address
        print(f"daemon listening on {host}:{port}")

        # 2. First client: a fresh function -> one kernel sweep.
        with ServeClient((host, port)) as client:
            first = client.solve(expr="x0 & x1 | x2 & x3 | x4 & x5",
                                 method="fs")
            order = " ".join(f"x{v}" for v in first["order"])
            print(f"client A: order {order}, {first['mincost']} internal "
                  f"nodes, exact={first['exact']}, "
                  f"from_cache={first['from_cache']}")

        # 3. Second client asks for the *same function with the variables
        #    renamed*.  The canonical fingerprint (support-reduced,
        #    permutation- and complement-canonicalized) matches, so the
        #    shared cache answers with zero kernel work.
        with ServeClient((host, port)) as client:
            second = client.solve(expr="x2 & x3 | x0 & x1 | x4 & x5",
                                  method="fs")
            order = " ".join(f"x{v}" for v in second["order"])
            print(f"client B: order {order}, {second['mincost']} internal "
                  f"nodes, from_cache={second['from_cache']}")

            # 4. Other methods travel too (fs_star does not: its problem
            #    is a live FSState, which has no JSON form).
            window = client.solve(expr="x0 & x1 | x2 & x3 | x4 & x5",
                                  method="window", width=3)
            print(f"window sweep: {window['mincost']} internal nodes "
                  f"(exact={window['exact']})")

            # 5. A whole manifest in one request line: solve_many
            #    fingerprints every item BEFORE queueing, so the three
            #    disguises of one new function below cost one sweep and
            #    the repeat of step 2's function costs none.  Per-item
            #    statuses say how each answer was produced, and every
            #    body is bit-identical to an individual solve's.
            batch = client.solve_many(
                [
                    {"expr": "x0 & x1 & x2 | x3"},
                    {"expr": "x3 | x2 & x1 & x0"},      # renamed duplicate
                    {"expr": "~(x0 & x1 & x2 | x3)"},   # complemented
                    {"expr": "x0 & x1 | x2 & x3 | x4 & x5"},  # step-2 repeat
                ],
                method="fs",
            )
            summary = batch["summary"]
            print(f"solve_many: {summary['items']} items, "
                  f"{summary['unique']} unique functions, statuses "
                  f"{batch['statuses']}")
            for body in batch["results"]:
                result = body["result"]
                print(f"  order={result['order']} "
                      f"mincost={result['mincost']} "
                      f"from_cache={result['from_cache']}")

            # 6. The metrics document proves the sharing: six fs solves
            #    of two distinct functions plus one window sweep — three
            #    kernel sweeps total, everything else cache-served.
            metrics = client.metrics()
            gauges = metrics["server"]
            print(f"server: {gauges['completed']} completed, "
                  f"{gauges['kernel_sweeps']} kernel sweeps, "
                  f"{gauges['cache_hit_solves']} cache-hit solves, "
                  f"{gauges['coalesced']} coalesced")
            print(f"cache : hit rate {metrics['cache']['hit_rate']:.2f} "
                  f"({metrics['cache']['hits']} hits / "
                  f"{metrics['cache']['misses']} misses)")

    # 7. Leaving the context drains the server: admitted work finishes,
    #    the pool and cache shut down cleanly.  The standalone daemon
    #    does the same on SIGTERM and exits 0.
    print("daemon drained cleanly")


if __name__ == "__main__":
    main()
