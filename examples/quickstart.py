#!/usr/bin/env python
"""Quickstart: find the optimal variable ordering for a Boolean function.

This walks the full public API on the paper's running example
``f = x1 x2 + x3 x4 + x5 x6`` (Figure 1): parse it, run the exact
Friedman-Supowit DP, inspect the ordering gap, and export the minimum
OBDD as Graphviz DOT.

Run:  python examples/quickstart.py
"""

from repro import (
    find_optimal_ordering,
    obdd_size,
    parse,
    reconstruct_minimum_diagram,
    to_truth_table,
)


def main() -> None:
    # 1. Describe the function (any evaluable representation works:
    #    expression strings, DNF/CNF, circuits, truth tables, BDD nodes).
    expr = parse("x0 & x1 | x2 & x3 | x4 & x5")
    table = to_truth_table(expr)
    print(f"function: {expr!r} over {table.n} variables")

    # 2. The ordering gap the paper opens with.
    good = [0, 1, 2, 3, 4, 5]
    bad = [0, 2, 4, 1, 3, 5]
    print(f"OBDD size under pairs-adjacent order {good}: "
          f"{obdd_size(table, good)} nodes")
    print(f"OBDD size under odds-then-evens order {bad}: "
          f"{obdd_size(table, bad)} nodes")

    # 3. Certify the optimum with the exact O*(3^n) dynamic program.
    result = find_optimal_ordering(table)
    print(f"\noptimal ordering (read first -> last): {result.order}")
    print(f"minimum OBDD size: {result.size} nodes "
          f"({result.mincost} internal + {result.num_terminals} terminals)")
    print(f"DP work: {result.counters.table_cells} table cells "
          f"(= n * 3^(n-1) = {table.n * 3 ** (table.n - 1)})")

    # 4. All optimal orderings (the achilles function has many ties).
    optima = result.optimal_orderings()
    print(f"number of optimal orderings: {len(optima)}")

    # 5. Materialize the minimum diagram and export it.
    diagram = reconstruct_minimum_diagram(table, result)
    assert diagram.to_truth_table() == table  # certified correct
    print(f"level widths (root to bottom): {diagram.level_widths()}")
    print("\nGraphviz DOT of the minimum OBDD:\n")
    print(diagram.to_dot(name="Minimum"))


if __name__ == "__main__":
    main()
