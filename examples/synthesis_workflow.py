#!/usr/bin/env python
"""End-to-end synthesis workflow: interchange formats, hybrid
optimization, and artifact export.

A miniature version of how a logic-synthesis flow would adopt this
library: read a design (BLIF netlist and a PLA cover), compile it
symbolically, improve its ordering with cheap local methods (in-place
sifting, exact windows), certify with the exact DP, and write the minimum
diagram out as JSON + DOT for downstream tools.

Run:  python examples/synthesis_workflow.py
"""

import tempfile
from pathlib import Path

from repro import ReorderingBDD, exact_window, run_fs, window_sweep
from repro.core import reconstruct_minimum_diagram
from repro.expr import compile_circuit
from repro.bdd import BDD
from repro.functions import c17
from repro.io import (
    diagram_to_json,
    parse_blif,
    parse_pla,
    write_pla,
)

BLIF_DESIGN = """\
.model decode27
.inputs a b c
.outputs y
.names a b t1
11 1
.names t1 c y
1- 1
-1 1
.end
"""


def main() -> None:
    # --- 1. read a BLIF netlist and tabulate it
    network = parse_blif(BLIF_DESIGN)
    table = network.truth_table()
    print(f"BLIF model {network.name!r}: {network.num_vars} inputs, "
          f"{len(network.nodes)} logic nodes")

    # --- 2. exchange through PLA (write, re-read, verify)
    pla_text = write_pla(table)
    assert parse_pla(pla_text).truth_table() == table
    print(f"PLA round-trip OK ({pla_text.count(chr(10)) - 4} cubes):")
    print("  " + pla_text.replace("\n", "\n  ").rstrip())

    # --- 3. the c17 benchmark, compiled symbolically (no 2^n tabulation)
    circuit = c17()
    manager = BDD(circuit.num_vars)
    root = compile_circuit(manager, circuit)
    print(f"\nc17 compiled symbolically: {manager.size(root)} nodes "
          f"under the natural ordering")
    c17_table = manager.to_truth_table(root)

    # --- 4. cheap improvement passes before paying for exactness
    inplace = ReorderingBDD(circuit.num_vars)
    inplace.from_truth_table(c17_table)
    sift_order, sift_size = inplace.sift()
    print(f"in-place sifting : {sift_size} nodes, order {sift_order}")

    windowed = window_sweep(c17_table, initial_order=sift_order, width=3)
    print(f"exact window(3)  : {windowed.size} internal nodes")

    # --- 5. certify with the exact DP and export artifacts
    exact = run_fs(c17_table)
    print(f"certified optimum: {exact.size} nodes, order {exact.order}")
    assert windowed.size >= exact.mincost

    diagram = reconstruct_minimum_diagram(c17_table, exact)
    out_dir = Path(tempfile.mkdtemp(prefix="repro_synthesis_"))
    (out_dir / "c17_min.json").write_text(diagram_to_json(diagram))
    (out_dir / "c17_min.dot").write_text(diagram.to_dot(name="C17"))
    print(f"\nartifacts written to {out_dir}/ (c17_min.json, c17_min.dot)")
    print("equivalent CLI: python -m repro optimize --blif design.blif "
          "--dot c17.dot --json c17.json")


if __name__ == "__main__":
    main()
