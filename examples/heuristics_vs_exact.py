#!/usr/bin/env python
"""Judging heuristic quality with the exact optimizer.

The paper's stated practical role for exact methods: "to judge the
optimization quality of heuristics".  We run the classic heuristics
(Rudell sifting, window permutation, random restarts, greedy
construction) over a mixed workload and report each one's quality ratio
against the certified optimum from the FS dynamic program.

Run:  python examples/heuristics_vs_exact.py
"""

from repro import TruthTable, run_fs, sift, window_permute
from repro.bdd import greedy_append, random_restart_search
from repro.functions import (
    achilles_heel,
    comparator,
    hidden_weighted_bit,
    multiplexer,
    random_dnf_function,
)

WORKLOAD = [
    ("achilles(4)", achilles_heel(4)),
    ("comparator(3)", comparator(3)),
    ("multiplexer(2)", multiplexer(2)),
    ("hwb(6)", hidden_weighted_bit(6)),
    ("random-dnf(7)", random_dnf_function(7, 5, 3, seed=7)),
    ("random(7)", TruthTable.random(7, seed=7)),
]


def main() -> None:
    header = (f"{'function':<15} {'optimal':>7} {'sift':>12} "
              f"{'window3':>12} {'random30':>12} {'greedy':>12}")
    print(header)
    print("-" * len(header))

    totals = {"sift": 0.0, "window3": 0.0, "random30": 0.0, "greedy": 0.0}
    for name, table in WORKLOAD:
        optimum = run_fs(table).size
        results = {
            "sift": sift(table),
            "window3": window_permute(table, window=3),
            "random30": random_restart_search(table, tries=30, seed=1),
            "greedy": greedy_append(table),
        }
        cells = []
        for key in ("sift", "window3", "random30", "greedy"):
            ratio = results[key].size / optimum
            totals[key] += ratio
            cells.append(f"{results[key].size} ({ratio:.2f}x)")
        print(f"{name:<15} {optimum:>7} " + " ".join(f"{c:>12}" for c in cells))

    print("-" * len(header))
    means = {k: v / len(WORKLOAD) for k, v in totals.items()}
    print("mean quality ratio: " + "  ".join(
        f"{k}={v:.3f}" for k, v in means.items()
    ))
    print("\n(1.000 = always optimal; the exact DP is the judge that makes"
          "\n these numbers meaningful — exactly the role the paper assigns it)")


if __name__ == "__main__":
    main()
