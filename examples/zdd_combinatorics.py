#!/usr/bin/env python
"""Combinatorics scenario: minimum ZDDs for families of sparse sets.

The paper's Remark 2 and ZDD appendix: a two-line change to the table
compaction makes the same exact DP minimize zero-suppressed BDDs, the
data structure of choice for sparse set families (Minato, Knuth's
frontier method).  We enumerate the independent sets of a path graph,
build their ZDD, find the ordering that minimizes it exactly, and compare
ZDD vs OBDD sizes as the family gets sparser.

Run:  python examples/zdd_combinatorics.py
"""

from repro import ZDD, ReductionRule, run_fs
from repro.functions import (
    family_truth_table,
    path_independent_sets,
    random_sparse,
)


def main() -> None:
    n = 7
    family = path_independent_sets(n)
    print(f"independent sets of the path on {n} vertices: "
          f"{len(family)} sets (a Fibonacci number)")

    table = family_truth_table(n, family)

    # Exact minimum ZDD via FS with the zero-suppressed compaction rule.
    result = run_fs(table, rule=ReductionRule.ZDD)
    print(f"minimum ZDD: {result.mincost} internal nodes "
          f"under ordering {result.order}")

    # Cross-check on the independent ZDD manager + family algebra.
    manager = ZDD(n, list(result.order))
    root = manager.from_sets(family)
    assert manager.size(root, include_terminals=False) == result.mincost
    assert manager.count(root) == len(family)

    # Family algebra: independent sets that include vertex 0 but not n-1.
    with_zero = manager.subset1(root, 0)
    refined = manager.subset0(with_zero, n - 1)
    print(f"sets containing vertex 0 and avoiding vertex {n - 1}: "
          f"{manager.count(refined)}")

    # Compare against the minimum OBDD of the same characteristic function.
    obdd = run_fs(table, rule=ReductionRule.BDD)
    print(f"\nsame family as an OBDD: {obdd.mincost} internal nodes "
          f"(ZDD/{'OBDD'} ratio {result.mincost / max(obdd.mincost, 1):.2f})")

    # Sparsity sweep: ZDDs pull ahead as the on-set thins out.
    print("\nsparsity sweep (n=6 random functions, exact minima):")
    print(f"{'|on-set|':>9}  {'min ZDD':>8}  {'min OBDD':>9}")
    for ones in (1, 2, 4, 8, 16, 32):
        sparse = random_sparse(6, ones, seed=ones)
        zdd_cost = run_fs(sparse, rule=ReductionRule.ZDD).mincost
        bdd_cost = run_fs(sparse, rule=ReductionRule.BDD).mincost
        print(f"{ones:>9}  {zdd_cost:>8}  {bdd_cost:>9}")


if __name__ == "__main__":
    main()
