#!/usr/bin/env python
"""Multi-output designs: one shared ordering for a whole circuit.

Real circuits compute many outputs over the same inputs, stored in one
shared diagram under one variable ordering.  This example optimizes the
shared forest of a full 3-bit adder (all four sum bits at once) and of
the c17 benchmark's two outputs, quantifies how much node sharing buys,
and shows the conflict penalty when outputs prefer different orderings.

Run:  python examples/multi_output.py
"""

from repro import BDD, run_fs, run_fs_shared
from repro.core import build_forest
from repro.expr import compile_circuit
from repro.functions import (
    achilles_heel,
    adder_bit,
    c17,
    conjunction_of_pairs,
)


def main() -> None:
    # --- a 3-bit adder: four output bits, one ordering for all
    bits = 3
    outputs = [adder_bit(bits, k) for k in range(bits + 1)]
    shared = run_fs_shared(outputs)
    separate = [run_fs(t) for t in outputs]
    print(f"{bits}-bit adder, {len(outputs)} outputs over {2 * bits} inputs")
    print(f"  separately optimal sizes : "
          f"{[r.mincost for r in separate]} (sum "
          f"{sum(r.mincost for r in separate)})")
    print(f"  shared forest optimum    : {shared.mincost} internal nodes")
    print(f"  optimal shared ordering  : {shared.order} "
          "(operands interleaved, as expected)")
    forest = build_forest(outputs, list(shared.order))
    assert forest.to_truth_tables() == outputs
    print(f"  verified: forest reproduces all {len(outputs)} outputs\n")

    # --- c17: compile both outputs symbolically, then optimize jointly
    circuit = c17()
    manager = BDD(circuit.num_vars)
    tables = [
        manager.to_truth_table(compile_circuit(manager, circuit, wire))
        for wire in ("n22", "n23")
    ]
    shared = run_fs_shared(tables)
    print("c17 (ISCAS-85), outputs n22 and n23:")
    print(f"  separate optima : {[run_fs(t).mincost for t in tables]}")
    print(f"  shared optimum  : {shared.mincost} "
          f"(order {shared.order})\n")

    # --- conflicting outputs: two achilles functions with clashing pairs
    f = achilles_heel(3)
    g = conjunction_of_pairs([(0, 3), (1, 4), (2, 5)], 6)
    shared = run_fs_shared([f, g])
    print("conflicting matchings (pairs 01/23/45 vs 03/14/25):")
    print(f"  each alone      : {run_fs(f).mincost} and {run_fs(g).mincost}")
    print(f"  shared optimum  : {shared.mincost} — the price of one order")


if __name__ == "__main__":
    main()
