#!/usr/bin/env python
"""Symbolic model checking: reachability and a safety proof with OBDDs.

The verification workload that made OBDDs famous: encode a protocol's
states as bit vectors, its transitions as a relation over
(current, next) variables, and compute the reachable states as a fixpoint
of symbolic image steps.  We verify mutual exclusion for a two-process
lock protocol, then feed the reachable-set function to the exact
optimizer — tying the verification substrate back to the paper's
ordering problem.

Run:  python examples/model_checking.py
"""

from repro import run_fs
from repro.bdd.symbolic import TransitionSystem

# --- a tiny two-process mutual-exclusion protocol --------------------
# State bits: [p0 wants, p0 critical, p1 wants, p1 critical, turn]
W0, C0, W1, C1, TURN = range(5)


def encode(w0, c0, w1, c1, turn):
    return w0 | (c0 << 1) | (w1 << 2) | (c1 << 3) | (turn << 4)


def successors(state):
    w0 = state & 1
    c0 = (state >> 1) & 1
    w1 = (state >> 2) & 1
    c1 = (state >> 3) & 1
    turn = (state >> 4) & 1
    out = []
    # process 0: request / enter (if its turn and free) / leave
    if not w0 and not c0:
        out.append(encode(1, 0, w1, c1, turn))
    if w0 and not c0 and not c1 and turn == 0:
        out.append(encode(0, 1, w1, c1, turn))
    if c0:
        out.append(encode(0, 0, w1, c1, 1))  # pass the turn
    # process 1 symmetrically
    if not w1 and not c1:
        out.append(encode(w0, c0, 1, 0, turn))
    if w1 and not c1 and not c0 and turn == 1:
        out.append(encode(w0, c0, 0, 1, turn))
    if c1:
        out.append(encode(w0, c0, 0, 0, 0))
    return out


def main() -> None:
    bits = 5
    system = TransitionSystem.from_successor_function(bits, successors)
    initial = [encode(0, 0, 0, 0, 0)]

    result = system.reachable(initial)
    print(f"protocol state space : 2^{bits} = {1 << bits} encodings")
    print(f"reachable states     : {result.num_states} "
          f"in {result.iterations} image steps")
    print(f"frontier BDD sizes   : {result.frontier_sizes}")

    # --- safety: both processes critical simultaneously?
    violations = [
        encode(w0, 1, w1, 1, turn)
        for w0 in (0, 1) for w1 in (0, 1) for turn in (0, 1)
    ]
    safe = not system.can_reach(initial, violations)
    print(f"mutual exclusion     : {'PROVED' if safe else 'VIOLATED'}")
    assert safe

    # --- liveness-ish sanity: each process can reach its critical section
    p0_critical = [s for s in range(1 << bits) if (s >> 1) & 1]
    p1_critical = [s for s in range(1 << bits) if (s >> 3) & 1]
    print(f"p0 can enter         : {system.can_reach(initial, p0_critical)}")
    print(f"p1 can enter         : {system.can_reach(initial, p1_critical)}")

    # --- and back to the paper: order the reachable-set function optimally
    table = system.reachable_set_table(initial)
    exact = run_fs(table)
    natural = sum(
        __import__("repro.truth_table", fromlist=["count_subfunctions"])
        .count_subfunctions(table, list(range(bits)))
    )
    print(f"\nreachable-set OBDD   : {natural} nodes under the natural order,"
          f" {exact.mincost} under the certified optimum {exact.order}")


if __name__ == "__main__":
    main()
