"""The stable front door: ``repro.solve()``.

The repo grew five DP entry points — full FS, shared/multi-rooted FS,
precedence-constrained FS, the exact-window sweep and composable FS* —
each with its own result dataclass and calling convention, because each
is a distinct object of study in the paper.  Scripts that just want "the
best ordering for this problem, by that method" shouldn't need to know
five signatures, so :func:`solve` dispatches on ``method=`` and returns
one :class:`OrderingSolution` shape for all of them.  The ``run_*``
functions remain the full-fidelity interfaces (every method-specific
field lives on ``OrderingSolution.result``); ``solve`` is sugar over
them, never a fork of their logic.

Engine knobs (``engine=``, ``jobs=``, ``backend=``, ``frontier=``,
``frontier_store=``,
``profiler=``, ``checkpoint_dir=``, ``resume=``, ``cache=``,
``budget=``, ``io_retry=``) pass through uniformly — including to
``window`` and ``fs_star``, which natively take an
:class:`~repro.core.engine.EngineConfig` that :func:`solve` assembles
for you.

Orthogonal to ``method=`` sits the **strategy axis**: ``strategy=``
selects *how hard to try* rather than *what to compute*.
``"exact"`` (the default) runs the chosen method as-is;
``"fallback"`` runs the budget-degradation ladder
(:func:`repro.core.budget.run_ladder`, the successor of the deprecated
``optimize_with_fallback``); ``"portfolio"`` races every registered
heuristic (:func:`repro.portfolio.run_portfolio`) and returns the
deterministic winner; and any single registered strategy name (see
:func:`repro.portfolio.available_strategies`) runs that heuristic
standalone.  Inexact strategies always come back ``exact=False`` so
``certify``-style consumers refuse them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .analysis.counters import OperationCounters
from .core.engine import EngineConfig
from .core.spec import FSState, ReductionRule
from .observability import Profiler
from .truth_table import TruthTable

METHODS = ("fs", "shared", "constrained", "window", "fs_star")

# EngineConfig field for each uniformly accepted engine kwarg (None =
# passes through under its own name to the run_* entry points).
_ENGINE_KWARGS: Dict[str, str] = {
    "engine": "kernel",
    "jobs": "jobs",
    "backend": "backend",
    "frontier": "frontier",
    "frontier_store": "frontier_store",
    "profiler": "profiler",
    "checkpoint_dir": "checkpoint_dir",
    "resume": "resume",
    "fault_injector": "fault_injector",
    "cache": "cache",
    "budget": "budget",
    "io_retry": "io_retry",
    "max_pool_rebuilds": "max_pool_rebuilds",
}


@dataclass
class OrderingSolution:
    """What every :func:`solve` method returns.

    The common core of the five DPs: an ordering, its cost, whether the
    method guarantees optimality, and the instrumentation that proves
    what it did.  Method-specific riches (the full ``MINCOST_I`` table,
    window trajectory, ...) stay on :attr:`result`.
    """

    method: str
    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    """Best ordering found, read-first to read-last."""

    mincost: int
    """Internal nodes of the diagram under :attr:`order` (for ``shared``,
    of the whole forest)."""

    exact: bool
    """True when the method guarantees :attr:`order` is globally optimal
    (``fs``/``shared``/``constrained``/``fs_star``); the window sweep is
    locally exact but globally heuristic, so ``False``."""

    counters: OperationCounters
    num_terminals: Optional[int] = None
    profile: Optional[Profiler] = None
    """The profiler passed in ``engine_kwargs``, if any, after the run."""

    result: Any = None
    """The method's native result object (``FSResult``,
    ``ConstrainedResult``, ``WindowResult``, the final ``FSState``, a
    ``FallbackResult``, a ``StrategyResult`` or a ``PortfolioResult``)."""

    strategy: str = "exact"
    """Which ``solve(strategy=...)`` axis produced this solution:
    ``"exact"``, ``"fallback"``, ``"portfolio"`` or a registered
    strategy name."""

    rung: Optional[str] = None
    """For inexact strategies, the specific producer of :attr:`order`:
    the ladder rung that completed (``strategy="fallback"``), the
    winning member (``strategy="portfolio"``), or the strategy itself.
    ``None`` for plain exact solves."""

    @property
    def size(self) -> int:
        """Total node count including terminals (Figure 1 convention)."""
        return self.mincost + (self.num_terminals or 0)

    @property
    def from_cache(self) -> bool:
        """True when the native result was served by a
        :class:`~repro.core.cache.ResultCache` hit (zero kernel work);
        methods without cache support simply report ``False``."""
        return bool(getattr(self.result, "from_cache", False))

    def to_wire(self) -> Dict[str, Any]:
        """JSON-able summary of this solution — the ``result`` body the
        :mod:`repro.serve` daemon returns.  Single ``solve`` responses
        and ``solve_many`` per-item bodies both come from here, which is
        what makes them bit-identical by construction."""
        return {
            "method": self.method,
            "strategy": self.strategy,
            "rung": self.rung,
            "rule": self.rule.value,
            "n": self.n,
            "order": list(self.order),
            "mincost": self.mincost,
            "size": self.size,
            "num_terminals": self.num_terminals,
            "exact": self.exact,
            "from_cache": self.from_cache,
            "counters": self.counters.snapshot(),
        }


def _as_table(problem: Any, n: Optional[int] = None) -> TruthTable:
    if isinstance(problem, TruthTable):
        return problem
    from .expr import to_truth_table  # deferred: expr imports this package

    return to_truth_table(problem, n)


def _split_engine_kwargs(
    method: str, kwargs: Dict[str, Any]
) -> Dict[str, Any]:
    unknown = sorted(set(kwargs) - set(_ENGINE_KWARGS))
    if unknown:
        raise TypeError(
            f"solve(method={method!r}) got unexpected keyword argument(s) "
            f"{unknown}; engine options are {sorted(_ENGINE_KWARGS)}"
        )
    return kwargs


def _engine_config(method: str, kwargs: Dict[str, Any]) -> EngineConfig:
    _split_engine_kwargs(method, kwargs)
    return EngineConfig(
        **{_ENGINE_KWARGS[name]: value for name, value in kwargs.items()}
    )


# The subset of engine kwargs the inexact strategy paths accept (no
# frontier policy / fault injection / io_retry: strategies run many
# small exact sweeps and never checkpoint mid-heuristic).
_STRATEGY_ENGINE_KWARGS = (
    "engine", "jobs", "backend", "frontier_store", "profiler", "cache",
    "budget", "checkpoint_dir", "resume", "max_pool_rebuilds",
)


def _strategy_engine_kwargs(
    strategy: str, kwargs: Dict[str, Any]
) -> Dict[str, Any]:
    unknown = sorted(set(kwargs) - set(_STRATEGY_ENGINE_KWARGS))
    if unknown:
        raise TypeError(
            f"solve(strategy={strategy!r}) got unexpected keyword "
            f"argument(s) {unknown}; engine options are "
            f"{sorted(_STRATEGY_ENGINE_KWARGS)}"
        )
    return dict(kwargs)


def solve(
    problem: Any,
    *,
    method: str = "fs",
    strategy: str = "exact",
    strategies: Optional[Tuple[str, ...]] = None,
    fallback_rungs: Any = None,
    seed: int = 0,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    n: Optional[int] = None,
    precedence: Any = None,
    j_mask: Optional[int] = None,
    initial_order: Optional[Tuple[int, ...]] = None,
    width: int = 3,
    max_rounds: int = 10,
    **engine_kwargs: Any,
) -> OrderingSolution:
    """Find a variable ordering for ``problem`` by the chosen method.

    Parameters
    ----------
    problem:
        What to optimize.  For ``fs``/``constrained``/``window``: a
        :class:`~repro.truth_table.TruthTable`, or anything
        :func:`repro.expr.to_truth_table` accepts (pass ``n=`` for a bare
        callable).  For ``shared``: a sequence of such.  For ``fs_star``:
        a base :class:`~repro.core.spec.FSState` whose chain the solve
        extends.
    method:
        ``"fs"`` — the exact ``O*(3^n)`` DP (the paper's Theorem 5);
        ``"shared"`` — exact over a multi-output forest;
        ``"constrained"`` — exact among orderings honoring
        ``precedence=`` (a sequence of ``(earlier, later)`` pairs);
        ``"window"`` — the Lemma-8 exact-window sweep (``initial_order=``
        / ``width=`` / ``max_rounds=``), locally exact, globally
        heuristic; ``"fs_star"`` — optimally place the variables of
        ``j_mask=`` below an existing chain (Lemma 8 composability).
    strategy:
        How hard to try (orthogonal to ``method``, which must stay
        ``"fs"`` for anything but ``"exact"``): ``"exact"`` runs the
        method as-is; ``"fallback"`` runs the degradation ladder
        (``fallback_rungs=`` names the rungs, built-in or registered
        strategies, default ``fs → window → sift``); ``"portfolio"``
        races registered heuristics (``strategies=`` restricts the
        field, ``seed=`` feeds the stochastic members) and returns the
        deterministic best-``(size, name)`` winner; any registered
        strategy name runs that one heuristic standalone.
    counters:
        Optional instrumentation sink (a fresh one is created and
        returned on the solution otherwise).
    **engine_kwargs:
        Uniform execution knobs, identical across methods: ``engine``,
        ``jobs``, ``backend``, ``frontier``, ``frontier_store``,
        ``profiler``, ``checkpoint_dir``, ``resume``, ``fault_injector``,
        ``cache``, ``budget``, ``io_retry``, ``max_pool_rebuilds``.

    Returns
    -------
    OrderingSolution
        The method-independent view; the native result object rides on
        ``.result``.
    """
    if method not in METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {list(METHODS)}"
        )
    if counters is None:
        counters = OperationCounters()
    profile = engine_kwargs.get("profiler")

    if strategy != "exact":
        if method != "fs":
            raise TypeError(
                f"solve(strategy={strategy!r}) only supports method='fs' "
                f"(got method={method!r}); inexact strategies search "
                "orderings of a single table"
            )
        return _solve_strategy(
            problem, strategy=strategy, strategies=strategies,
            fallback_rungs=fallback_rungs, seed=seed, rule=rule,
            counters=counters, n=n, initial_order=initial_order,
            width=width, max_rounds=max_rounds, profile=profile,
            engine_kwargs=engine_kwargs,
        )
    if strategies is not None:
        raise TypeError(
            "solve() got strategies= without strategy='portfolio'"
        )
    if fallback_rungs is not None:
        raise TypeError(
            "solve() got fallback_rungs= without strategy='fallback'"
        )

    if method == "fs":
        from .core.fs import run_fs

        table = _as_table(problem, n)
        result = run_fs(
            table, rule=rule, counters=counters,
            **_split_engine_kwargs(method, engine_kwargs),
        )
        return OrderingSolution(
            method=method, n=result.n, rule=rule, order=result.order,
            mincost=result.mincost, exact=True, counters=result.counters,
            num_terminals=result.num_terminals, profile=profile,
            result=result,
        )

    if method == "shared":
        from .core.shared import run_fs_shared

        tables = [_as_table(t, n) for t in problem]
        result = run_fs_shared(
            tables, rule=rule, counters=counters,
            **_split_engine_kwargs(method, engine_kwargs),
        )
        return OrderingSolution(
            method=method, n=result.n, rule=rule, order=result.order,
            mincost=result.mincost, exact=True, counters=result.counters,
            num_terminals=result.num_terminals, profile=profile,
            result=result,
        )

    if method == "constrained":
        from .core.constrained import run_fs_constrained

        if precedence is None:
            raise TypeError(
                "solve(method='constrained') requires precedence= — a "
                "sequence of (earlier, later) variable pairs"
            )
        table = _as_table(problem, n)
        result = run_fs_constrained(
            table, precedence, rule=rule, counters=counters,
            **_split_engine_kwargs(method, engine_kwargs),
        )
        return OrderingSolution(
            method=method, n=result.n, rule=rule, order=result.order,
            mincost=result.mincost, exact=True, counters=result.counters,
            num_terminals=result.num_terminals, profile=profile,
            result=result,
        )

    if method == "window":
        from .core.fs import terminal_values
        from .core.window import window_sweep

        table = _as_table(problem, n)
        result = window_sweep(
            table,
            initial_order=initial_order,
            width=width,
            rule=rule,
            max_rounds=max_rounds,
            counters=counters,
            config=_engine_config(method, engine_kwargs),
        )
        return OrderingSolution(
            method=method, n=table.n, rule=rule, order=result.order,
            mincost=result.size, exact=False, counters=result.counters,
            num_terminals=len(terminal_values(table, rule)),
            profile=profile, result=result,
        )

    # method == "fs_star"
    from .core.fs_star import run_fs_star

    if not isinstance(problem, FSState):
        raise TypeError(
            "solve(method='fs_star') takes a base FSState problem "
            f"(got {type(problem).__name__}); build one with "
            "repro.core.fs.initial_state and optional kernel steps"
        )
    if j_mask is None:
        raise TypeError(
            "solve(method='fs_star') requires j_mask= — the mask of "
            "variables to place optimally below the existing chain"
        )
    final = run_fs_star(
        problem, j_mask, rule, counters,
        config=_engine_config(method, engine_kwargs),
    )
    return OrderingSolution(
        method=method, n=final.n, rule=rule,
        order=tuple(reversed(final.pi)), mincost=final.mincost,
        exact=True, counters=counters,
        num_terminals=final.num_terminals, profile=profile, result=final,
    )


def _solve_strategy(
    problem: Any,
    *,
    strategy: str,
    strategies: Optional[Tuple[str, ...]],
    fallback_rungs: Any,
    seed: int,
    rule: ReductionRule,
    counters: OperationCounters,
    n: Optional[int],
    initial_order: Optional[Tuple[int, ...]],
    width: int,
    max_rounds: int,
    profile: Optional[Profiler],
    engine_kwargs: Dict[str, Any],
) -> OrderingSolution:
    """The inexact side of :func:`solve`: ladder, portfolio, or one
    registered strategy.  Always ``method="fs"`` (the orderings are
    scored by exact FS-family sweeps) and ``exact`` only when the
    ladder's exact rung finished."""
    if strategies is not None and strategy != "portfolio":
        raise TypeError(
            "solve() got strategies= without strategy='portfolio'"
        )
    if fallback_rungs is not None and strategy != "fallback":
        raise TypeError(
            "solve() got fallback_rungs= without strategy='fallback'"
        )
    table = _as_table(problem, n)
    kwargs = _strategy_engine_kwargs(strategy, engine_kwargs)

    if strategy == "fallback":
        from .core.budget import run_ladder

        outcome = run_ladder(
            table,
            budget=kwargs.get("budget"),
            rule=rule,
            counters=counters,
            engine=kwargs.get("engine", "numpy"),
            jobs=kwargs.get("jobs", 1),
            backend=kwargs.get("backend", "thread"),
            cache=kwargs.get("cache"),
            profiler=kwargs.get("profiler"),
            window_width=width,
            checkpoint_dir=kwargs.get("checkpoint_dir"),
            resume=kwargs.get("resume", False),
            frontier_store=kwargs.get("frontier_store", "dict"),
            fallback_rungs=fallback_rungs,
        )
        return OrderingSolution(
            method="fs", n=outcome.n, rule=rule, order=outcome.order,
            mincost=outcome.mincost, exact=outcome.exact,
            counters=outcome.counters, num_terminals=outcome.num_terminals,
            profile=profile, result=outcome, strategy=strategy,
            rung=outcome.rung,
        )

    config = EngineConfig(
        kernel=kwargs.get("engine", "numpy"),
        jobs=kwargs.get("jobs", 1),
        backend=kwargs.get("backend", "thread"),
        frontier_store=kwargs.get("frontier_store", "dict"),
        profiler=kwargs.get("profiler"),
        cache=kwargs.get("cache"),
        budget=kwargs.get("budget"),
        checkpoint_dir=kwargs.get("checkpoint_dir"),
        resume=kwargs.get("resume", False),
        max_pool_rebuilds=kwargs.get("max_pool_rebuilds"),
        strategy=strategy,
    )

    if strategy == "portfolio":
        from .portfolio import run_portfolio

        presult = run_portfolio(
            table, strategies=strategies, rule=rule, counters=counters,
            seed=seed, initial_order=initial_order, max_rounds=max_rounds,
            config=config,
        )
        return OrderingSolution(
            method="fs", n=presult.n, rule=rule, order=presult.order,
            mincost=presult.mincost, exact=False, counters=presult.counters,
            num_terminals=presult.num_terminals, profile=profile,
            result=presult, strategy=strategy, rung=presult.winner,
        )

    from .portfolio import run_strategy

    sresult = run_strategy(
        strategy, table, rule=rule, counters=counters, seed=seed,
        initial_order=initial_order, max_rounds=max_rounds, config=config,
    )
    return OrderingSolution(
        method="fs", n=sresult.n, rule=rule, order=sresult.order,
        mincost=sresult.mincost, exact=False, counters=sresult.counters,
        num_terminals=sresult.num_terminals, profile=profile,
        result=sresult, strategy=strategy, rung=strategy,
    )
