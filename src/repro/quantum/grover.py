"""Grover-search dynamics: the analytic model behind the simulator.

These are the standard closed forms for Grover's algorithm [Gro96] and the
BBHT exponential search used inside Durr-Hoyer minimum finding: success
probability after ``j`` iterations with ``t`` of ``N`` items marked, the
optimal iteration count, and expected query costs.  The simulator in
:mod:`repro.quantum.minimum_finding` draws its coin flips from these
formulas, so the *measured* behaviour of the simulated algorithm matches
the theory the paper builds on.
"""

from __future__ import annotations

import math


def success_probability(num_items: int, num_marked: int, iterations: int) -> float:
    """P[measure a marked item] after ``iterations`` Grover iterations.

    ``sin^2((2j+1) * theta)`` with ``sin^2(theta) = t/N``.  With ``t = 0``
    the probability is 0; with ``t = N`` it is 1 regardless of ``j``.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if not 0 <= num_marked <= num_items:
        raise ValueError("num_marked out of range")
    if num_marked == 0:
        return 0.0
    theta = math.asin(math.sqrt(num_marked / num_items))
    return math.sin((2 * iterations + 1) * theta) ** 2


def optimal_iterations(num_items: int, num_marked: int) -> int:
    """Iteration count maximizing the success probability (``~ pi/4 sqrt(N/t)``)."""
    if num_marked <= 0:
        raise ValueError("need at least one marked item")
    theta = math.asin(math.sqrt(num_marked / num_items))
    return max(0, round(math.pi / (4 * theta) - 0.5))


def bbht_expected_queries(num_items: int, num_marked: int) -> float:
    """Expected queries of BBHT exponential search: ``O(sqrt(N/t))``.

    The classic bound is at most ``9/2 * sqrt(N/t)``; we return the
    ``sqrt(N/t)`` shape with that constant, used by benches as the
    theoretical reference curve.
    """
    if num_marked <= 0:
        return math.inf
    return 4.5 * math.sqrt(num_items / num_marked)


def durr_hoyer_expected_queries(num_items: int) -> float:
    """Expected queries of one Durr-Hoyer run: ``O(sqrt(N))``.

    Durr and Hoyer bound the expectation by ``22.5 * sqrt(N)``; benches use
    the ``sqrt(N)`` shape.
    """
    return 22.5 * math.sqrt(num_items)
