"""Simulated quantum minimum finding (Durr-Hoyer + small-error wrapper).

Lemma 6 of the paper: for ``f : [N] -> Z`` given as an oracle there is a
quantum algorithm finding an ``x`` minimizing ``f(x)`` with error at most
``epsilon`` using ``O(sqrt(N log(1/epsilon)))`` queries.

This module provides two interchangeable *minimum finders* used by the
divide-and-conquer algorithms in :mod:`repro.core`:

* :class:`ClassicalMinimumFinder` — evaluates every candidate; exact.
* :class:`QuantumMinimumFinder` — a classical **simulation** of the quantum
  algorithm.  In ``mode="exact"`` it returns the true minimum and charges
  the Lemma 6 query bound to a :class:`~repro.quantum.ledger.QueryLedger`
  (this is how the end-to-end algorithms keep exponentially-small error
  while the benches still observe the modeled query counts).  In
  ``mode="sampled"`` it actually runs the Durr-Hoyer threshold dynamics,
  drawing Grover coin flips from the closed-form success probabilities in
  :mod:`repro.quantum.grover` — so it can return a non-minimal element with
  exactly the failure behaviour the theory predicts, which the benches
  measure.

The simulator necessarily inspects all candidate values to *emulate the
physics* (computing how many items are better than the current threshold);
those classical evaluations are simulation overhead and are accounted
separately from the modeled quantum queries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from ..analysis.counters import OperationCounters
from .grover import success_probability
from .ledger import QueryLedger

CostFn = Callable[[int], float]


@dataclass
class MinimumOutcome:
    """Result of one minimum-finding call."""

    index: int
    cost: float
    queries: float
    """Modeled quantum queries (0 for the classical finder)."""

    evaluations: int
    """Classical cost-function evaluations actually performed."""

    exact: bool
    """Whether the returned element is guaranteed minimal."""


class MinimumFinder(Protocol):
    """Strategy interface used by the divide-and-conquer algorithms."""

    def find(self, num_candidates: int, cost_at: CostFn) -> MinimumOutcome:
        """Return (an estimate of) the minimizing candidate index."""


class ClassicalMinimumFinder:
    """Exact scan over all candidates (the classical baseline)."""

    def __init__(self, counters: Optional[OperationCounters] = None) -> None:
        self.counters = counters

    def find(self, num_candidates: int, cost_at: CostFn) -> MinimumOutcome:
        if num_candidates <= 0:
            raise ValueError("need at least one candidate")
        best_index = 0
        best_cost = cost_at(0)
        for i in range(1, num_candidates):
            cost = cost_at(i)
            if cost < best_cost:
                best_cost = cost
                best_index = i
        if self.counters is not None:
            self.counters.classical_evaluations += num_candidates
        return MinimumOutcome(
            index=best_index,
            cost=best_cost,
            queries=0.0,
            evaluations=num_candidates,
            exact=True,
        )


class QuantumMinimumFinder:
    """Simulated Durr-Hoyer minimum finding (see module docstring).

    Parameters
    ----------
    ledger:
        Sink for the modeled quantum query counts.
    epsilon:
        Target error probability per call (the paper uses
        ``epsilon = 2^-p(n)`` so the polynomial overhead keeps the overall
        error exponentially small).
    mode:
        ``"exact"`` (default) or ``"sampled"`` — see module docstring.
    rng:
        Source of randomness for the sampled dynamics.
    """

    def __init__(
        self,
        ledger: Optional[QueryLedger] = None,
        epsilon: float = 1e-6,
        mode: str = "exact",
        rng: Optional[random.Random] = None,
        counters: Optional[OperationCounters] = None,
    ) -> None:
        if mode not in ("exact", "sampled"):
            raise ValueError(f"unknown mode {mode!r}")
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.ledger = ledger if ledger is not None else QueryLedger()
        self.epsilon = epsilon
        self.mode = mode
        self.rng = rng if rng is not None else random.Random()
        self.counters = counters

    # ------------------------------------------------------------------
    def find(self, num_candidates: int, cost_at: CostFn) -> MinimumOutcome:
        if num_candidates <= 0:
            raise ValueError("need at least one candidate")
        values = [cost_at(i) for i in range(num_candidates)]
        if self.counters is not None:
            self.counters.classical_evaluations += num_candidates
        if self.mode == "exact":
            queries = self.ledger.charge_minimum_finding(num_candidates, self.epsilon)
            if self.counters is not None:
                self.counters.oracle_queries += int(queries)
            best_index = min(range(num_candidates), key=lambda i: values[i])
            return MinimumOutcome(
                index=best_index,
                cost=values[best_index],
                queries=queries,
                evaluations=num_candidates,
                exact=True,
            )
        outcome = durr_hoyer(values, rng=self.rng, epsilon=self.epsilon)
        self.ledger.charge(outcome.queries, phase="minimum_finding")
        if self.counters is not None:
            self.counters.oracle_queries += int(outcome.queries)
        return MinimumOutcome(
            index=outcome.index,
            cost=values[outcome.index],
            queries=outcome.queries,
            evaluations=num_candidates,
            exact=False,
        )


@dataclass
class DHOutcome:
    """Raw outcome of the simulated Durr-Hoyer dynamics."""

    index: int
    queries: float
    succeeded: bool
    """Whether the returned index attains the true minimum."""

    rounds: int
    """Threshold updates performed."""


def durr_hoyer(
    values: Sequence[float],
    rng: Optional[random.Random] = None,
    epsilon: float = 0.1,
    growth: float = 1.2,
) -> DHOutcome:
    """Simulate Durr-Hoyer minimum finding over explicit ``values``.

    One base run follows the original algorithm: keep a threshold item,
    repeatedly run BBHT exponential Grover search for a strictly better
    item (coin flips drawn from the exact success probability), replace the
    threshold by a uniformly random better item on success, and stop when a
    total budget of ``22.5 * sqrt(N)`` queries is exhausted.  The run is
    repeated ``ceil(log2(1/epsilon))`` times, keeping the best threshold
    seen, which drives the failure probability below ``epsilon`` (each base
    run fails with probability at most 1/2).
    """
    if rng is None:
        rng = random.Random()
    n = len(values)
    if n == 0:
        raise ValueError("values must be non-empty")
    true_min = min(values)
    repetitions = max(1, math.ceil(math.log2(1.0 / epsilon)))
    total_queries = 0.0
    best_index = rng.randrange(n)
    rounds = 0

    for _ in range(repetitions):
        index = rng.randrange(n)
        total_queries += 1  # query to learn the initial threshold's value
        budget = 22.5 * math.sqrt(n)
        spent = 0.0
        while spent < budget:
            better = [i for i in range(n) if values[i] < values[index]]
            if not better:
                break
            t = len(better)
            # BBHT exponential search for one of the `t` marked items.
            m = 1.0
            found = False
            while spent < budget:
                j = rng.randrange(int(m) + 1)
                spent += j + 1  # j Grover iterations + 1 verification query
                if rng.random() < success_probability(n, t, j):
                    index = rng.choice(better)
                    rounds += 1
                    found = True
                    break
                m = min(growth * m, math.sqrt(n))
            if not found:
                break
        total_queries += spent
        if values[index] < values[best_index]:
            best_index = index

    return DHOutcome(
        index=best_index,
        queries=total_queries,
        succeeded=values[best_index] == true_min,
        rounds=rounds,
    )
