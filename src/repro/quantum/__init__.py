"""Simulated QRAM-model quantum substrate.

No quantum hardware is involved (see the substitution table in DESIGN.md):
the algorithms of the paper are exercised classically, the *dynamics* of
Grover search / Durr-Hoyer minimum finding are simulated from their exact
closed forms, and the query complexity a quantum computer would incur is
charged to a :class:`~repro.quantum.ledger.QueryLedger` which the
benchmarks read.
"""

from .grover import (
    bbht_expected_queries,
    durr_hoyer_expected_queries,
    optimal_iterations,
    success_probability,
)
from .ledger import QueryLedger, lemma6_query_bound
from .statevector import (
    BBHTRun,
    GroverRun,
    bbht_search,
    StatevectorMinimumRun,
    diffusion,
    grover_iterate,
    grover_search,
    grover_state,
    measured_success_probability,
    oracle_phase_flip,
    statevector_minimum,
    uniform_state,
)
from .minimum_finding import (
    ClassicalMinimumFinder,
    DHOutcome,
    MinimumFinder,
    MinimumOutcome,
    QuantumMinimumFinder,
    durr_hoyer,
)

__all__ = [
    "QueryLedger",
    "lemma6_query_bound",
    "success_probability",
    "optimal_iterations",
    "bbht_expected_queries",
    "durr_hoyer_expected_queries",
    "MinimumFinder",
    "MinimumOutcome",
    "ClassicalMinimumFinder",
    "QuantumMinimumFinder",
    "DHOutcome",
    "durr_hoyer",
    "uniform_state",
    "oracle_phase_flip",
    "diffusion",
    "grover_iterate",
    "grover_state",
    "measured_success_probability",
    "grover_search",
    "GroverRun",
    "statevector_minimum",
    "StatevectorMinimumRun",
    "BBHTRun",
    "bbht_search",
]
