"""Explicit statevector simulation of Grover's algorithm.

The Durr-Hoyer simulator in :mod:`repro.quantum.minimum_finding` draws its
coin flips from the *closed-form* Grover success probability.  This module
grounds that closed form: it simulates Grover's algorithm on an explicit
``2^m``-amplitude statevector (oracle phase flip + diffusion about the
mean) and measures the success probability directly, so the tests can
assert the formula against genuine unitary dynamics rather than taking it
on faith.  It also runs complete Grover *searches* (iterate, measure,
verify) and a statevector-level minimum-finding round.

This is the deepest level of the quantum substitution (DESIGN.md): the
paper's QRAM machine -> closed-form dynamics -> explicit unitaries, each
layer validated against the next.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .grover import optimal_iterations, success_probability


def uniform_state(num_items: int) -> np.ndarray:
    """The equal-superposition initial state over ``num_items`` basis
    states (``num_items`` need not be a power of two; the diffusion
    operator below reflects about this state)."""
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    state = np.full(num_items, 1.0 / math.sqrt(num_items), dtype=np.complex128)
    return state


def oracle_phase_flip(state: np.ndarray, marked: Sequence[int]) -> np.ndarray:
    """Apply the phase oracle ``|x> -> -|x>`` for marked ``x``."""
    out = state.copy()
    for index in marked:
        out[index] = -out[index]
    return out


def diffusion(state: np.ndarray) -> np.ndarray:
    """Grover diffusion: reflection about the uniform superposition."""
    mean = state.mean()
    return 2.0 * mean - state


def grover_iterate(state: np.ndarray, marked: Sequence[int]) -> np.ndarray:
    """One Grover iteration (oracle then diffusion)."""
    return diffusion(oracle_phase_flip(state, marked))


def grover_state(num_items: int, marked: Sequence[int], iterations: int) -> np.ndarray:
    """The statevector after ``iterations`` Grover iterations."""
    state = uniform_state(num_items)
    for _ in range(iterations):
        state = grover_iterate(state, marked)
    return state


def measured_success_probability(
    num_items: int, marked: Sequence[int], iterations: int
) -> float:
    """Total probability mass on the marked states — measured from the
    explicit statevector, to be compared against
    :func:`repro.quantum.grover.success_probability`."""
    state = grover_state(num_items, marked, iterations)
    return float(sum(abs(state[m]) ** 2 for m in set(marked)))


@dataclass
class GroverRun:
    """Outcome of a complete Grover search on the statevector."""

    outcome: int
    succeeded: bool
    iterations: int
    oracle_calls: int


def grover_search(
    num_items: int,
    is_marked: Callable[[int], bool],
    num_marked: int,
    rng: Optional[random.Random] = None,
) -> GroverRun:
    """Run Grover's algorithm end to end on the statevector.

    Uses the optimal iteration count for the known ``num_marked``,
    measures in the computational basis, and verifies the outcome with
    one more oracle call (as the real algorithm would).
    """
    if rng is None:
        rng = random.Random()
    marked = [x for x in range(num_items) if is_marked(x)]
    if len(marked) != num_marked:
        raise ValueError(
            f"is_marked marks {len(marked)} items, caller claimed {num_marked}"
        )
    if not marked:
        return GroverRun(outcome=rng.randrange(num_items), succeeded=False,
                         iterations=0, oracle_calls=1)
    iterations = optimal_iterations(num_items, num_marked)
    state = grover_state(num_items, marked, iterations)
    probabilities = np.abs(state) ** 2
    probabilities /= probabilities.sum()
    outcome = rng.choices(range(num_items), weights=probabilities)[0]
    return GroverRun(
        outcome=outcome,
        succeeded=is_marked(outcome),
        iterations=iterations,
        oracle_calls=iterations + 1,
    )


@dataclass
class BBHTRun:
    """Outcome of exponential (unknown-count) search on the statevector."""

    outcome: int
    succeeded: bool
    oracle_calls: int
    attempts: int


def bbht_search(
    num_items: int,
    is_marked: Callable[[int], bool],
    rng: Optional[random.Random] = None,
    growth: float = 1.2,
    max_oracle_calls: Optional[int] = None,
) -> BBHTRun:
    """Boyer-Brassard-Hoyer-Tapp search with UNKNOWN marked count,
    executed on the explicit statevector.

    This removes the last idealization of :func:`grover_search` (which is
    told ``num_marked``): the iteration count is drawn uniformly from a
    geometrically growing range, each attempt runs real unitaries, and
    measurement/verification decide success — exactly the subroutine the
    Durr-Hoyer closed-form simulator models.
    """
    if rng is None:
        rng = random.Random()
    marked = [x for x in range(num_items) if is_marked(x)]
    if max_oracle_calls is None:
        max_oracle_calls = int(45 * math.sqrt(num_items)) + 10
    oracle_calls = 0
    attempts = 0
    bound = 1.0
    while oracle_calls < max_oracle_calls:
        attempts += 1
        iterations = rng.randrange(int(bound) + 1)
        state = grover_state(num_items, marked, iterations)
        probabilities = np.abs(state) ** 2
        probabilities /= probabilities.sum()
        outcome = rng.choices(range(num_items), weights=probabilities)[0]
        oracle_calls += iterations + 1  # +1 to verify the measurement
        if is_marked(outcome):
            return BBHTRun(outcome=outcome, succeeded=True,
                           oracle_calls=oracle_calls, attempts=attempts)
        bound = min(growth * bound, math.sqrt(num_items))
    return BBHTRun(outcome=rng.randrange(num_items), succeeded=False,
                   oracle_calls=oracle_calls, attempts=attempts)


@dataclass
class StatevectorMinimumRun:
    """Outcome of statevector-level Durr-Hoyer minimum finding."""

    index: int
    succeeded: bool
    oracle_calls: int
    threshold_updates: int


def statevector_minimum(
    values: Sequence[float],
    rng: Optional[random.Random] = None,
    max_rounds: Optional[int] = None,
) -> StatevectorMinimumRun:
    """Durr-Hoyer minimum finding with every Grover run executed on the
    explicit statevector (small inputs only — cost is per-round
    ``O(iterations * N)``).

    Each round searches for an item strictly below the current threshold
    using the optimal iteration count for the true marked count (the
    textbook idealization; the BBHT exponential search in
    :mod:`repro.quantum.minimum_finding` removes that idealization at the
    closed-form level).
    """
    if rng is None:
        rng = random.Random()
    n = len(values)
    if n == 0:
        raise ValueError("values must be non-empty")
    if max_rounds is None:
        max_rounds = 4 * n  # generous; expected rounds are O(log n)
    index = rng.randrange(n)
    oracle_calls = 1
    updates = 0
    for _ in range(max_rounds):
        threshold = values[index]
        marked = [i for i in range(n) if values[i] < threshold]
        if not marked:
            break
        run = grover_search(
            n, lambda i: values[i] < threshold, len(marked), rng
        )
        oracle_calls += run.oracle_calls
        if run.succeeded:
            index = run.outcome
            updates += 1
    return StatevectorMinimumRun(
        index=index,
        succeeded=values[index] == min(values),
        oracle_calls=oracle_calls,
        threshold_updates=updates,
    )
