"""Query-cost ledger for the simulated quantum subroutines.

There is no quantum hardware in this reproduction (see DESIGN.md).  The
simulator runs the same algorithmic structure classically and *charges*
this ledger with the query counts a QRAM-model quantum computer would
spend, following Lemma 6: minimum finding over ``N`` candidates with error
``epsilon`` costs ``O(sqrt(N * log(1/epsilon)))`` oracle queries.

Benchmarks read the ledger to reproduce the paper's query-complexity
claims; nothing here ever speeds anything up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class QueryLedger:
    """Accumulates modeled quantum-oracle queries, broken down by phase."""

    total: float = 0.0
    by_phase: Dict[str, float] = field(default_factory=dict)
    invocations: int = 0

    def charge(self, amount: float, phase: str = "minimum_finding") -> None:
        if amount < 0:
            raise ValueError("cannot charge a negative query count")
        self.total += amount
        self.by_phase[phase] = self.by_phase.get(phase, 0.0) + amount
        self.invocations += 1

    def charge_minimum_finding(
        self, num_candidates: int, epsilon: float, phase: str = "minimum_finding"
    ) -> float:
        """Charge Lemma 6's bound for one minimum-finding call.

        Uses ``ceil(sqrt(N * ln(1/epsilon)))`` queries (constant factor 1;
        the paper's ``O*`` hides constants and polynomial factors anyway).
        Returns the amount charged.
        """
        amount = float(
            math.ceil(math.sqrt(max(num_candidates, 1) * math.log(1.0 / epsilon)))
        )
        self.charge(amount, phase)
        return amount

    def snapshot(self) -> Dict[str, float]:
        out = {"total": self.total, "invocations": float(self.invocations)}
        for phase, amount in self.by_phase.items():
            out[f"phase:{phase}"] = amount
        return out


def lemma6_query_bound(num_candidates: int, epsilon: float) -> float:
    """The query bound of Lemma 6 with unit constant."""
    return math.sqrt(max(num_candidates, 1) * math.log(1.0 / epsilon))
