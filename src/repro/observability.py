"""Observability for the FS-family dynamic programs.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; the prerequisite is being able to *see* where a run spends its
time and memory.  This module provides the instrumentation layer the
execution engine (:mod:`repro.core.engine`) emits into:

* :class:`Profiler` — named phase timers plus a per-layer trajectory of
  the subset-cardinality sweep (wall-clock, frontier footprint, subset
  throughput, cumulative operation counters);
* :class:`LayerProfile` — one record per DP layer ``k``;
* :func:`frontier_nbytes` — bytes held by a frontier of
  :class:`~repro.core.spec.FSState` objects (table payloads dominate).

Everything serializes to plain JSON (``Profiler.to_dict`` /
``Profiler.write``) so CLI runs (``repro optimize --profile out.json``)
and benchmarks (``BENCH_*.json``) can record the same trajectory.

Well-known phase names: ``prepare``, ``checkpoint_write`` /
``checkpoint_load``, ``cache_lookup`` / ``cache_store`` /
``canonicalize``, ``budget_check`` — the engine's per-layer-boundary
resource-governance checks (see :mod:`repro.core.budget`), kept as a
phase so operators can verify governance overhead stays negligible —
and ``ipc_submit`` / ``ipc_merge`` — the process execution backend's
per-layer task shipping and result collection
(see :mod:`repro.core.executor`), kept separate so transport cost never
masquerades as kernel time.  Governance events land in the
``budget_aborts`` / ``fallback_used`` / ``retries`` extra counters;
process-backend shipping volume lands in ``tasks_shipped`` /
``bytes_shipped`` (the one pair of counters that legitimately differs
across execution backends).  Self-healing events land in
``pool_rebuilds`` / ``chunks_retried`` — how many times the process
backend rebuilt its crashed worker pool mid-sweep and how many chunks it
resubmitted to the fresh pool; both stay zero on a healthy run, and like
the shipping pair they are transport facts excluded from bit-identity
comparisons.

Wall-clock numbers are honest measurements of *this* process; the paper's
complexity claims are still pinned by the deterministic
:class:`~repro.analysis.counters.OperationCounters`, which the profile
embeds as per-layer snapshots so both views line up.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

# Python-object overhead charged per retained frontier state beyond its
# table payload (dataclass + dict entry + pi tuple; a deliberate round
# figure, not a measurement of a specific interpreter build).
STATE_OVERHEAD_BYTES = 200


def frontier_nbytes(frontier: Any) -> int:
    """Resident bytes of a frontier layer.

    Given a :class:`~repro.core.frontier.FrontierStore` (anything with a
    callable ``nbytes``), this delegates to the store's own accounting —
    exact column-payload bytes for the packed store.  Given the
    historical ``mask -> FSState`` mapping, it falls back to the
    documented *estimate*: the numpy table payload counted exactly plus a
    flat :data:`STATE_OVERHEAD_BYTES` per entry (skeleton entries cost
    only the overhead).  The estimate is deliberately flat — the true
    resident size of a graph of interpreter objects with shared/interned
    tuples is not well-defined, and a ``sys.getsizeof`` walk would double
    count exactly those shared structures.
    """
    nbytes = getattr(frontier, "nbytes", None)
    if callable(nbytes):
        return int(nbytes())
    total = 0
    for state in frontier.values():
        table = getattr(state, "table", None)
        if table is not None:
            total += int(table.nbytes)
        total += STATE_OVERHEAD_BYTES
    return total


@dataclass
class LayerProfile:
    """One layer of the subset-cardinality sweep, as observed."""

    k: int
    """Subset cardinality of this layer."""

    subsets: int
    """Subsets finalized in this layer (feasible ones, if filtered)."""

    wall_seconds: float
    """Wall-clock time spent computing the layer."""

    frontier_states: int
    """States retained after the layer completed."""

    frontier_bytes: int
    """Approximate bytes those states hold (see :func:`frontier_nbytes`)."""

    counters: Dict[str, int] = field(default_factory=dict)
    """Cumulative :meth:`OperationCounters.snapshot` after the layer."""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "subsets": self.subsets,
            "wall_seconds": self.wall_seconds,
            "frontier_states": self.frontier_states,
            "frontier_bytes": self.frontier_bytes,
            "counters": dict(self.counters),
        }


@dataclass
class Profiler:
    """Collects phase timings and the per-layer sweep trajectory.

    A single profiler may span several DP runs (e.g. a window sweep runs
    many FS* solves); layers append in execution order and phases
    accumulate by name.  Pass one to ``run_fs(..., profiler=...)`` or any
    other engine-backed entry point, then ``write(path)`` it.

    Mutation is thread-safe: phase accumulation and layer/peak updates
    are read-modify-write sequences, so a profiler shared by concurrent
    runs (the serve daemon's request workers) would otherwise lose
    updates.  Layers then interleave in completion order across runs —
    honest, if harder to read than a single run's trajectory.
    """

    phases: Dict[str, float] = field(default_factory=dict)
    layers: List[LayerProfile] = field(default_factory=list)
    peak_frontier_bytes: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    """Free-form run description (n, rule, kernel, jobs, ...)."""

    cache: Dict[str, int] = field(default_factory=dict)
    """Result-cache tallies (hits/misses/stores/disk_hits/evictions); see
    :meth:`note_cache_stats`.  Empty when no cache was attached."""

    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; repeated phases accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def record_layer(
        self,
        k: int,
        subsets: int,
        wall_seconds: float,
        frontier_states: int,
        frontier_bytes: int,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        with self._lock:
            self.layers.append(
                LayerProfile(
                    k=k,
                    subsets=subsets,
                    wall_seconds=wall_seconds,
                    frontier_states=frontier_states,
                    frontier_bytes=frontier_bytes,
                    counters=dict(counters or {}),
                )
            )
            if frontier_bytes > self.peak_frontier_bytes:
                self.peak_frontier_bytes = frontier_bytes

    def note_cache_stats(self, stats: Mapping[str, int]) -> None:
        """Embed a :class:`repro.core.cache.CacheStats` snapshot.

        Called once at the end of a cached run (the CLI and
        ``optimize_many`` do this); repeated calls overwrite, so the
        recorded numbers are the cache's final tallies.  The wall-clock
        cost of cache work is already visible under the ``canonicalize``
        / ``cache_lookup`` / ``cache_store`` phases.
        """
        self.cache = dict(stats)

    @property
    def total_layer_seconds(self) -> float:
        return sum(layer.wall_seconds for layer in self.layers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": dict(self.meta),
            "phases": dict(self.phases),
            "cache": dict(self.cache),
            "peak_frontier_bytes": self.peak_frontier_bytes,
            "total_layer_seconds": self.total_layer_seconds,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Emit the profile as JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
