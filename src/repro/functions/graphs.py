"""Graph-derived set families (the frontier-method workloads).

The paper's related work points to variable orderings derived from graph
structure [TT94, SIT95] and to Knuth's frontier method for ZDDs.  These
generators produce the corresponding families for arbitrary
:mod:`networkx` graphs — independent sets, vertex covers, matchings,
cliques — so the ZDD machinery (and the exact ordering optimizer) can be
exercised on structured combinatorial instances.

Vertices must be hashable; they are mapped to ZDD variables by sorted
order unless an explicit ``labels`` mapping is given.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

import networkx as nx

from ..errors import DimensionError


def _vertex_index(graph: nx.Graph) -> Dict[Hashable, int]:
    return {v: i for i, v in enumerate(sorted(graph.nodes))}


def independent_sets(graph: nx.Graph) -> Tuple[List[Set[int]], Dict[Hashable, int]]:
    """All independent vertex sets, over indices ``0..|V|-1``.

    Returns ``(family, vertex_to_index)``.  Exponential output — meant
    for the small instances the exact optimizer can handle anyway.
    """
    index = _vertex_index(graph)
    adjacency = {
        index[v]: {index[u] for u in graph.neighbors(v)} for v in graph.nodes
    }
    family: List[Set[int]] = [set()]
    for v in sorted(adjacency):
        family += [s | {v} for s in family if not (s & adjacency[v])]
    return family, index


def vertex_covers(graph: nx.Graph) -> Tuple[List[Set[int]], Dict[Hashable, int]]:
    """All vertex covers (complement duality with independent sets)."""
    family, index = independent_sets(graph)
    universe = set(index.values())
    return [universe - s for s in family], index


def matchings(graph: nx.Graph) -> Tuple[List[Set[int]], Dict[Tuple, int]]:
    """All matchings, as sets of edge indices.

    Returns ``(family, edge_to_index)`` with edges keyed by sorted
    endpoint pairs.
    """
    edges = [tuple(sorted(e)) for e in graph.edges]
    edges.sort()
    index = {e: i for i, e in enumerate(edges)}
    family: List[Set[int]] = [set()]
    for i, (u, v) in enumerate(edges):
        compatible = [
            s for s in family
            if all(u not in edges[j] and v not in edges[j] for j in s)
        ]
        family += [s | {i} for s in compatible]
    return family, index


def cliques(graph: nx.Graph) -> Tuple[List[Set[int]], Dict[Hashable, int]]:
    """All cliques (including the empty clique and singletons)."""
    index = _vertex_index(graph)
    adjacency = {
        index[v]: {index[u] for u in graph.neighbors(v)} for v in graph.nodes
    }
    family: List[Set[int]] = [set()]
    for v in sorted(adjacency):
        family += [s | {v} for s in family if s <= adjacency[v]]
    return family, index


def family_zdd(graph_family: List[Set[int]], num_vars: int):
    """Build the ZDD of a family returned by the generators above.

    Returns ``(manager, root)``.
    """
    from ..bdd.zdd import ZDD

    if any(any(not 0 <= v < num_vars for v in s) for s in graph_family):
        raise DimensionError("family mentions out-of-range elements")
    manager = ZDD(num_vars)
    return manager, manager.from_sets(graph_family)


def maximal_independent_sets(graph: nx.Graph) -> List[FrozenSet[int]]:
    """Maximal independent sets, computed via the ZDD MAXIMAL operator
    (cross-checkable against networkx's enumerators in the tests)."""
    family, index = independent_sets(graph)
    manager, root = family_zdd(family, len(index))
    return sorted(manager.iter_sets(manager.maximal(root)), key=sorted)
