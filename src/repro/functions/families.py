"""Named Boolean function families used across examples, tests and benches.

Each constructor returns a :class:`~repro.truth_table.TruthTable`.  The
families are the classics of the OBDD-ordering literature, chosen to match
the functions the paper discusses:

* :func:`achilles_heel` — the paper's running example
  ``x1 x2 + x3 x4 + ... + x_{2n-1} x_{2n}`` (Figure 1), whose OBDD size is
  ``2n + 2`` under the pairs-adjacent ordering and ``2^{n+1}`` under the
  odds-then-evens ordering;
* :func:`multiplication_bit` — the multiplication function, exponential
  under *every* ordering [Bry91];
* :func:`threshold` — a threshold function (cf. [HTKY97]);
* :func:`hidden_weighted_bit` — the classic hard-for-OBDD benchmark;
* plus parity, multiplexer, adder, comparator and interval functions as
  ordering-sensitivity showcases.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import DimensionError
from ..truth_table import TruthTable


def achilles_heel(pairs: int) -> TruthTable:
    """The paper's Figure 1 function over ``2 * pairs`` variables:
    ``(x0 & x1) | (x2 & x3) | ...`` (0-indexed pairs-adjacent)."""
    if pairs < 1:
        raise DimensionError("need at least one pair")
    n = 2 * pairs
    a = np.arange(1 << n, dtype=np.int64)
    acc = np.zeros(1 << n, dtype=bool)
    for p in range(pairs):
        acc |= ((a >> (2 * p)) & 1).astype(bool) & ((a >> (2 * p + 1)) & 1).astype(bool)
    return TruthTable(n, acc.astype(np.int64))


def achilles_good_order(pairs: int) -> List[int]:
    """The interleaved-pairs ordering achieving size ``2n + 2``
    (paper's ``(x1, x2, ..., x_{2n})``)."""
    return list(range(2 * pairs))


def achilles_bad_order(pairs: int) -> List[int]:
    """The odds-then-evens ordering forcing size ``2^{n+1}``
    (paper's ``(x1, x3, ..., x_{2n-1}, x2, x4, ..., x_{2n})``)."""
    return list(range(0, 2 * pairs, 2)) + list(range(1, 2 * pairs, 2))


def achilles_good_size(pairs: int) -> int:
    """Closed-form total size under the good ordering: ``2n + 2`` nodes
    for ``n`` pairs (2 internal per pair + 2 terminals)."""
    return 2 * pairs + 2


def achilles_bad_size(pairs: int) -> int:
    """Closed-form total size under the bad ordering: ``2^{n+1}``."""
    return 2 ** (pairs + 1)


def parity(n: int) -> TruthTable:
    """XOR of all variables — total size ``2n + 1`` (``2n - 1`` internal
    nodes) under *every* ordering: the canonical ordering-insensitive
    function."""
    a = np.arange(1 << n, dtype=np.int64)
    bits = np.zeros(1 << n, dtype=np.int64)
    for i in range(n):
        bits ^= (a >> i) & 1
    return TruthTable(n, bits)


def threshold(n: int, k: int) -> TruthTable:
    """``T_k^n``: 1 iff at least ``k`` inputs are 1 (a symmetric function)."""
    if not 0 <= k <= n + 1:
        raise DimensionError(f"threshold {k} out of range for n={n}")
    a = np.arange(1 << n, dtype=np.uint64)
    weights = np.zeros(1 << n, dtype=np.int64)
    for i in range(n):
        weights += ((a >> np.uint64(i)) & np.uint64(1)).astype(np.int64)
    return TruthTable(n, (weights >= k).astype(np.int64))


def majority(n: int) -> TruthTable:
    """Majority: 1 iff more than half the inputs are 1."""
    return threshold(n, n // 2 + 1)


def hidden_weighted_bit(n: int) -> TruthTable:
    """``HWB(x) = x_{wt(x)}`` (1-indexed; 0 when ``wt(x) = 0``) — the
    classic function with no polynomial-size OBDD ordering."""
    size = 1 << n
    values = np.zeros(size, dtype=np.int64)
    for a in range(size):
        weight = bin(a).count("1")
        if weight:
            values[a] = (a >> (weight - 1)) & 1
    return TruthTable(n, values)


def multiplexer(select_bits: int) -> TruthTable:
    """``MUX_k``: ``k`` select variables (low indices) choose one of
    ``2^k`` data variables.  Total ``k + 2^k`` variables — a function whose
    optimal ordering interleaves selects before data."""
    k = select_bits
    n = k + (1 << k)
    if n > 24:
        raise DimensionError("multiplexer too large to tabulate")
    values = np.zeros(1 << n, dtype=np.int64)
    for a in range(1 << n):
        sel = a & ((1 << k) - 1)
        values[a] = (a >> (k + sel)) & 1
    return TruthTable(n, values)


def adder_bit(bits: int, output: int) -> TruthTable:
    """Bit ``output`` of the sum of two ``bits``-bit integers.

    Variables: ``x_0..x_{bits-1}`` are the first operand (little-endian),
    ``x_{bits}..x_{2 bits - 1}`` the second.  ``output`` may be ``bits``
    (the carry-out).  Interleaved operand orderings are optimal; separated
    operands blow up — a standard ordering-sensitivity benchmark.
    """
    if not 0 <= output <= bits:
        raise DimensionError(f"output bit {output} out of range")
    n = 2 * bits
    a = np.arange(1 << n, dtype=np.int64)
    x = a & ((1 << bits) - 1)
    y = a >> bits
    return TruthTable(n, ((x + y) >> output) & 1)


def comparator(bits: int) -> TruthTable:
    """``[x < y]`` over two ``bits``-bit operands (layout as
    :func:`adder_bit`)."""
    n = 2 * bits
    a = np.arange(1 << n, dtype=np.int64)
    x = a & ((1 << bits) - 1)
    y = a >> bits
    return TruthTable(n, (x < y).astype(np.int64))


def equality(bits: int) -> TruthTable:
    """``[x == y]`` over two ``bits``-bit operands."""
    n = 2 * bits
    a = np.arange(1 << n, dtype=np.int64)
    x = a & ((1 << bits) - 1)
    y = a >> bits
    return TruthTable(n, (x == y).astype(np.int64))


def multiplication_bit(bits: int, output: int) -> TruthTable:
    """Bit ``output`` of the product of two ``bits``-bit integers —
    Bryant's function with exponential OBDDs under every ordering.
    The middle bit (``output = bits - 1``) is the hard one."""
    if not 0 <= output < 2 * bits:
        raise DimensionError(f"output bit {output} out of range")
    n = 2 * bits
    a = np.arange(1 << n, dtype=np.int64)
    x = a & ((1 << bits) - 1)
    y = a >> bits
    return TruthTable(n, ((x * y) >> output) & 1)


def interval(n: int, low: int, high: int) -> TruthTable:
    """1 iff the integer value of the input (little-endian) lies in
    ``[low, high]`` — small OBDDs under the natural ordering."""
    if not 0 <= low <= high < (1 << n):
        raise DimensionError("bad interval bounds")
    a = np.arange(1 << n, dtype=np.int64)
    return TruthTable(n, ((a >= low) & (a <= high)).astype(np.int64))


def conjunction_of_pairs(pair_list: Sequence[Tuple[int, int]], n: int) -> TruthTable:
    """OR of ANDs over arbitrary variable pairs — the general form of the
    achilles-heel family, for constructing instances whose optimal
    ordering is a nontrivial matching."""
    a = np.arange(1 << n, dtype=np.int64)
    acc = np.zeros(1 << n, dtype=bool)
    for u, v in pair_list:
        if not (0 <= u < n and 0 <= v < n):
            raise DimensionError(f"pair ({u}, {v}) out of range")
        acc |= (((a >> u) & 1) & ((a >> v) & 1)).astype(bool)
    return TruthTable(n, acc.astype(np.int64))
