"""Named benchmark circuits, built programmatically as gate netlists.

Small classics from the logic-synthesis benchmark tradition, each
returned as a :class:`~repro.expr.circuit.Circuit` so they exercise the
Corollary 2 pipeline (circuit -> truth table -> optimal ordering) and the
symbolic compiler end to end.
"""

from __future__ import annotations

from typing import List

from ..expr.circuit import Circuit


def c17() -> Circuit:
    """ISCAS-85 c17: 5 inputs, 6 NAND gates, 2 outputs (we expose n22;
    use ``output="n23"`` in the compilers for the other).

    The smallest standard benchmark netlist; structure follows the
    published gate list.
    """
    circuit = Circuit(
        inputs=["n1", "n2", "n3", "n6", "n7"], output="n22"
    )
    circuit.add_gate("nand", "n10", ["n1", "n3"])
    circuit.add_gate("nand", "n11", ["n3", "n6"])
    circuit.add_gate("nand", "n16", ["n2", "n11"])
    circuit.add_gate("nand", "n19", ["n11", "n7"])
    circuit.add_gate("nand", "n22", ["n10", "n16"])
    circuit.add_gate("nand", "n23", ["n16", "n19"])
    return circuit


def majority_gate() -> Circuit:
    """Three-input majority from ANDs and ORs (the carry cell)."""
    circuit = Circuit(inputs=["a", "b", "c"], output="maj")
    circuit.add_gate("and", "ab", ["a", "b"])
    circuit.add_gate("and", "ac", ["a", "c"])
    circuit.add_gate("and", "bc", ["b", "c"])
    circuit.add_gate("or", "ab_ac", ["ab", "ac"])
    circuit.add_gate("or", "maj", ["ab_ac", "bc"])
    return circuit


def full_adder_carry_chain(bits: int) -> Circuit:
    """The carry-out of a ``bits``-bit ripple adder built from majority
    cells — strongly ordering-sensitive (interleave vs separate)."""
    a = [f"a{i}" for i in range(bits)]
    b = [f"b{i}" for i in range(bits)]
    circuit = Circuit(inputs=a + b, output=f"c{bits - 1}")
    carry = None
    for i in range(bits):
        if carry is None:
            circuit.add_gate("and", f"c{i}", [a[i], b[i]])
        else:
            circuit.add_gate("and", f"g{i}", [a[i], b[i]])
            circuit.add_gate("xor", f"p{i}", [a[i], b[i]])
            circuit.add_gate("and", f"t{i}", [f"p{i}", carry])
            circuit.add_gate("or", f"c{i}", [f"g{i}", f"t{i}"])
        carry = f"c{i}"
    return circuit


def parity_tree(leaves: int) -> Circuit:
    """Balanced XOR tree over ``leaves`` inputs."""
    inputs = [f"x{i}" for i in range(leaves)]
    circuit = Circuit(inputs=list(inputs), output="p")
    frontier: List[str] = list(inputs)
    counter = 0
    while len(frontier) > 1:
        next_frontier: List[str] = []
        for i in range(0, len(frontier) - 1, 2):
            wire = f"t{counter}"
            counter += 1
            circuit.add_gate("xor", wire, [frontier[i], frontier[i + 1]])
            next_frontier.append(wire)
        if len(frontier) % 2:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
    circuit.add_gate("buf", "p", [frontier[0]])
    return circuit


def mux_tree(select_bits: int) -> Circuit:
    """A ``2^k``-way multiplexer as a tree of 2:1 muxes."""
    k = select_bits
    selects = [f"s{i}" for i in range(k)]
    data = [f"d{i}" for i in range(1 << k)]
    circuit = Circuit(inputs=selects + data, output="y")
    frontier: List[str] = list(data)
    counter = 0
    for level in range(k):
        select = selects[level]
        circuit.add_gate("not", f"ns{level}", [select])
        next_frontier: List[str] = []
        for i in range(0, len(frontier), 2):
            low, high = frontier[i], frontier[i + 1]
            t0 = f"m{counter}a"
            t1 = f"m{counter}b"
            out = f"m{counter}"
            counter += 1
            circuit.add_gate("and", t0, [f"ns{level}", low])
            circuit.add_gate("and", t1, [select, high])
            circuit.add_gate("or", out, [t0, t1])
            next_frontier.append(out)
        frontier = next_frontier
    circuit.add_gate("buf", "y", [frontier[0]])
    return circuit


NAMED_CIRCUITS = {
    "c17": c17,
    "majority": majority_gate,
    "carry4": lambda: full_adder_carry_chain(4),
    "parity8": lambda: parity_tree(8),
    "mux2": lambda: mux_tree(2),
}
