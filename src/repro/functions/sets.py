"""Set families for the ZDD experiments.

ZDDs shine on sparse families of subsets (Minato; Knuth's frontier
method).  These generators produce the structured families the ZDD
examples and benches minimize orderings for.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set

import numpy as np

from ..errors import DimensionError
from ..truth_table import TruthTable


def family_truth_table(n: int, family: List[Set[int]]) -> TruthTable:
    """Characteristic function of a set family over universe ``range(n)``.

    Each member set maps to the assignment with exactly its elements set
    to 1; the ZDD of the resulting function *is* the ZDD of the family.
    """
    minterms = []
    for s in family:
        if any(not 0 <= v < n for v in s):
            raise DimensionError(f"set {s} outside universe of size {n}")
        minterms.append(sum(1 << v for v in s))
    return TruthTable.from_minterms(n, minterms)


def all_k_subsets(n: int, k: int) -> List[Set[int]]:
    """All ``k``-element subsets of ``range(n)``."""
    import itertools

    return [set(c) for c in itertools.combinations(range(n), k)]


def path_independent_sets(n: int) -> List[Set[int]]:
    """Independent sets of the path graph ``0 - 1 - ... - (n-1)``.

    Counted by Fibonacci numbers; the standard frontier-method warm-up.
    """
    families: List[Set[int]] = [set()]
    for v in range(n):
        families += [s | {v} for s in families if (v - 1) not in s]
    return families


def path_matchings(n: int) -> List[Set[int]]:
    """Matchings of the path with ``n`` edges (edge ``i`` joins vertices
    ``i`` and ``i+1``); sets are over edge indices."""
    families: List[Set[int]] = [set()]
    for e in range(n):
        families += [s | {e} for s in families if (e - 1) not in s]
    return families


def cliques_of_random_graph(
    n: int, edge_probability: float = 0.5, seed: Optional[int] = None
) -> List[Set[int]]:
    """All cliques (including empty/singletons) of a random graph on
    ``range(n)`` — an irregular family exercising nontrivial orderings."""
    rng = np.random.default_rng(seed)
    adjacency = [[False] * n for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                adjacency[u][v] = adjacency[v][u] = True

    cliques: List[Set[int]] = [set()]
    for v in range(n):
        cliques += [
            c | {v} for c in cliques if all(adjacency[u][v] for u in c)
        ]
    return cliques


def sparse_random_family(
    n: int, num_sets: int, seed: Optional[int] = None
) -> List[Set[int]]:
    """``num_sets`` distinct random subsets of ``range(n)``."""
    size = 1 << n
    if num_sets > size:
        raise DimensionError(f"cannot draw {num_sets} distinct subsets of 2^{n}")
    rng = np.random.default_rng(seed)
    words = rng.choice(size, size=num_sets, replace=False)
    return [
        {v for v in range(n) if (int(w) >> v) & 1} for w in words
    ]
