"""Random function generators with reproducible seeds.

Random functions are the worst case for ordering heuristics (no structure
to exploit) and the average case for the FS DP (its cost is input-
independent); the benches sweep over these.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import DimensionError
from ..truth_table import TruthTable


def random_boolean(n: int, seed: Optional[int] = None) -> TruthTable:
    """Uniformly random Boolean function on ``n`` variables."""
    return TruthTable.random(n, seed=seed)


def random_sparse(n: int, num_ones: int, seed: Optional[int] = None) -> TruthTable:
    """Random function with exactly ``num_ones`` satisfying assignments.

    Sparse on-sets are the regime where ZDDs beat OBDDs — used by the
    ZDD-vs-BDD benches.
    """
    size = 1 << n
    if not 0 <= num_ones <= size:
        raise DimensionError(f"num_ones {num_ones} out of range for n={n}")
    rng = np.random.default_rng(seed)
    ones = rng.choice(size, size=num_ones, replace=False)
    values = np.zeros(size, dtype=np.int64)
    values[ones] = 1
    return TruthTable(n, values)


def random_multivalued(
    n: int, num_values: int, seed: Optional[int] = None
) -> TruthTable:
    """Uniformly random function into ``{0, ..., num_values - 1}`` (for the
    MTBDD experiments of Remark 2)."""
    if num_values < 1:
        raise DimensionError("need at least one value")
    return TruthTable.random(n, seed=seed, num_values=num_values)


def random_dnf_function(
    n: int, num_terms: int, literals_per_term: int, seed: Optional[int] = None
) -> TruthTable:
    """Random monotone-ish DNF: OR of random terms of random literals.

    Structured randomness: unlike uniform random functions these have
    meaningful optimal orderings, making them good heuristic-gap probes.
    """
    rng = np.random.default_rng(seed)
    a = np.arange(1 << n, dtype=np.int64)
    acc = np.zeros(1 << n, dtype=bool)
    for _ in range(num_terms):
        variables = rng.choice(n, size=min(literals_per_term, n), replace=False)
        signs = rng.integers(0, 2, size=variables.shape[0])
        term = np.ones(1 << n, dtype=bool)
        for v, s in zip(variables, signs):
            bit = ((a >> int(v)) & 1).astype(bool)
            term &= bit if s else ~bit
        acc |= term
    return TruthTable(n, acc.astype(np.int64))


def random_ordering(n: int, seed: Optional[int] = None) -> List[int]:
    """A uniformly random variable ordering."""
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.permutation(n)]
