"""Node records shared by the decision-diagram managers.

All managers in :mod:`repro.bdd` address nodes by small integer ids.  Ids
``0`` and ``1`` are reserved for the FALSE and TRUE terminals of Boolean
diagrams (matching the paper's convention that "the pointers to the two
terminal nodes ... are the integers 0 and 1"); multi-terminal diagrams
allocate one terminal id per distinct function value.
"""

from __future__ import annotations

from dataclasses import dataclass

FALSE = 0
TRUE = 1


@dataclass(frozen=True)
class Node:
    """An internal decision node.

    Attributes
    ----------
    level:
        Position in the variable ordering, ``0`` is the root level (read
        first).  Terminals live at level ``n``.
    var:
        The variable index tested at this node.
    lo:
        Id of the 0-successor (the paper's ``u_0``).
    hi:
        Id of the 1-successor (the paper's ``u_1``).
    """

    level: int
    var: int
    lo: int
    hi: int
