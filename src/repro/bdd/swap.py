"""In-place dynamic reordering: adjacent level swaps on a live node graph.

The heuristics in :mod:`repro.bdd.reorder` evaluate candidate orderings by
re-costing the truth table; production BDD packages instead *mutate* the
diagram with adjacent level swaps (Rudell).  This module provides that
substrate: a manager whose nodes store their variable (levels are derived
from the manager's current order), an in-place :meth:`ReorderingBDD.swap`
of two adjacent levels that touches only the affected nodes, and a real
swap-based sifting implementation on top.

Swapping adjacent variables never changes any represented function — only
the diagram's shape — so external root handles stay valid across swaps.
Uniqueness collisions during a swap (a rewritten node becoming equal to an
existing one) are handled with forwarding entries that all traversals
resolve and that :meth:`ReorderingBDD.collect` compacts away.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import DimensionError, OrderingError
from ..truth_table import TruthTable
from .node import FALSE, TRUE

_Triple = Tuple[int, int, int]  # (var, lo, hi)


class ReorderingBDD:
    """A reduced OBDD manager supporting in-place adjacent level swaps.

    Node ids 0/1 are the F/T terminals.  Each internal node stores
    ``(var, lo, hi)``; its level is ``position_of(var)`` in the manager's
    current :attr:`order`.  Registered roots (see :meth:`protect`) survive
    garbage collection and remain valid across swaps.
    """

    def __init__(self, num_vars: int, order: Optional[Sequence[int]] = None) -> None:
        if num_vars < 0:
            raise DimensionError("num_vars must be non-negative")
        if order is None:
            order = list(range(num_vars))
        order = list(order)
        if sorted(order) != list(range(num_vars)):
            raise OrderingError(f"{order!r} is not an ordering of range({num_vars})")
        self.num_vars = num_vars
        self.order: List[int] = order
        self._position: Dict[int, int] = {v: i for i, v in enumerate(order)}
        self._nodes: Dict[int, _Triple] = {}
        self._forward: Dict[int, int] = {}
        self._unique: Dict[_Triple, int] = {}
        self._next_id = 2
        self._roots: Set[int] = set()

    # ------------------------------------------------------------------
    # id plumbing
    # ------------------------------------------------------------------
    def resolve(self, u: int) -> int:
        """Follow forwarding chains (with path compression)."""
        seen = []
        while u in self._forward:
            seen.append(u)
            u = self._forward[u]
        for s in seen:
            self._forward[s] = u
        return u

    def is_terminal(self, u: int) -> bool:
        return self.resolve(u) in (FALSE, TRUE)

    def triple(self, u: int) -> _Triple:
        return self._nodes[self.resolve(u)]

    def var_of(self, u: int) -> int:
        return self.triple(u)[0]

    def level(self, u: int) -> int:
        u = self.resolve(u)
        if u in (FALSE, TRUE):
            return self.num_vars
        return self._position[self._nodes[u][0]]

    def make(self, var: int, lo: int, hi: int) -> int:
        """Canonical constructor (both OBDD reduction rules)."""
        lo = self.resolve(lo)
        hi = self.resolve(hi)
        if lo == hi:
            return lo
        key = (var, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        u = self._next_id
        self._next_id += 1
        self._nodes[u] = key
        self._unique[key] = u
        return u

    def var(self, v: int) -> int:
        if not 0 <= v < self.num_vars:
            raise DimensionError(f"variable {v} out of range")
        return self.make(v, FALSE, TRUE)

    # ------------------------------------------------------------------
    # roots and garbage collection
    # ------------------------------------------------------------------
    def protect(self, u: int) -> int:
        """Register ``u`` as a root; returns ``u`` for chaining."""
        self._roots.add(u)
        return u

    def unprotect(self, u: int) -> None:
        self._roots.discard(u)

    def roots(self) -> List[int]:
        return [self.resolve(r) for r in self._roots]

    def reachable(self, sources: Optional[Iterable[int]] = None) -> Set[int]:
        if sources is None:
            sources = self.roots()
        seen: Set[int] = set()
        stack = [self.resolve(s) for s in sources]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u not in (FALSE, TRUE):
                _, lo, hi = self._nodes[u]
                stack.append(self.resolve(lo))
                stack.append(self.resolve(hi))
        return seen

    def collect(self) -> int:
        """Garbage-collect: drop unreachable nodes, resolve all child
        pointers, clear resolved forwards.  Returns nodes freed."""
        live = self.reachable()
        freed = 0
        for u in list(self._nodes):
            if u not in live:
                key = self._nodes.pop(u)
                if self._unique.get(key) == u:
                    del self._unique[key]
                freed += 1
        # Rewrite children through forwards so stale ids can be dropped.
        for u in list(self._nodes):
            var, lo, hi = self._nodes[u]
            rlo, rhi = self.resolve(lo), self.resolve(hi)
            if (rlo, rhi) != (lo, hi):
                old_key = (var, lo, hi)
                if self._unique.get(old_key) == u:
                    del self._unique[old_key]
                self._nodes[u] = (var, rlo, rhi)
                self._unique[(var, rlo, rhi)] = u
        # Keep only forwards for registered roots, rewritten to their
        # final targets.  A root forwarded twice between collects (r -> b
        # -> c, with b itself forwarded in a later swap) would otherwise
        # retain r -> b after b's entry is dropped here — a pointer at an
        # id this very call just freed, dangling for any resolve() that
        # has not already path-compressed the chain.
        kept: Dict[int, int] = {}
        for s in list(self._forward):
            if s in self._roots:
                kept[s] = self.resolve(s)
        self._forward = kept
        return freed

    def size(self, include_terminals: bool = True) -> int:
        """Diagram size over all protected roots."""
        live = self.reachable()
        internal = sum(1 for u in live if u not in (FALSE, TRUE))
        if not include_terminals:
            return internal
        return internal + sum(1 for t in (FALSE, TRUE) if t in live)

    def level_widths(self) -> List[int]:
        widths = [0] * self.num_vars
        for u in self.reachable():
            if u not in (FALSE, TRUE):
                widths[self._position[self._nodes[u][0]]] += 1
        return widths

    # ------------------------------------------------------------------
    # construction / evaluation
    # ------------------------------------------------------------------
    def from_truth_table(self, table: TruthTable) -> int:
        if table.n != self.num_vars:
            raise DimensionError(
                f"table has {table.n} variables, manager has {self.num_vars}"
            )
        if self.num_vars == 0:
            return self.protect(TRUE if int(table.values[0]) else FALSE)
        g = table.permute(list(self.order)[::-1]).values
        memo: Dict[Tuple[int, bytes], int] = {}

        def build(level: int, chunk: np.ndarray) -> int:
            if level == self.num_vars:
                return TRUE if int(chunk[0]) else FALSE
            key = (level, chunk.tobytes())
            found = memo.get(key)
            if found is not None:
                return found
            half = chunk.shape[0] // 2
            r = self.make(self.order[level], build(level + 1, chunk[:half]),
                          build(level + 1, chunk[half:]))
            memo[key] = r
            return r

        return self.protect(build(0, g))

    def evaluate(self, u: int, assignment: Sequence[int]) -> int:
        u = self.resolve(u)
        while u not in (FALSE, TRUE):
            var, lo, hi = self._nodes[u]
            u = self.resolve(hi if assignment[var] else lo)
        return u

    def to_truth_table(self, u: int) -> TruthTable:
        n = self.num_vars
        values = [
            self.evaluate(u, [(a >> i) & 1 for i in range(n)])
            for a in range(1 << n)
        ]
        return TruthTable(n, values)

    # ------------------------------------------------------------------
    # the swap
    # ------------------------------------------------------------------
    def swap(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place.

        Only nodes labelled with the upper variable that reference the
        lower variable are rewritten; every represented function is
        unchanged.  Root handles stay valid (possibly via forwards).
        """
        if not 0 <= level < self.num_vars - 1:
            raise OrderingError(f"cannot swap at level {level}")
        upper = self.order[level]
        lower = self.order[level + 1]

        affected = [
            u for u, (var, lo, hi) in self._nodes.items()
            if var == upper and (
                self._var_is(lo, lower) or self._var_is(hi, lower)
            )
        ]
        # Update the order first: make() during the rewrite must see the
        # new positions so freshly-built `upper` nodes sit below `lower`.
        self.order[level], self.order[level + 1] = lower, upper
        self._position[upper] = level + 1
        self._position[lower] = level

        for u in affected:
            var, lo, hi = self._nodes[u]
            lo, hi = self.resolve(lo), self.resolve(hi)
            f00, f01 = self._cofactors_wrt(lo, lower)
            f10, f11 = self._cofactors_wrt(hi, lower)
            new_lo = self.make(upper, f00, f10)
            new_hi = self.make(upper, f01, f11)
            # Retire u's old identity before giving it a new one.
            old_key = (var, lo, hi)
            if self._unique.get(old_key) == u:
                del self._unique[old_key]
            if new_lo == new_hi:
                del self._nodes[u]
                self._forward[u] = new_lo
                continue
            new_key = (lower, new_lo, new_hi)
            existing = self._unique.get(new_key)
            if existing is not None and existing != u:
                del self._nodes[u]
                self._forward[u] = existing
            else:
                self._nodes[u] = new_key
                self._unique[new_key] = u

    def _var_is(self, u: int, var: int) -> bool:
        u = self.resolve(u)
        return u not in (FALSE, TRUE) and self._nodes[u][0] == var

    def _cofactors_wrt(self, u: int, var: int) -> Tuple[int, int]:
        if self._var_is(u, var):
            _, lo, hi = self._nodes[self.resolve(u)]
            return self.resolve(lo), self.resolve(hi)
        return u, u

    # ------------------------------------------------------------------
    # swap-based reordering
    # ------------------------------------------------------------------
    def move_var(self, var: int, position: int) -> None:
        """Move ``var`` to ``position`` via adjacent swaps."""
        current = self._position[var]
        while current > position:
            self.swap(current - 1)
            current -= 1
        while current < position:
            self.swap(current)
            current += 1

    def reorder_to(self, new_order: Sequence[int]) -> None:
        """Reorder to ``new_order`` with a selection-sort of swaps."""
        new_order = list(new_order)
        if sorted(new_order) != list(range(self.num_vars)):
            raise OrderingError(
                f"{new_order!r} is not an ordering of range({self.num_vars})"
            )
        for position, var in enumerate(new_order):
            self.move_var(var, position)
        self.collect()

    def sift(self, max_rounds: int = 10) -> Tuple[List[int], int]:
        """Rudell's sifting, executed with real level swaps.

        Each variable (widest level first) slides through all positions;
        it is parked at the best position seen.  Returns the final order
        and diagram size.

        The sweep schedule is shared with the evaluation-level sifters via
        the strategy-registry driver (:func:`repro.portfolio
        .run_sift_schedule`); only the candidate enumeration — real level
        swaps here — differs per substrate.
        """
        # Deferred: repro.portfolio lazily imports this module for sift_swap.
        from ..portfolio import SwapSiftSubstrate, run_sift_schedule

        result = run_sift_schedule(
            SwapSiftSubstrate(self), max_rounds=max_rounds
        )
        return list(result.order), result.size
