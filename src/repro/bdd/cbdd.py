"""BDDs with complement edges (the CUDD-style representation).

Every production BDD package since Brace-Rudell-Bryant stores *edges* as
(node, complement-bit) pairs: negation becomes an O(1) bit flip and a
function shares every node with its complement.  Canonicity requires a
normalization rule — here the standard one: **the 1-edge (THEN edge) of
every node is regular**; a would-be complemented 1-edge complements the
whole node instead.

Edges are encoded as integers ``node_id << 1 | complement``.  The only
terminal is node 0 (the constant 1); FALSE is its complemented edge.

This representation is an *extension* relative to the paper (FS counts
plain-OBDD nodes); the benches compare the two node counts, and the tests
verify the classic invariants: free negation, full sharing between ``f``
and ``~f``, canonicity, and node counts never exceeding the plain BDD's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import DimensionError, OrderingError
from ..truth_table import TruthTable

TRUE_EDGE = 0   # terminal node 0, regular
FALSE_EDGE = 1  # terminal node 0, complemented


def edge_node(edge: int) -> int:
    """Node id an edge points to."""
    return edge >> 1


def edge_complemented(edge: int) -> bool:
    return bool(edge & 1)


def negate(edge: int) -> int:
    """O(1) negation: flip the complement bit."""
    return edge ^ 1


class CBDD:
    """Manager for reduced OBDDs with complement edges."""

    def __init__(self, num_vars: int, order: Optional[Sequence[int]] = None) -> None:
        if num_vars < 0:
            raise DimensionError("num_vars must be non-negative")
        if order is None:
            order = list(range(num_vars))
        order = list(order)
        if sorted(order) != list(range(num_vars)):
            raise OrderingError(f"{order!r} is not an ordering of range({num_vars})")
        self.num_vars = num_vars
        self.order: Tuple[int, ...] = tuple(order)
        self._level_of: Dict[int, int] = {v: lv for lv, v in enumerate(order)}
        # node id -> (level, lo_edge, hi_edge); terminal node 0 implicit.
        self._nodes: Dict[int, Tuple[int, int, int]] = {}
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._next_id = 1
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    @property
    def true(self) -> int:
        return TRUE_EDGE

    @property
    def false(self) -> int:
        return FALSE_EDGE

    def is_terminal_edge(self, edge: int) -> bool:
        return edge_node(edge) == 0

    def level_of_edge(self, edge: int) -> int:
        node = edge_node(edge)
        if node == 0:
            return self.num_vars
        return self._nodes[node][0]

    def make(self, level: int, lo: int, hi: int) -> int:
        """Canonical constructor with complement-edge normalization."""
        if lo == hi:
            return lo
        if edge_complemented(hi):
            # Normalize: the 1-edge must be regular; push the complement
            # to the node's users.
            return negate(self.make(level, negate(lo), negate(hi)))
        key = (level, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found << 1
        node = self._next_id
        self._next_id += 1
        self._nodes[node] = key
        self._unique[key] = node
        return node << 1

    def var(self, v: int) -> int:
        if not 0 <= v < self.num_vars:
            raise DimensionError(f"variable {v} out of range")
        return self.make(self._level_of[v], FALSE_EDGE, TRUE_EDGE)

    def nvar(self, v: int) -> int:
        return negate(self.var(v))

    # ------------------------------------------------------------------
    # ITE kernel
    # ------------------------------------------------------------------
    def _cofactors_at(self, edge: int, level: int) -> Tuple[int, int]:
        node = edge_node(edge)
        if node == 0 or self._nodes[node][0] != level:
            return edge, edge
        _, lo, hi = self._nodes[node]
        if edge_complemented(edge):
            return negate(lo), negate(hi)
        return lo, hi

    def ite(self, f: int, g: int, h: int) -> int:
        if f == TRUE_EDGE:
            return g
        if f == FALSE_EDGE:
            return h
        if g == h:
            return g
        if g == TRUE_EDGE and h == FALSE_EDGE:
            return f
        if g == FALSE_EDGE and h == TRUE_EDGE:
            return negate(f)
        # Standard-triple normalization: a complemented first argument
        # swaps the branches, halving the cache's effective key space.
        if edge_complemented(f):
            f, g, h = negate(f), h, g
        key = (f, g, h)
        found = self._ite_cache.get(key)
        if found is not None:
            return found
        top = min(self.level_of_edge(f), self.level_of_edge(g),
                  self.level_of_edge(h))
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        result = self.make(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def apply_not(self, f: int) -> int:
        return negate(f)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE_EDGE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE_EDGE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, negate(g), g)

    # ------------------------------------------------------------------
    # construction / queries
    # ------------------------------------------------------------------
    def from_truth_table(self, table: TruthTable) -> int:
        if table.n != self.num_vars:
            raise DimensionError(
                f"table has {table.n} variables, manager has {self.num_vars}"
            )
        if self.num_vars == 0:
            return TRUE_EDGE if int(table.values[0]) else FALSE_EDGE
        g = table.permute(list(self.order)[::-1]).values
        memo: Dict[Tuple[int, bytes], int] = {}

        def build(level: int, chunk: np.ndarray) -> int:
            if level == self.num_vars:
                return TRUE_EDGE if int(chunk[0]) else FALSE_EDGE
            key = (level, chunk.tobytes())
            found = memo.get(key)
            if found is not None:
                return found
            half = chunk.shape[0] // 2
            edge = self.make(level, build(level + 1, chunk[:half]),
                             build(level + 1, chunk[half:]))
            memo[key] = edge
            return edge

        return build(0, g)

    def evaluate(self, edge: int, assignment: Sequence[int]) -> int:
        if len(assignment) != self.num_vars:
            raise DimensionError(
                f"expected {self.num_vars} values, got {len(assignment)}"
            )
        complement = edge_complemented(edge)
        node = edge_node(edge)
        while node != 0:
            level, lo, hi = self._nodes[node]
            nxt = hi if assignment[self.order[level]] else lo
            complement ^= edge_complemented(nxt)
            node = edge_node(nxt)
        return 0 if complement else 1

    def to_truth_table(self, edge: int) -> TruthTable:
        n = self.num_vars
        values = [
            self.evaluate(edge, [(a >> i) & 1 for i in range(n)])
            for a in range(1 << n)
        ]
        return TruthTable(n, values)

    def reachable_nodes(self, edge: int) -> Set[int]:
        """Node ids (not edges) reachable from ``edge``, incl. terminal 0."""
        seen: Set[int] = set()
        stack = [edge_node(edge)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node != 0:
                _, lo, hi = self._nodes[node]
                stack.append(edge_node(lo))
                stack.append(edge_node(hi))
        return seen

    def size(self, edge: int, include_terminals: bool = True) -> int:
        """Node count of the diagram rooted at ``edge``.

        With complement edges there is a single terminal node; sizes are
        therefore not directly comparable to plain-BDD sizes that count
        two terminals — the benches compare internal-node counts.
        """
        reach = self.reachable_nodes(edge)
        internal = sum(1 for node in reach if node != 0)
        if include_terminals:
            return internal + (1 if 0 in reach else 0)
        return internal

    def satcount(self, edge: int) -> int:
        """Satisfying assignments over all variables."""
        cache: Dict[int, int] = {}

        def regular_count(node: int) -> int:
            # count for the REGULAR edge to `node`, over levels below it
            if node == 0:
                return 1  # TRUE on zero remaining variables... scaled below
            found = cache.get(node)
            if found is not None:
                return found
            level, lo, hi = self._nodes[node]
            total = 0
            for child in (lo, hi):
                child_node = edge_node(child)
                child_level = (
                    self.num_vars if child_node == 0
                    else self._nodes[child_node][0]
                )
                skipped = child_level - level - 1
                below = 1 << (self.num_vars - child_level)
                count = regular_count(child_node)
                if edge_complemented(child):
                    count = below - count
                total += count << skipped
            cache[node] = total
            return total

        node = edge_node(edge)
        level = self.num_vars if node == 0 else self._nodes[node][0]
        count = regular_count(node)
        if edge_complemented(edge):
            count = (1 << (self.num_vars - level)) - count
        return count << level


def cbdd_size(table: TruthTable, order: Sequence[int],
              include_terminals: bool = True) -> int:
    """Complement-edge BDD size of ``table`` under ``order``."""
    manager = CBDD(table.n, order)
    root = manager.from_truth_table(table)
    return manager.size(root, include_terminals=include_terminals)
