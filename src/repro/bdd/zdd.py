"""Zero-suppressed decision diagrams (Minato's ZDDs).

The paper's Remark 2 and the "Adaptation to ZDD" appendix show that the FS
table-compaction rule changes in two lines to minimize ZDDs instead of
OBDDs.  This module provides the independent ZDD substrate used to validate
that adaptation: a manager with the zero-suppressed reduction rule (a node
whose 1-edge points to FALSE is removed), the standard set-family algebra,
and canonical construction from truth tables / families of subsets.

A ZDD node at level ``l`` testing variable ``v`` represents a family of
subsets of the *remaining* variables; skipping a level means that variable
is absent from every set of the family (this is the zero-suppression
semantics, dual to the OBDD don't-care semantics).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import DimensionError, OrderingError
from ..truth_table import TruthTable
from .node import FALSE, TRUE, Node


class ZDD:
    """Manager for reduced zero-suppressed decision diagrams.

    Terminal ``0`` is the empty family; terminal ``1`` is the family
    containing only the empty set.  ``order[level]`` is the variable tested
    at ``level`` (level 0 at the root).
    """

    def __init__(self, num_vars: int, order: Optional[Sequence[int]] = None) -> None:
        if num_vars < 0:
            raise DimensionError("num_vars must be non-negative")
        if order is None:
            order = list(range(num_vars))
        order = list(order)
        if sorted(order) != list(range(num_vars)):
            raise OrderingError(f"{order!r} is not an ordering of range({num_vars})")
        self.num_vars = num_vars
        self.order: Tuple[int, ...] = tuple(order)
        self._level_of: Dict[int, int] = {v: lv for lv, v in enumerate(order)}
        self._nodes: Dict[int, Node] = {}
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._next_id = 2
        self._op_cache: Dict[Tuple[str, int, int], int] = {}

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    @property
    def empty(self) -> int:
        """The empty family (terminal 0)."""
        return FALSE

    @property
    def base(self) -> int:
        """The family ``{{}}`` containing just the empty set (terminal 1)."""
        return TRUE

    def level_of_var(self, var: int) -> int:
        try:
            return self._level_of[var]
        except KeyError:
            raise DimensionError(f"variable {var} out of range") from None

    def level(self, u: int) -> int:
        if u in (FALSE, TRUE):
            return self.num_vars
        return self._nodes[u].level

    def node(self, u: int) -> Node:
        return self._nodes[u]

    def is_terminal(self, u: int) -> bool:
        return u in (FALSE, TRUE)

    def make(self, level: int, lo: int, hi: int) -> int:
        """Canonical constructor with the zero-suppressed reduction rule."""
        if hi == FALSE:  # zero-suppression: variable absent everywhere
            return lo
        key = (level, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        u = self._next_id
        self._next_id += 1
        self._nodes[u] = Node(level, self.order[level], lo, hi)
        self._unique[key] = u
        return u

    def singleton(self, var: int) -> int:
        """The family ``{{var}}``."""
        return self.make(self.level_of_var(var), FALSE, TRUE)

    # ------------------------------------------------------------------
    # family algebra (Minato's operators)
    # ------------------------------------------------------------------
    def _cofactors_at(self, u: int, level: int) -> Tuple[int, int]:
        # Zero-suppressed semantics: skipping a level means hi-cofactor 0.
        if self.level(u) != level:
            return u, FALSE
        node = self._nodes[u]
        return node.lo, node.hi

    def _binary(self, op: str, f: int, g: int) -> int:
        key = (op, f, g)
        found = self._op_cache.get(key)
        if found is not None:
            return found
        top = min(self.level(f), self.level(g))
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        if op == "union":
            r = self.make(top, self.union(f0, g0), self.union(f1, g1))
        elif op == "intersection":
            r = self.make(top, self.intersection(f0, g0), self.intersection(f1, g1))
        elif op == "difference":
            r = self.make(top, self.difference(f0, g0), self.difference(f1, g1))
        else:  # pragma: no cover - internal dispatch only
            raise ValueError(op)
        self._op_cache[key] = r
        return r

    def union(self, f: int, g: int) -> int:
        """Family union ``f | g``."""
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == g:
            return f
        if f == TRUE and g == TRUE:
            return TRUE
        return self._binary("union", f, g)

    def intersection(self, f: int, g: int) -> int:
        """Family intersection ``f & g``."""
        if f == FALSE or g == FALSE:
            return FALSE
        if f == g:
            return f
        if f == TRUE:
            return TRUE if self._contains_empty(g) else FALSE
        if g == TRUE:
            return TRUE if self._contains_empty(f) else FALSE
        return self._binary("intersection", f, g)

    def difference(self, f: int, g: int) -> int:
        """Family difference ``f \\ g``."""
        if f == FALSE or f == g:
            return FALSE
        if g == FALSE:
            return f
        if f == TRUE:
            return FALSE if self._contains_empty(g) else TRUE
        return self._binary("difference", f, g)

    def _contains_empty(self, u: int) -> bool:
        # The empty set is in the family iff following lo edges reaches TRUE.
        while not self.is_terminal(u):
            u = self._nodes[u].lo
        return u == TRUE

    def join(self, f: int, g: int) -> int:
        """Minato's join: ``{a | b : a in f, b in g}`` (union of each pair)."""
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        key = ("join", f, g)
        found = self._op_cache.get(key)
        if found is not None:
            return found
        top = min(self.level(f), self.level(g))
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        hi = self.union(
            self.union(self.join(f1, g1), self.join(f1, g0)), self.join(f0, g1)
        )
        r = self.make(top, self.join(f0, g0), hi)
        self._op_cache[key] = r
        return r

    def subset1(self, u: int, var: int) -> int:
        """Sets of the family containing ``var``, with ``var`` removed."""
        target = self.level_of_var(var)
        if self.level(u) > target:
            return FALSE
        cache: Dict[int, int] = {}

        def walk(w: int) -> int:
            if self.level(w) > target:
                return FALSE
            found = cache.get(w)
            if found is not None:
                return found
            node = self._nodes[w]
            if node.level == target:
                r = node.hi
            else:
                r = self.make(node.level, walk(node.lo), walk(node.hi))
            cache[w] = r
            return r

        return walk(u)

    def symmetric_difference(self, f: int, g: int) -> int:
        """Family symmetric difference (sets in exactly one of the two)."""
        return self.union(self.difference(f, g), self.difference(g, f))

    def maximal(self, u: int) -> int:
        """Sets of the family not strictly contained in another member.

        Minato's ``MAXIMAL`` operator; the classic output filter for
        clique/independent-set enumeration.
        """
        cache = self._op_cache
        key = ("maximal", u, u)
        found = cache.get(key)
        if found is not None:
            return found
        if self.is_terminal(u):
            return u
        node = self._nodes[u]
        hi = self.maximal(node.hi)
        lo_max = self.maximal(node.lo)
        # A set without this variable survives only if it is not contained
        # in some set WITH the variable: remove subsets of hi from lo.
        lo = self.nonsubsets(lo_max, node.hi)
        result = self.make(node.level, lo, hi)
        cache[key] = result
        return result

    def minimal(self, u: int) -> int:
        """Sets of the family not strictly containing another member."""
        cache = self._op_cache
        key = ("minimal", u, u)
        found = cache.get(key)
        if found is not None:
            return found
        if self.is_terminal(u):
            return u
        node = self._nodes[u]
        lo = self.minimal(node.lo)
        hi_min = self.minimal(node.hi)
        # A set with this variable survives only if removing nothing keeps
        # it minimal: drop supersets of lo from hi.
        hi = self.nonsupersets(hi_min, node.lo)
        result = self.make(node.level, lo, hi)
        cache[key] = result
        return result

    def nonsubsets(self, f: int, g: int) -> int:
        """Sets of ``f`` that are a subset of NO set in ``g``."""
        if f == FALSE or f == g:
            return FALSE
        if g == FALSE:
            return f
        if g == TRUE:
            # only the empty set is a subset of {} -- drop it from f
            return self.difference(f, TRUE)
        if f == TRUE:
            # the empty set is a subset of anything in a nonempty family
            return FALSE
        key = ("nonsub", f, g)
        found = self._op_cache.get(key)
        if found is not None:
            return found
        top = min(self.level(f), self.level(g))
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        # f-sets without the var must avoid being subsets of both g halves;
        # f-sets with the var can only be subsets of g-sets with the var.
        lo = self.intersection(self.nonsubsets(f0, g0),
                               self.nonsubsets(f0, g1))
        hi = self.nonsubsets(f1, g1)
        result = self.make(top, lo, hi)
        self._op_cache[key] = result
        return result

    def nonsupersets(self, f: int, g: int) -> int:
        """Sets of ``f`` that are a superset of NO set in ``g``."""
        if f == FALSE or g == TRUE or f == g:
            return FALSE
        if g == FALSE:
            return f
        key = ("nonsup", f, g)
        found = self._op_cache.get(key)
        if found is not None:
            return found
        top = min(self.level(f), self.level(g))
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        # f-sets with the var must avoid supersets of g-sets with AND
        # without it; f-sets without the var only clash with g0.
        hi = self.intersection(self.nonsupersets(f1, g1),
                               self.nonsupersets(f1, g0))
        lo = self.nonsupersets(f0, g0)
        result = self.make(top, lo, hi)
        self._op_cache[key] = result
        return result

    def supersets_of(self, u: int, variables) -> int:
        """Members containing every variable in ``variables``."""
        result = u
        for var in variables:
            result = self.join(self.subset1(result, var),
                               self.singleton(var))
        return result

    def subset0(self, u: int, var: int) -> int:
        """Sets of the family not containing ``var``."""
        target = self.level_of_var(var)
        if self.level(u) > target:
            return u
        cache: Dict[int, int] = {}

        def walk(w: int) -> int:
            if self.level(w) > target:
                return w
            found = cache.get(w)
            if found is not None:
                return found
            node = self._nodes[w]
            if node.level == target:
                r = node.lo
            else:
                r = self.make(node.level, walk(node.lo), walk(node.hi))
            cache[w] = r
            return r

        return walk(u)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def from_sets(self, sets: Sequence[Set[int]]) -> int:
        """Build the ZDD of a family given explicitly as Python sets."""
        r = FALSE
        for s in sets:
            r = self.union(r, self._one_set(s))
        return r

    def _one_set(self, s: Set[int]) -> int:
        levels = sorted((self.level_of_var(v) for v in s), reverse=True)
        r = TRUE
        for lv in levels:
            r = self.make(lv, FALSE, r)
        return r

    def from_truth_table(self, table: TruthTable) -> int:
        """Build the ZDD of the Boolean function's on-set under this
        manager's ordering (characteristic-function view: each satisfying
        assignment is the set of variables assigned 1)."""
        if table.n != self.num_vars:
            raise DimensionError(
                f"table has {table.n} variables, manager has {self.num_vars}"
            )
        if self.num_vars == 0:
            return TRUE if int(table.values[0]) else FALSE
        n = self.num_vars
        g = table.permute(list(self.order)[::-1]).values

        memo: Dict[Tuple[int, bytes], int] = {}

        def build(level: int, chunk: np.ndarray) -> int:
            if level == n:
                return TRUE if int(chunk[0]) else FALSE
            key = (level, chunk.tobytes())
            found = memo.get(key)
            if found is not None:
                return found
            half = chunk.shape[0] // 2
            r = self.make(level, build(level + 1, chunk[:half]),
                          build(level + 1, chunk[half:]))
            memo[key] = r
            return r

        return build(0, g)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count(self, u: int) -> int:
        """Number of sets in the family."""
        cache: Dict[int, int] = {}

        def walk(w: int) -> int:
            if w == FALSE:
                return 0
            if w == TRUE:
                return 1
            found = cache.get(w)
            if found is not None:
                return found
            node = self._nodes[w]
            r = walk(node.lo) + walk(node.hi)
            cache[w] = r
            return r

        return walk(u)

    def iter_sets(self, u: int) -> Iterator[frozenset]:
        """Yield every member set of the family."""
        if u == FALSE:
            return
        if u == TRUE:
            yield frozenset()
            return
        node = self._nodes[u]
        yield from self.iter_sets(node.lo)
        for s in self.iter_sets(node.hi):
            yield s | {node.var}

    def reachable(self, u: int) -> List[int]:
        seen = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if not self.is_terminal(w):
                node = self._nodes[w]
                stack.append(node.lo)
                stack.append(node.hi)
        return sorted(seen)

    def size(self, u: int, include_terminals: bool = True) -> int:
        """Node count of the diagram rooted at ``u``."""
        reach = self.reachable(u)
        if include_terminals:
            return len(reach)
        return sum(1 for w in reach if not self.is_terminal(w))

    def level_widths(self, u: int) -> List[int]:
        widths = [0] * self.num_vars
        for w in self.reachable(u):
            if not self.is_terminal(w):
                widths[self._nodes[w].level] += 1
        return widths

    def evaluate(self, u: int, assignment: Sequence[int]) -> int:
        """Membership test: is the set ``{v : assignment[v] == 1}`` in the
        family?  (Equivalently, the Boolean function value.)"""
        if len(assignment) != self.num_vars:
            raise DimensionError(
                f"expected {self.num_vars} values, got {len(assignment)}"
            )
        w = u
        level = 0
        while True:
            wl = self.level(w)
            # Any variable skipped between `level` and wl must be 0.
            for lv in range(level, wl):
                if assignment[self.order[lv]]:
                    return 0
            if self.is_terminal(w):
                return 1 if w == TRUE else 0
            node = self._nodes[w]
            w = node.hi if assignment[node.var] else node.lo
            level = wl + 1

    def to_truth_table(self, u: int) -> TruthTable:
        n = self.num_vars
        values = np.zeros(1 << n, dtype=np.int64)
        for a in range(1 << n):
            bits = [(a >> i) & 1 for i in range(n)]
            values[a] = self.evaluate(u, bits)
        return TruthTable(n, values)
