"""Decision-diagram substrates: OBDD, ZDD and MTBDD managers, ordering
heuristics, and DOT export.

These are independent of the Friedman-Supowit dynamic program in
:mod:`repro.core`; the test suite uses each side to validate the other.
"""

from .cbdd import CBDD, cbdd_size
from .dot import diagram_to_dot, to_dot
from .manager import BDD
from .mtbdd import MTBDD, mtbdd_size
from .node import FALSE, TRUE, Node
from .reorder import (
    SearchResult,
    greedy_append,
    random_restart_search,
    sift,
    window_permute,
)
from .swap import ReorderingBDD
from .symbolic import ReachabilityResult, TransitionSystem, rename
from .zdd import ZDD

__all__ = [
    "BDD",
    "ZDD",
    "ReorderingBDD",
    "CBDD",
    "cbdd_size",
    "TransitionSystem",
    "ReachabilityResult",
    "rename",
    "MTBDD",
    "mtbdd_size",
    "Node",
    "FALSE",
    "TRUE",
    "SearchResult",
    "sift",
    "window_permute",
    "random_restart_search",
    "greedy_append",
    "to_dot",
    "diagram_to_dot",
]
