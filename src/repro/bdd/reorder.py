"""Variable-ordering heuristics: the baselines the paper's introduction
motivates ("numerous studies have sought heuristics ... but they do not
guarantee a worst-case time complexity lower than brute force").

All heuristics here work at the *ordering-evaluation* level: they search the
space of orderings and score each candidate with an exact size oracle
(:func:`repro.truth_table.obdd_size` by default).  This mirrors the search
behaviour of the classic in-place implementations (Rudell sifting, window
permutation) — the same sequence of orderings is examined and the same
greedy choices are made — while staying independent of any one manager's
level-swap machinery.  Benchmarks compare their results against the exact
optimum from :mod:`repro.core`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..truth_table import TruthTable, count_subfunctions, obdd_size

SizeFn = Callable[[TruthTable, Sequence[int]], int]


@dataclass
class SearchResult:
    """Outcome of a heuristic ordering search."""

    order: Tuple[int, ...]
    size: int
    evaluations: int
    trajectory: List[int] = field(default_factory=list)
    """Best size after each improvement step (for convergence plots)."""


def _evaluate(table: TruthTable, order: Sequence[int], size_fn: SizeFn) -> int:
    return size_fn(table, list(order))


def sift(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    size_fn: SizeFn = obdd_size,
    max_rounds: int = 10,
) -> SearchResult:
    """Rudell's sifting heuristic.

    Each round considers every variable (largest-width level first, the
    classic schedule), moves it through every position of the ordering, and
    leaves it at the best position found.  Rounds repeat until a fixpoint
    or ``max_rounds``.
    """
    n = table.n
    order = list(initial_order) if initial_order is not None else list(range(n))
    evaluations = 1
    best_size = _evaluate(table, order, size_fn)
    trajectory = [best_size]

    for _ in range(max_rounds):
        improved = False
        widths = count_subfunctions(table, order)
        # Sift variables in decreasing order of their current level width.
        schedule = [order[lv] for lv in sorted(range(n), key=lambda lv: -widths[lv])]
        for var in schedule:
            position = order.index(var)
            best_position = position
            working = list(order)
            working.pop(position)
            for p in range(n):
                candidate = working[:p] + [var] + working[p:]
                evaluations += 1
                size = _evaluate(table, candidate, size_fn)
                if size < best_size:
                    best_size = size
                    best_position = p
                    improved = True
                    trajectory.append(size)
            order = working[:best_position] + [var] + working[best_position:]
        if not improved:
            break
    return SearchResult(tuple(order), best_size, evaluations, trajectory)


def window_permute(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    window: int = 3,
    size_fn: SizeFn = obdd_size,
    max_rounds: int = 10,
) -> SearchResult:
    """Window-permutation heuristic.

    Slides a window of ``window`` adjacent levels across the ordering and
    replaces its contents with the best of the ``window!`` permutations.
    Rounds repeat until no window improves.
    """
    n = table.n
    if window < 2:
        raise ValueError("window must be at least 2")
    window = min(window, n) if n else window
    order = list(initial_order) if initial_order is not None else list(range(n))
    evaluations = 1
    best_size = _evaluate(table, order, size_fn)
    trajectory = [best_size]

    for _ in range(max_rounds):
        improved = False
        for start in range(max(n - window + 1, 0)):
            segment = order[start:start + window]
            best_perm = tuple(segment)
            for perm in itertools.permutations(segment):
                if perm == tuple(segment):
                    continue
                candidate = order[:start] + list(perm) + order[start + window:]
                evaluations += 1
                size = _evaluate(table, candidate, size_fn)
                if size < best_size:
                    best_size = size
                    best_perm = perm
                    improved = True
                    trajectory.append(size)
            order = order[:start] + list(best_perm) + order[start + window:]
        if not improved:
            break
    return SearchResult(tuple(order), best_size, evaluations, trajectory)


def random_restart_search(
    table: TruthTable,
    tries: int = 100,
    seed: Optional[int] = None,
    size_fn: SizeFn = obdd_size,
) -> SearchResult:
    """Uniformly random orderings, keeping the best — the weakest baseline."""
    n = table.n
    rng = random.Random(seed)
    best_order = list(range(n))
    best_size = _evaluate(table, best_order, size_fn)
    evaluations = 1
    trajectory = [best_size]
    for _ in range(tries):
        candidate = list(range(n))
        rng.shuffle(candidate)
        evaluations += 1
        size = _evaluate(table, candidate, size_fn)
        if size < best_size:
            best_size = size
            best_order = candidate
            trajectory.append(size)
    return SearchResult(tuple(best_order), best_size, evaluations, trajectory)


def greedy_append(
    table: TruthTable,
    size_fn: SizeFn = obdd_size,
) -> SearchResult:
    """Greedy bottom-up construction in the spirit of the FS recurrence.

    Builds the ordering from the last-read variable upward; at each step
    appends the variable whose placement minimizes the partial width sum
    (computed exactly, but without the FS memoization over subsets — so it
    commits greedily and can miss the optimum).
    """
    n = table.n
    chosen: List[int] = []  # read-last first, like the paper's pi
    evaluations = 0
    for _ in range(n):
        remaining = [v for v in range(n) if v not in chosen]
        best_var = remaining[0]
        best_cost = None
        for v in remaining:
            # Order: remaining (arbitrary) on top, then v, then chosen below.
            rest = [w for w in remaining if w != v]
            order = rest + [v] + chosen[::-1]
            widths = count_subfunctions(table, order)
            evaluations += 1
            cost = sum(widths[len(rest):])  # widths of v's level and below
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_var = v
        chosen.append(best_var)
    order = chosen[::-1]
    size = _evaluate(table, order, size_fn)
    evaluations += 1
    return SearchResult(tuple(order), size, evaluations, [size])
