"""Variable-ordering heuristics: the baselines the paper's introduction
motivates ("numerous studies have sought heuristics ... but they do not
guarantee a worst-case time complexity lower than brute force").

All heuristics here work at the *ordering-evaluation* level: they search the
space of orderings and score each candidate with an exact size oracle
(:func:`repro.truth_table.obdd_size` by default).  This mirrors the search
behaviour of the classic in-place implementations (Rudell sifting, window
permutation) — the same sequence of orderings is examined and the same
greedy choices are made — while staying independent of any one manager's
level-swap machinery.  Benchmarks compare their results against the exact
optimum from :mod:`repro.core`.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, List, Optional, Sequence

from ..portfolio import SearchResult, sift_search, window_permutation_search
from ..truth_table import TruthTable, count_subfunctions, obdd_size

SizeFn = Callable[[TruthTable, Sequence[int]], int]

__all__ = [
    "SearchResult",
    "sift",
    "window_permute",
    "random_restart_search",
    "greedy_append",
]


def _evaluate(table: TruthTable, order: Sequence[int], size_fn: SizeFn) -> int:
    return size_fn(table, list(order))


def sift(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    size_fn: SizeFn = obdd_size,
    max_rounds: int = 10,
) -> SearchResult:
    """Deprecated alias for :func:`repro.portfolio.sift_search`.

    The canonical Rudell sifting implementation now lives in the strategy
    registry.  This shim delegates (bit-identically: same orderings
    examined, same greedy choices, same evaluation counts) and will be
    removed in a future release.
    """
    warnings.warn(
        "repro.bdd.reorder.sift is deprecated; call "
        "repro.portfolio.sift_search directly, or use "
        "repro.solve(problem, strategy='sift') for the full solve API",
        DeprecationWarning,
        stacklevel=2,
    )
    return sift_search(
        table,
        initial_order=initial_order,
        size_fn=size_fn,
        max_rounds=max_rounds,
    )


def window_permute(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    window: int = 3,
    size_fn: SizeFn = obdd_size,
    max_rounds: int = 10,
) -> SearchResult:
    """Deprecated alias for :func:`repro.portfolio.window_permutation_search`.

    The window-permutation schedule now lives in the strategy registry
    (registered as ``window3``/``window4``).  This shim delegates
    bit-identically and will be removed in a future release.
    """
    warnings.warn(
        "repro.bdd.reorder.window_permute is deprecated; call "
        "repro.portfolio.window_permutation_search directly, or use "
        "repro.solve(problem, strategy='window3') for the full solve API",
        DeprecationWarning,
        stacklevel=2,
    )
    return window_permutation_search(
        table,
        initial_order=initial_order,
        window=window,
        size_fn=size_fn,
        max_rounds=max_rounds,
    )


def random_restart_search(
    table: TruthTable,
    tries: int = 100,
    seed: Optional[int] = None,
    size_fn: SizeFn = obdd_size,
) -> SearchResult:
    """Uniformly random orderings, keeping the best — the weakest baseline."""
    n = table.n
    rng = random.Random(seed)
    best_order = list(range(n))
    best_size = _evaluate(table, best_order, size_fn)
    evaluations = 1
    trajectory = [best_size]
    for _ in range(tries):
        candidate = list(range(n))
        rng.shuffle(candidate)
        evaluations += 1
        size = _evaluate(table, candidate, size_fn)
        if size < best_size:
            best_size = size
            best_order = candidate
            trajectory.append(size)
    return SearchResult(tuple(best_order), best_size, evaluations, trajectory)


def greedy_append(
    table: TruthTable,
    size_fn: SizeFn = obdd_size,
) -> SearchResult:
    """Greedy bottom-up construction in the spirit of the FS recurrence.

    Builds the ordering from the last-read variable upward; at each step
    appends the variable whose placement minimizes the partial width sum
    (computed exactly, but without the FS memoization over subsets — so it
    commits greedily and can miss the optimum).
    """
    n = table.n
    chosen: List[int] = []  # read-last first, like the paper's pi
    evaluations = 0
    for _ in range(n):
        remaining = [v for v in range(n) if v not in chosen]
        best_var = remaining[0]
        best_cost = None
        for v in remaining:
            # Order: remaining (arbitrary) on top, then v, then chosen below.
            rest = [w for w in remaining if w != v]
            order = rest + [v] + chosen[::-1]
            widths = count_subfunctions(table, order)
            evaluations += 1
            cost = sum(widths[len(rest):])  # widths of v's level and below
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_var = v
        chosen.append(best_var)
    order = chosen[::-1]
    size = _evaluate(table, order, size_fn)
    evaluations += 1
    return SearchResult(tuple(order), size, evaluations, [size])
