"""Symbolic state-space traversal: the formal-verification workload.

OBDDs earned their place in VLSI/verification through symbolic model
checking: sets of states as characteristic functions, transitions as a
relation over (current, next) variable pairs, reachability as a fixpoint
of image computations.  This module provides that workflow on the
:class:`~repro.bdd.manager.BDD` substrate — and since state sets are just
Boolean functions, the optimal-ordering machinery applies to them
directly (the example and benches do exactly that).

Variable convention: a system with ``k`` state bits uses variables
``0..k-1`` for the current state and ``k..2k-1`` for the next state
(bit ``i`` pairs with ``k + i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import DimensionError
from ..truth_table import TruthTable
from .manager import BDD
from .node import FALSE, TRUE


def rename(manager: BDD, u: int, mapping: Dict[int, int]) -> int:
    """Simultaneously substitute variables per ``mapping`` (old -> new).

    Implemented as sequential composition, which is sound here because no
    replacement variable is itself a key of the mapping (checked).
    """
    keys = set(mapping)
    values = set(mapping.values())
    if keys & values:
        raise DimensionError(
            "rename mapping must not replace a variable with another "
            f"variable being replaced (overlap: {sorted(keys & values)})"
        )
    result = u
    for old, new in mapping.items():
        result = manager.compose(result, old, manager.var(new))
    return result


@dataclass
class ReachabilityResult:
    """Outcome of a reachability fixpoint."""

    states: int
    """BDD node of the reachable-set characteristic function."""

    iterations: int
    num_states: int
    frontier_sizes: List[int]
    """BDD sizes of the frontier after each image step (the classic
    "BDD blow-up during traversal" curve)."""


class TransitionSystem:
    """A finite state system with ``state_bits`` bits, given symbolically."""

    def __init__(self, state_bits: int,
                 order: Optional[Sequence[int]] = None) -> None:
        if state_bits < 1:
            raise DimensionError("need at least one state bit")
        self.state_bits = state_bits
        self.manager = BDD(2 * state_bits, order)
        self.current = list(range(state_bits))
        self.next = [state_bits + i for i in range(state_bits)]
        self._relation = FALSE

    # ------------------------------------------------------------------
    # building the relation
    # ------------------------------------------------------------------
    @property
    def relation(self) -> int:
        return self._relation

    def add_transition(self, source: int, target: int) -> "TransitionSystem":
        """Add one explicit edge ``source -> target`` (state encodings)."""
        manager = self.manager
        cube = TRUE
        for i in range(self.state_bits):
            lit = (
                manager.var(self.current[i])
                if (source >> i) & 1
                else manager.nvar(self.current[i])
            )
            cube = manager.apply_and(cube, lit)
        for i in range(self.state_bits):
            lit = (
                manager.var(self.next[i])
                if (target >> i) & 1
                else manager.nvar(self.next[i])
            )
            cube = manager.apply_and(cube, lit)
        self._relation = manager.apply_or(self._relation, cube)
        return self

    @classmethod
    def from_successor_function(
        cls,
        state_bits: int,
        successors: Callable[[int], Iterable[int]],
        order: Optional[Sequence[int]] = None,
    ) -> "TransitionSystem":
        """Build the full relation by enumerating ``successors(state)``."""
        system = cls(state_bits, order)
        for state in range(1 << state_bits):
            for target in successors(state):
                system.add_transition(state, target)
        return system

    # ------------------------------------------------------------------
    # state-set helpers
    # ------------------------------------------------------------------
    def state_cube(self, state: int) -> int:
        """Characteristic function of the single state ``state``."""
        manager = self.manager
        cube = TRUE
        for i in range(self.state_bits):
            lit = (
                manager.var(self.current[i])
                if (state >> i) & 1
                else manager.nvar(self.current[i])
            )
            cube = manager.apply_and(cube, lit)
        return cube

    def state_set(self, states: Iterable[int]) -> int:
        result = FALSE
        for state in states:
            result = self.manager.apply_or(result, self.state_cube(state))
        return result

    def states_in(self, set_node: int) -> Set[int]:
        """Decode a current-state set node into explicit state encodings."""
        out: Set[int] = set()
        for state in range(1 << self.state_bits):
            assignment = [0] * (2 * self.state_bits)
            for i in range(self.state_bits):
                assignment[self.current[i]] = (state >> i) & 1
            if self.manager.evaluate(set_node, assignment):
                out.add(state)
        return out

    def count_states(self, set_node: int) -> int:
        """Number of states in a current-state set (next bits must be
        don't-cares, as produced by all operations here)."""
        return self.manager.satcount(set_node) >> self.state_bits

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def image(self, states: int) -> int:
        """Successors of ``states``: rename_next->current(
        exists_current(T and states))."""
        manager = self.manager
        conjoined = manager.apply_and(self._relation, states)
        next_only = manager.exists(conjoined, self.current)
        return rename(
            manager, next_only,
            {self.next[i]: self.current[i] for i in range(self.state_bits)},
        )

    def preimage(self, states: int) -> int:
        """Predecessors of ``states``."""
        manager = self.manager
        shifted = rename(
            manager, states,
            {self.current[i]: self.next[i] for i in range(self.state_bits)},
        )
        conjoined = manager.apply_and(self._relation, shifted)
        return manager.exists(conjoined, self.next)

    def reachable(self, initial: Iterable[int]) -> ReachabilityResult:
        """Least fixpoint of ``R = init OR image(R)`` (breadth-first)."""
        manager = self.manager
        current = self.state_set(initial)
        frontier = current
        iterations = 0
        frontier_sizes: List[int] = []
        while frontier != FALSE:
            iterations += 1
            new = self.image(frontier)
            frontier = manager.apply_and(new, manager.apply_not(current))
            current = manager.apply_or(current, new)
            frontier_sizes.append(manager.size(frontier))
        return ReachabilityResult(
            states=current,
            iterations=iterations,
            num_states=self.count_states(current),
            frontier_sizes=frontier_sizes,
        )

    def can_reach(self, initial: Iterable[int], bad: Iterable[int]) -> bool:
        """Safety check: is any ``bad`` state reachable from ``initial``?"""
        reach = self.reachable(initial).states
        bad_set = self.state_set(bad)
        return self.manager.apply_and(reach, bad_set) != FALSE

    def reachable_set_table(self, initial: Iterable[int]) -> TruthTable:
        """The reachable set as a truth table over the current-state bits
        only — ready for the optimal-ordering machinery."""
        reach = self.reachable(initial).states
        values = []
        for state in range(1 << self.state_bits):
            assignment = [0] * (2 * self.state_bits)
            for i in range(self.state_bits):
                assignment[self.current[i]] = (state >> i) & 1
            values.append(self.manager.evaluate(reach, assignment))
        return TruthTable(self.state_bits, values)
