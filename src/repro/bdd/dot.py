"""Graphviz DOT export for the decision-diagram managers.

Produces diagrams in the visual style of the paper's Figure 1: solid lines
for 1-edges, dotted lines for 0-edges, and boxed terminals labelled ``F``
and ``T`` (or the integer value for MTBDDs).
"""

from __future__ import annotations

from typing import Sequence


def _var_label(var: int, one_based: bool = True) -> str:
    return f"x{var + 1}" if one_based else f"x{var}"


def to_dot(manager, root: int, name: str = "DD", one_based: bool = True) -> str:
    """Render the diagram rooted at ``root`` as DOT text.

    Works for :class:`~repro.bdd.manager.BDD`, :class:`~repro.bdd.zdd.ZDD`
    and :class:`~repro.bdd.mtbdd.MTBDD` managers (anything exposing
    ``reachable``, ``is_terminal``, ``node`` and — for terminal labels —
    either the 0/1 convention or ``terminal_value``).
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    by_level = {}
    for u in manager.reachable(root):
        if manager.is_terminal(u):
            label = _terminal_label(manager, u)
            lines.append(f'  n{u} [shape=box, label="{label}"];')
        else:
            node = manager.node(u)
            lines.append(
                f'  n{u} [shape=circle, label="{_var_label(node.var, one_based)}"];'
            )
            by_level.setdefault(node.level, []).append(u)
    for u in sorted(manager.reachable(root)):
        if manager.is_terminal(u):
            continue
        node = manager.node(u)
        lines.append(f"  n{u} -> n{node.lo} [style=dotted];")
        lines.append(f"  n{u} -> n{node.hi} [style=solid];")
    for level in sorted(by_level):
        members = " ".join(f"n{u};" for u in sorted(by_level[level]))
        lines.append(f"  {{ rank=same; {members} }}")
    lines.append("}")
    return "\n".join(lines)


def _terminal_label(manager, u: int) -> str:
    terminal_value = getattr(manager, "terminal_value", None)
    if terminal_value is not None:
        try:
            return str(terminal_value(u))
        except KeyError:
            pass
    return "T" if u == 1 else "F"


def diagram_to_dot(nodes, root: int, num_terminals: int = 2,
                   name: str = "DD", one_based: bool = True) -> str:
    """DOT export for the raw node dictionaries produced by the FS
    reconstruction (:mod:`repro.core.reconstruct`).

    ``nodes`` maps node id to ``(var, lo, hi)``; ids below
    ``num_terminals`` are terminals (``0`` = F, ``1`` = T for BDDs).
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    reachable = set()
    stack = [root]
    while stack:
        u = stack.pop()
        if u in reachable:
            continue
        reachable.add(u)
        if u >= num_terminals:
            _, lo, hi = nodes[u]
            stack.extend((lo, hi))
    for u in sorted(reachable):
        if u < num_terminals:
            label = "T" if u == 1 else "F" if u == 0 else str(u)
            lines.append(f'  n{u} [shape=box, label="{label}"];')
        else:
            var, lo, hi = nodes[u]
            lines.append(
                f'  n{u} [shape=circle, label="{_var_label(var, one_based)}"];'
            )
            lines.append(f"  n{u} -> n{lo} [style=dotted];")
            lines.append(f"  n{u} -> n{hi} [style=solid];")
    lines.append("}")
    return "\n".join(lines)
