"""A reduced ordered BDD manager with the classic ITE-based operator kernel.

This is the OBDD substrate the paper's algorithms sit on: unique-table
canonicity (reduction rules 5(a)/5(b) of the paper's definition), Bryant's
``apply``/``ite`` with operation caching, restriction, composition,
quantification, satisfiability counting and enumeration.

It is deliberately independent of the Friedman-Supowit dynamic program in
:mod:`repro.core` — the tests use one to validate the other.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DimensionError, OrderingError
from ..truth_table import TruthTable
from .node import FALSE, TRUE, Node


class BDD:
    """Manager for reduced OBDDs over ``num_vars`` variables.

    Parameters
    ----------
    num_vars:
        Number of variables, indexed ``0 .. num_vars - 1``.
    order:
        Variable ordering: ``order[level]`` is the variable read at
        ``level`` (level 0 is the root).  Defaults to the natural order.
    """

    def __init__(self, num_vars: int, order: Optional[Sequence[int]] = None) -> None:
        if num_vars < 0:
            raise DimensionError("num_vars must be non-negative")
        if order is None:
            order = list(range(num_vars))
        order = list(order)
        if sorted(order) != list(range(num_vars)):
            raise OrderingError(f"{order!r} is not an ordering of range({num_vars})")
        self.num_vars = num_vars
        self.order: Tuple[int, ...] = tuple(order)
        self._level_of: Dict[int, int] = {v: lv for lv, v in enumerate(order)}
        # id -> Node for internal nodes; terminals are implicit.
        self._nodes: Dict[int, Node] = {}
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._next_id = 2
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # construction primitives
    # ------------------------------------------------------------------
    @property
    def false(self) -> int:
        return FALSE

    @property
    def true(self) -> int:
        return TRUE

    def level_of_var(self, var: int) -> int:
        """Level at which ``var`` is read."""
        try:
            return self._level_of[var]
        except KeyError:
            raise DimensionError(f"variable {var} out of range") from None

    def level(self, u: int) -> int:
        """Level of node ``u`` (terminals are at level ``num_vars``)."""
        if u in (FALSE, TRUE):
            return self.num_vars
        return self._nodes[u].level

    def node(self, u: int) -> Node:
        """The :class:`Node` record of internal node ``u``."""
        return self._nodes[u]

    def is_terminal(self, u: int) -> bool:
        return u in (FALSE, TRUE)

    def make(self, level: int, lo: int, hi: int) -> int:
        """Canonical node constructor (applies both reduction rules)."""
        if lo == hi:  # reduction rule 5(a)
            return lo
        key = (level, lo, hi)
        found = self._unique.get(key)
        if found is not None:  # reduction rule 5(b)
            return found
        u = self._next_id
        self._next_id += 1
        self._nodes[u] = Node(level, self.order[level], lo, hi)
        self._unique[key] = u
        return u

    def var(self, v: int) -> int:
        """The diagram of the projection function ``f(x) = x_v``."""
        return self.make(self.level_of_var(v), FALSE, TRUE)

    def nvar(self, v: int) -> int:
        """The diagram of ``f(x) = NOT x_v``."""
        return self.make(self.level_of_var(v), TRUE, FALSE)

    def constant(self, value: bool) -> int:
        return TRUE if value else FALSE

    # ------------------------------------------------------------------
    # the ITE kernel and Boolean operators
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` — the universal ternary operator."""
        # Terminal cases.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        found = self._ite_cache.get(key)
        if found is not None:
            return found
        top = min(self.level(f), self.level(g), self.level(h))
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        r = self.make(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = r
        return r

    def _cofactors_at(self, u: int, level: int) -> Tuple[int, int]:
        if self.level(u) != level:
            return u, u
        node = self._nodes[u]
        return node.lo, node.hi

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_nand(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_and(f, g))

    def apply_nor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_or(f, g))

    def apply_xnor(self, f: int, g: int) -> int:
        return self.apply_not(self.apply_xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def apply(self, op: str, f: int, g: int) -> int:
        """Dispatch a named binary operator (``and``/``or``/``xor``/...)."""
        table: Dict[str, Callable[[int, int], int]] = {
            "and": self.apply_and,
            "or": self.apply_or,
            "xor": self.apply_xor,
            "nand": self.apply_nand,
            "nor": self.apply_nor,
            "xnor": self.apply_xnor,
            "implies": self.apply_implies,
        }
        try:
            fn = table[op]
        except KeyError:
            raise ValueError(f"unknown operator {op!r}") from None
        return fn(f, g)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def restrict(self, u: int, var: int, value: int) -> int:
        """The cofactor ``F(u)|_{x_var = value}`` (paper's ``f|_{x_i=b}``)."""
        target = self.level_of_var(var)
        cache: Dict[int, int] = {}

        def walk(w: int) -> int:
            if self.level(w) > target:
                return w
            found = cache.get(w)
            if found is not None:
                return found
            node = self._nodes[w]
            if node.level == target:
                r = node.hi if value else node.lo
            else:
                r = self.make(node.level, walk(node.lo), walk(node.hi))
            cache[w] = r
            return r

        return walk(u)

    def compose(self, u: int, var: int, g: int) -> int:
        """Substitute diagram ``g`` for variable ``var`` in ``u``."""
        return self.ite(g, self.restrict(u, var, 1), self.restrict(u, var, 0))

    def exists(self, u: int, variables: Sequence[int]) -> int:
        """Existential quantification over ``variables``."""
        r = u
        for v in variables:
            r = self.apply_or(self.restrict(r, v, 0), self.restrict(r, v, 1))
        return r

    def forall(self, u: int, variables: Sequence[int]) -> int:
        """Universal quantification over ``variables``."""
        r = u
        for v in variables:
            r = self.apply_and(self.restrict(r, v, 0), self.restrict(r, v, 1))
        return r

    def constrain(self, f: int, c: int) -> int:
        """Coudert-Madre generalized cofactor ``f || c``.

        Returns a diagram agreeing with ``f`` on every assignment where
        ``c`` holds (a don't-care minimization primitive: outside ``c``
        the result is unconstrained, often much smaller than ``f``).
        Raises on ``c = FALSE`` (the classic operator is undefined there).
        """
        if c == FALSE:
            raise ValueError("constrain is undefined for an empty care set")
        cache: Dict[Tuple[int, int], int] = {}

        def walk(fn: int, cn: int) -> int:
            if cn == TRUE or fn in (FALSE, TRUE):
                return fn
            key = (fn, cn)
            found = cache.get(key)
            if found is not None:
                return found
            top = min(self.level(fn), self.level(cn))
            c0, c1 = self._cofactors_at(cn, top)
            f0, f1 = self._cofactors_at(fn, top)
            if c0 == FALSE:
                result = walk(f1, c1)
            elif c1 == FALSE:
                result = walk(f0, c0)
            else:
                result = self.make(top, walk(f0, c0), walk(f1, c1))
            cache[key] = result
            return result

        return walk(f, c)

    def support(self, u: int) -> List[int]:
        """Variables appearing on some path from ``u``."""
        seen = set()
        variables = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen or self.is_terminal(w):
                continue
            seen.add(w)
            node = self._nodes[w]
            variables.add(node.var)
            stack.append(node.lo)
            stack.append(node.hi)
        return sorted(variables)

    def reachable(self, u: int) -> List[int]:
        """All node ids reachable from ``u`` (including terminals)."""
        seen = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if not self.is_terminal(w):
                node = self._nodes[w]
                stack.append(node.lo)
                stack.append(node.hi)
        return sorted(seen)

    def size(self, u: int, include_terminals: bool = True) -> int:
        """Node count of the diagram rooted at ``u``.

        With ``include_terminals`` (the paper's Figure 1 convention) the
        reachable terminals are counted too.
        """
        reach = self.reachable(u)
        if include_terminals:
            return len(reach)
        return sum(1 for w in reach if not self.is_terminal(w))

    def level_widths(self, u: int) -> List[int]:
        """Number of nodes of the diagram rooted at ``u`` on each level."""
        widths = [0] * self.num_vars
        for w in self.reachable(u):
            if not self.is_terminal(w):
                widths[self._nodes[w].level] += 1
        return widths

    # ------------------------------------------------------------------
    # evaluation / counting / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, u: int, assignment: Sequence[int]) -> int:
        """Evaluate the function at a full assignment (indexed by variable)."""
        if len(assignment) != self.num_vars:
            raise DimensionError(
                f"expected {self.num_vars} values, got {len(assignment)}"
            )
        w = u
        while not self.is_terminal(w):
            node = self._nodes[w]
            w = node.hi if assignment[node.var] else node.lo
        return w

    def shortest_sat(self, u: int) -> Optional[Tuple[int, ...]]:
        """A satisfying assignment with the fewest variables set to 1.

        The classic ``Cudd_ShortestPath`` query with unit weight on
        1-edges: dynamic programming over the DAG.  Returns ``None`` for
        the constant-0 function; unassigned (skipped) variables are 0.
        """
        if u == FALSE:
            return None
        best_cost: Dict[int, Optional[int]] = {TRUE: 0, FALSE: None}
        choice: Dict[int, Optional[int]] = {}

        def cost(w: int) -> Optional[int]:
            if w in best_cost:
                return best_cost[w]
            node = self._nodes[w]
            lo_cost = cost(node.lo)
            hi_cost = cost(node.hi)
            candidates = []
            if lo_cost is not None:
                candidates.append((lo_cost, 0))
            if hi_cost is not None:
                candidates.append((hi_cost + 1, 1))
            if not candidates:
                best_cost[w] = None
                choice[w] = None
                return None
            value, branch = min(candidates)
            best_cost[w] = value
            choice[w] = branch
            return value

        if cost(u) is None:
            return None
        assignment = [0] * self.num_vars
        w = u
        while not self.is_terminal(w):
            node = self._nodes[w]
            branch = choice[w]
            assignment[node.var] = branch
            w = node.hi if branch else node.lo
        return tuple(assignment)

    def satcount(self, u: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        cache: Dict[int, int] = {}

        def walk(w: int) -> int:
            # Returns count over variables strictly below w's level.
            if w == FALSE:
                return 0
            if w == TRUE:
                return 1
            found = cache.get(w)
            if found is not None:
                return found
            node = self._nodes[w]
            total = 0
            for child in (node.lo, node.hi):
                skipped = self.level(child) - node.level - 1
                total += walk(child) << skipped
            cache[w] = total
            return total

        return walk(u) << self.level(u)

    def sat_iter(self, u: int) -> Iterator[Tuple[int, ...]]:
        """Yield every satisfying assignment as a tuple indexed by variable."""
        if u == FALSE:
            return

        def expand(w: int, level: int):
            # Yield partial assignments for levels level..num_vars-1.
            if level == self.num_vars:
                yield ()
                return
            if self.is_terminal(w) or self._nodes[w].level > level:
                for rest in expand(w, level + 1):
                    yield (0,) + rest
                    yield (1,) + rest
                return
            node = self._nodes[w]
            if node.lo != FALSE:
                for rest in expand(node.lo, level + 1):
                    yield (0,) + rest
            if node.hi != FALSE:
                for rest in expand(node.hi, level + 1):
                    yield (1,) + rest

        for by_level in expand(u, 0):
            assignment = [0] * self.num_vars
            for lv, value in enumerate(by_level):
                assignment[self.order[lv]] = value
            yield tuple(assignment)

    def to_truth_table(self, u: int) -> TruthTable:
        """Tabulate the function of node ``u`` over all variables."""
        n = self.num_vars
        values = np.zeros(1 << n, dtype=np.int64)
        for a in range(1 << n):
            bits = [(a >> i) & 1 for i in range(n)]
            values[a] = self.evaluate(u, bits)
        return TruthTable(n, values)

    # ------------------------------------------------------------------
    # bulk construction
    # ------------------------------------------------------------------
    def from_truth_table(self, table: TruthTable) -> int:
        """Build the canonical reduced OBDD of ``table`` under this
        manager's ordering and return its root id.

        Construction is bottom-up over the manager's levels with
        memoization keyed on restricted-truth-table contents, so the result
        is reduced by construction.
        """
        if table.n != self.num_vars:
            raise DimensionError(
                f"table has {table.n} variables, manager has {self.num_vars}"
            )
        if self.num_vars == 0:
            return TRUE if int(table.values[0]) else FALSE
        # Permute so read order is most-significant-first: new var i = old
        # var order[n-1-i]; then index prefix bits = earlier-read variables.
        n = self.num_vars
        g = table.permute(list(self.order)[::-1]).values

        memo: Dict[Tuple[int, bytes], int] = {}

        def build(level: int, chunk: np.ndarray) -> int:
            if level == n:
                return TRUE if int(chunk[0]) else FALSE
            key = (level, chunk.tobytes())
            found = memo.get(key)
            if found is not None:
                return found
            half = chunk.shape[0] // 2
            # Top bit of the chunk index = the variable read at `level`.
            lo = build(level + 1, chunk[:half])
            hi = build(level + 1, chunk[half:])
            r = self.make(level, lo, hi)
            memo[key] = r
            return r

        return build(0, g)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        """Total internal nodes ever created in this manager."""
        return len(self._nodes)

    def clear_caches(self) -> None:
        """Drop the operation cache (unique table is kept)."""
        self._ite_cache.clear()
