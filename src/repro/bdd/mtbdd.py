"""Multi-terminal BDDs (MTBDDs / ADDs) over integer-valued functions.

The paper's Remark 2 observes that the FS algorithm works unchanged for
multi-valued functions ``f : {0,1}^n -> Z``, producing a minimum MTBDD.
This module is the independent MTBDD substrate used to validate that claim.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DimensionError, OrderingError
from ..truth_table import TruthTable
from .node import Node


class MTBDD:
    """Manager for reduced ordered multi-terminal decision diagrams.

    Terminals are allocated per distinct integer value; internal nodes use
    the OBDD reduction rules (no zero-suppression).
    """

    def __init__(self, num_vars: int, order: Optional[Sequence[int]] = None) -> None:
        if num_vars < 0:
            raise DimensionError("num_vars must be non-negative")
        if order is None:
            order = list(range(num_vars))
        order = list(order)
        if sorted(order) != list(range(num_vars)):
            raise OrderingError(f"{order!r} is not an ordering of range({num_vars})")
        self.num_vars = num_vars
        self.order: Tuple[int, ...] = tuple(order)
        self._level_of: Dict[int, int] = {v: lv for lv, v in enumerate(order)}
        self._nodes: Dict[int, Node] = {}
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._terminal_of_value: Dict[int, int] = {}
        self._value_of_terminal: Dict[int, int] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def terminal(self, value: int) -> int:
        """The terminal node carrying ``value`` (allocated on demand)."""
        found = self._terminal_of_value.get(value)
        if found is not None:
            return found
        t = self._next_id
        self._next_id += 1
        self._terminal_of_value[value] = t
        self._value_of_terminal[t] = value
        return t

    def is_terminal(self, u: int) -> bool:
        return u in self._value_of_terminal

    def terminal_value(self, u: int) -> int:
        return self._value_of_terminal[u]

    def level(self, u: int) -> int:
        if u in self._value_of_terminal:
            return self.num_vars
        return self._nodes[u].level

    def node(self, u: int) -> Node:
        return self._nodes[u]

    def level_of_var(self, var: int) -> int:
        try:
            return self._level_of[var]
        except KeyError:
            raise DimensionError(f"variable {var} out of range") from None

    def make(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        u = self._next_id
        self._next_id += 1
        self._nodes[u] = Node(level, self.order[level], lo, hi)
        self._unique[key] = u
        return u

    # ------------------------------------------------------------------
    # construction / arithmetic
    # ------------------------------------------------------------------
    def from_truth_table(self, table: TruthTable) -> int:
        """Canonical reduced MTBDD of a (possibly multi-valued) table."""
        if table.n != self.num_vars:
            raise DimensionError(
                f"table has {table.n} variables, manager has {self.num_vars}"
            )
        if self.num_vars == 0:
            return self.terminal(int(table.values[0]))
        n = self.num_vars
        g = table.permute(list(self.order)[::-1]).values
        memo: Dict[Tuple[int, bytes], int] = {}

        def build(level: int, chunk: np.ndarray) -> int:
            if level == n:
                return self.terminal(int(chunk[0]))
            key = (level, chunk.tobytes())
            found = memo.get(key)
            if found is not None:
                return found
            half = chunk.shape[0] // 2
            r = self.make(level, build(level + 1, chunk[:half]),
                          build(level + 1, chunk[half:]))
            memo[key] = r
            return r

        return build(0, g)

    def apply(self, fn: Callable[[int, int], int], f: int, g: int) -> int:
        """Pointwise combination ``fn(F(f), F(g))`` of two diagrams.

        The memo is local to this call: keying a persistent cache on the
        identity of an arbitrary Python callable would risk stale hits once
        the callable is garbage-collected and its id reused.
        """
        memo: Dict[Tuple[int, int], int] = {}

        def walk(a: int, b: int) -> int:
            key = (a, b)
            found = memo.get(key)
            if found is not None:
                return found
            if self.is_terminal(a) and self.is_terminal(b):
                r = self.terminal(
                    int(fn(self.terminal_value(a), self.terminal_value(b)))
                )
            else:
                top = min(self.level(a), self.level(b))
                a0, a1 = self._cofactors_at(a, top)
                b0, b1 = self._cofactors_at(b, top)
                r = self.make(top, walk(a0, b0), walk(a1, b1))
            memo[key] = r
            return r

        return walk(f, g)

    def _cofactors_at(self, u: int, level: int) -> Tuple[int, int]:
        if self.level(u) != level:
            return u, u
        node = self._nodes[u]
        return node.lo, node.hi

    def add(self, f: int, g: int) -> int:
        return self.apply(lambda a, b: a + b, f, g)

    def max(self, f: int, g: int) -> int:
        return self.apply(lambda a, b: a if a >= b else b, f, g)

    def min(self, f: int, g: int) -> int:
        return self.apply(lambda a, b: a if a <= b else b, f, g)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def evaluate(self, u: int, assignment: Sequence[int]) -> int:
        if len(assignment) != self.num_vars:
            raise DimensionError(
                f"expected {self.num_vars} values, got {len(assignment)}"
            )
        w = u
        while not self.is_terminal(w):
            node = self._nodes[w]
            w = node.hi if assignment[node.var] else node.lo
        return self.terminal_value(w)

    def reachable(self, u: int) -> List[int]:
        seen = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if not self.is_terminal(w):
                node = self._nodes[w]
                stack.append(node.lo)
                stack.append(node.hi)
        return sorted(seen)

    def size(self, u: int, include_terminals: bool = True) -> int:
        reach = self.reachable(u)
        if include_terminals:
            return len(reach)
        return sum(1 for w in reach if not self.is_terminal(w))

    def level_widths(self, u: int) -> List[int]:
        widths = [0] * self.num_vars
        for w in self.reachable(u):
            if not self.is_terminal(w):
                widths[self._nodes[w].level] += 1
        return widths

    def to_truth_table(self, u: int) -> TruthTable:
        n = self.num_vars
        values = np.zeros(1 << n, dtype=np.int64)
        for a in range(1 << n):
            bits = [(a >> i) & 1 for i in range(n)]
            values[a] = self.evaluate(u, bits)
        return TruthTable(n, values)


def mtbdd_size(table: TruthTable, order: Sequence[int], include_terminals: bool = True) -> int:
    """Reduced-MTBDD size of ``table`` under ``order`` (fresh manager)."""
    manager = MTBDD(table.n, order)
    root = manager.from_truth_table(table)
    return manager.size(root, include_terminals=include_terminals)
