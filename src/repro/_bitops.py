"""Bit-level helpers shared by the DP tables and the DD substrates.

Variables are identified by integers ``0 .. n-1``.  A *subset* of variables
is represented as an integer bitmask where bit ``i`` set means variable ``i``
is a member.  An *assignment* to a set of variables is packed into an integer
whose bit ``j`` holds the value of the ``j``-th smallest variable of the set
(little-endian within the set).

These conventions are used consistently by :mod:`repro.truth_table`,
:mod:`repro.core` and :mod:`repro.bdd`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np


def popcount(mask: int) -> int:
    """Number of set bits in ``mask``."""
    # int.bit_count is a single CPython opcode-level call; the int()
    # coercion keeps numpy integer masks working.
    return int(mask).bit_count()


def bits_of(mask: int) -> List[int]:
    """Return the indices of the set bits of ``mask`` in ascending order."""
    # Lowest-set-bit iteration: one step per set bit instead of one per
    # bit position (this runs in the DP's innermost candidate loop).
    mask = int(mask)
    result = []
    while mask:
        low = mask & -mask
        result.append(low.bit_length() - 1)
        mask ^= low
    return result


def mask_of(variables) -> int:
    """Pack an iterable of variable indices into a bitmask."""
    mask = 0
    for v in variables:
        mask |= 1 << v
    return mask


def rank_in_mask(mask: int, var: int) -> int:
    """Position of ``var`` among the set bits of ``mask`` (ascending).

    Requires that ``var`` is a member of ``mask``.
    """
    if not (mask >> var) & 1:
        raise ValueError(f"variable {var} is not in mask {mask:#x}")
    return popcount(mask & ((1 << var) - 1))


def subsets_of_size(universe_mask: int, k: int) -> Iterator[int]:
    """Yield all sub-masks of ``universe_mask`` with exactly ``k`` bits set.

    Enumeration is in increasing numeric order of the produced masks when
    the universe is contiguous; in general it follows the combination order
    of the universe's member list.
    """
    members = bits_of(universe_mask)
    n = len(members)
    if k < 0 or k > n:
        return
    if k == 0:
        yield 0
        return
    # Gosper-style enumeration over positions, mapped through `members`.
    idx = list(range(k))
    while True:
        yield mask_of(members[i] for i in idx)
        # advance the combination
        for j in reversed(range(k)):
            if idx[j] != j + n - k:
                break
        else:
            return
        idx[j] += 1
        for t in range(j + 1, k):
            idx[t] = idx[t - 1] + 1


def all_submasks(mask: int) -> Iterator[int]:
    """Yield every sub-mask of ``mask`` including ``0`` and ``mask`` itself."""
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_submasks(mask: int, size: int | None = None) -> Iterator[int]:
    """Yield the sub-masks of ``mask``, optionally only those of ``size`` bits.

    With ``size=None`` this is :func:`all_submasks` (the classic
    ``sub = (sub - 1) & mask`` walk, descending numerically from ``mask``
    to ``0``).  With a ``size``, each yielded mask has exactly that many
    bits; the batch frontier kernel uses ``size = popcount(mask) - 1`` to
    enumerate a subset's predecessors.  In that predecessor case the
    combination order of :func:`subsets_of_size` excludes members in
    *descending* order, so reversing the output aligns with the ascending
    candidate order of :func:`bits_of` — the equivalence tests pin both
    orders.
    """
    if size is None:
        yield from all_submasks(mask)
        return
    yield from subsets_of_size(mask, size)


def popcount_buffer(data: bytes | bytearray | memoryview) -> int:
    """Total number of set bits across a byte buffer.

    The vectorizable sibling of :func:`popcount`: one call covers a whole
    packed column (e.g. the mask column of a packed frontier layer, whose
    population count doubles as a cheap checkpoint integrity figure).
    Uses numpy's ``unpackbits`` reduction for large buffers and a single
    big-int ``bit_count`` otherwise — both provably equal to summing
    :func:`popcount` over the bytes.
    """
    view = memoryview(data)
    if np is not None and view.nbytes >= 1 << 12:
        return int(
            np.unpackbits(np.frombuffer(view, dtype=np.uint8)).sum()
        )
    return int.from_bytes(view, "little").bit_count()


def insert_bit_indices(size: int, position: int) -> Tuple[np.ndarray, np.ndarray]:
    """Index arrays realizing "insert one bit at ``position``" for a table.

    For every packed assignment ``b`` in ``range(size)`` over ``m`` variables,
    the returned pair ``(idx0, idx1)`` gives the packed assignments over
    ``m + 1`` variables obtained by splicing a 0 (respectively 1) bit in at
    bit-position ``position``.  This is the indexing kernel of the
    Friedman-Supowit table compaction: ``idx0``/``idx1`` address the parent
    table's cells for the 0- and 1-cofactor of the variable being folded in.
    """
    b = np.arange(size, dtype=np.int64)
    low = b & ((1 << position) - 1)
    high = b >> position
    idx0 = low | (high << (position + 1))
    idx1 = idx0 | (1 << position)
    return idx0, idx1


def insert_bit(b: int, position: int, value: int) -> int:
    """Scalar version of :func:`insert_bit_indices` for one assignment."""
    low = b & ((1 << position) - 1)
    high = b >> position
    return low | (value << position) | (high << (position + 1))


def extract_bit(b: int, position: int) -> Tuple[int, int]:
    """Inverse of :func:`insert_bit`: remove bit ``position``.

    Returns ``(b_without_that_bit, removed_value)``.
    """
    low = b & ((1 << position) - 1)
    value = (b >> position) & 1
    high = b >> (position + 1)
    return low | (high << position), value


def spread_assignment(packed: int, mask: int) -> int:
    """Spread a packed assignment over ``mask`` onto absolute variable bits.

    ``packed`` assigns values to the members of ``mask`` little-endian by
    rank; the result is an ``n``-bit word where bit ``v`` carries the value
    assigned to variable ``v`` (non-members are 0).
    """
    out = 0
    v = 0
    m = mask
    while m:
        if m & 1:
            out |= (packed & 1) << v
            packed >>= 1
        m >>= 1
        v += 1
    return out


def compress_assignment(word: int, mask: int) -> int:
    """Inverse of :func:`spread_assignment`: gather bits of ``word`` at the
    member positions of ``mask`` into a packed little-endian assignment."""
    out = 0
    j = 0
    v = 0
    m = mask
    while m:
        if m & 1:
            out |= ((word >> v) & 1) << j
            j += 1
        m >>= 1
        v += 1
    return out
