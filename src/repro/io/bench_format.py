"""The ISCAS ``.bench`` netlist format.

The format the ISCAS-85/89 benchmark circuits ship in::

    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = NAND(G10, G16)

Parsing yields a :class:`~repro.expr.circuit.Circuit` (combinational
subset: no ``DFF``), which plugs straight into the Corollary 2 pipeline
and the symbolic compiler; a writer round-trips circuits back out.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from ..expr.circuit import Circuit

_GATE_ALIASES = {
    "AND": "and",
    "OR": "or",
    "NAND": "nand",
    "NOR": "nor",
    "XOR": "xor",
    "XNOR": "xnor",
    "NOT": "not",
    "BUF": "buf",
    "BUFF": "buf",
}

_ASSIGN = re.compile(
    r"^(?P<out>[^\s=]+)\s*=\s*(?P<gate>[A-Za-z]+)\s*\((?P<args>[^)]*)\)$"
)
_IO = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<wire>[^)]+)\)$", re.IGNORECASE)


def parse_bench(text: str, output: Optional[str] = None) -> Circuit:
    """Parse ``.bench`` text into a :class:`Circuit`.

    ``output`` selects which declared OUTPUT becomes the circuit's
    primary output (default: the first); the others remain reachable via
    the compilers' ``output=`` arguments.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    assignments: List[Tuple[str, str, List[str]]] = []

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO.match(line)
        if io_match:
            wire = io_match.group("wire").strip()
            if io_match.group("kind").upper() == "INPUT":
                inputs.append(wire)
            else:
                outputs.append(wire)
            continue
        assign = _ASSIGN.match(line)
        if not assign:
            raise ParseError(f"unparseable .bench line: {line!r}")
        gate = assign.group("gate").upper()
        if gate == "DFF":
            raise ParseError(".bench DFFs are not supported (combinational only)")
        if gate not in _GATE_ALIASES:
            raise ParseError(f"unknown .bench gate {gate!r}")
        args = [a.strip() for a in assign.group("args").split(",") if a.strip()]
        if not args:
            raise ParseError(f"gate {assign.group('out')!r} has no inputs")
        assignments.append((assign.group("out").strip(),
                            _GATE_ALIASES[gate], args))

    if not inputs:
        raise ParseError(".bench file declares no INPUTs")
    if not outputs:
        raise ParseError(".bench file declares no OUTPUTs")
    primary = output if output is not None else outputs[0]
    if primary not in outputs:
        raise ParseError(f"{primary!r} is not a declared OUTPUT")

    circuit = Circuit(inputs=list(inputs), output=primary)
    # Topologically order the assignments (the format permits any order).
    pending = list(assignments)
    known = set(inputs)
    while pending:
        progressed = False
        remaining = []
        for out, kind, args in pending:
            if all(a in known for a in args):
                circuit.add_gate(kind, out, args)
                known.add(out)
                progressed = True
            else:
                remaining.append((out, kind, args))
        if not progressed:
            missing = {a for _, _, args in remaining for a in args} - known
            raise ParseError(
                f"combinational cycle or undriven wires: {sorted(missing)}"
            )
        pending = remaining
    return circuit


def read_bench(path, output: Optional[str] = None) -> Circuit:
    with open(path) as handle:
        return parse_bench(handle.read(), output)


def write_bench(circuit: Circuit, outputs: Optional[List[str]] = None) -> str:
    """Render a :class:`Circuit` as ``.bench`` text.

    ``buf`` gates are emitted as ``BUFF``; ``outputs`` defaults to the
    circuit's primary output.
    """
    reverse = {v: k.upper() for k, v in _GATE_ALIASES.items() if k != "BUFF"}
    reverse["buf"] = "BUFF"
    lines = [f"INPUT({w})" for w in circuit.inputs]
    for out in outputs if outputs is not None else [circuit.output]:
        lines.append(f"OUTPUT({out})")
    for gate in circuit.gates:
        kind = reverse[gate.kind]
        lines.append(f"{gate.output} = {kind}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


C17_BENCH = """\
# c17 (ISCAS-85), the canonical smallest benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""
