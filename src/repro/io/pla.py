"""Espresso PLA format: the classic two-level interchange format.

A PLA file describes a single- or multi-output cover as cubes over
``{0, 1, -}``.  Reading one yields :class:`~repro.truth_table.TruthTable`
objects (one per output), making every espresso benchmark a valid input
to the optimal-ordering algorithms; writing emits the on-set as cubes
with a greedy literal-dropping pass so round-trips stay compact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DimensionError, ParseError
from ..truth_table import TruthTable


@dataclass
class PLA:
    """A parsed PLA: cube cover plus declarations."""

    num_inputs: int
    num_outputs: int
    cubes: List[Tuple[str, str]] = field(default_factory=list)
    """``(input_part, output_part)`` pairs; input over ``01-``, output
    over ``01-`` (``-`` in an output = not part of this cube's claim)."""

    input_labels: Optional[List[str]] = None
    output_labels: Optional[List[str]] = None

    def truth_tables(self) -> List[TruthTable]:
        """One Boolean table per output (on-set semantics: an assignment
        is 1 for output ``j`` iff some cube with output ``1`` in column
        ``j`` covers it)."""
        n = self.num_inputs
        assignments = np.arange(1 << n, dtype=np.int64)
        tables = []
        for j in range(self.num_outputs):
            acc = np.zeros(1 << n, dtype=bool)
            for input_part, output_part in self.cubes:
                if output_part[j] != "1":
                    continue
                acc |= _cube_cover(assignments, input_part)
            tables.append(TruthTable(n, acc.astype(np.int64)))
        return tables

    def truth_table(self) -> TruthTable:
        """The single output's table (errors on multi-output PLAs)."""
        if self.num_outputs != 1:
            raise DimensionError(
                f"PLA has {self.num_outputs} outputs; pick one via "
                "truth_tables()"
            )
        return self.truth_tables()[0]


def _cube_cover(assignments: np.ndarray, cube: str) -> np.ndarray:
    covered = np.ones(assignments.shape[0], dtype=bool)
    for position, symbol in enumerate(cube):
        if symbol == "-":
            continue
        bit = ((assignments >> position) & 1).astype(bool)
        covered &= bit if symbol == "1" else ~bit
    return covered


def parse_pla(text: str) -> PLA:
    """Parse PLA text (``.i/.o/.p/.ilb/.ob/.e`` and cube lines)."""
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    declared_products: Optional[int] = None
    input_labels: Optional[List[str]] = None
    output_labels: Optional[List[str]] = None
    cubes: List[Tuple[str, str]] = []

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword == ".i":
                num_inputs = int(parts[1])
            elif keyword == ".o":
                num_outputs = int(parts[1])
            elif keyword == ".p":
                declared_products = int(parts[1])
            elif keyword == ".ilb":
                input_labels = parts[1:]
            elif keyword == ".ob":
                output_labels = parts[1:]
            elif keyword == ".e" or keyword == ".end":
                break
            elif keyword == ".type":
                if parts[1] not in ("f", "fr"):
                    raise ParseError(f"unsupported PLA type {parts[1]!r}")
            else:
                raise ParseError(f"unknown PLA directive {keyword!r}")
            continue
        fields = line.split()
        if len(fields) == 1:
            # Single-field form: the trailing output digit is glued onto
            # the input part.  It is only unambiguous once ``.o 1`` has
            # been seen — before that the trailing character could as
            # well be an input column, so guessing would mis-split the
            # cube.
            if num_outputs is None:
                raise ParseError(
                    f"cube line {line!r} appears before the .o declaration; "
                    "single-field cubes are only valid after '.o 1'"
                )
            if num_outputs != 1:
                raise ParseError(
                    f"single-field cube line {line!r} in a "
                    f"{num_outputs}-output PLA; separate the output part "
                    "with whitespace"
                )
            input_part, output_part = fields[0][:-1], fields[0][-1]
        elif len(fields) == 2:
            input_part, output_part = fields
        else:
            raise ParseError(f"malformed cube line {line!r}")
        cubes.append((input_part, output_part))

    if num_inputs is None or num_outputs is None:
        raise ParseError("PLA is missing .i or .o declarations")
    if input_labels is not None and len(input_labels) != num_inputs:
        raise ParseError(
            f".ilb names {len(input_labels)} inputs, but .i declares "
            f"{num_inputs}"
        )
    if output_labels is not None and len(output_labels) != num_outputs:
        raise ParseError(
            f".ob names {len(output_labels)} outputs, but .o declares "
            f"{num_outputs}"
        )
    for input_part, output_part in cubes:
        if len(input_part) != num_inputs or any(c not in "01-" for c in input_part):
            raise ParseError(f"bad input cube {input_part!r}")
        if len(output_part) != num_outputs or any(
            c not in "01-~" for c in output_part
        ):
            raise ParseError(f"bad output part {output_part!r}")
    if declared_products is not None and declared_products != len(cubes):
        raise ParseError(
            f".p declares {declared_products} products, found {len(cubes)}"
        )
    return PLA(num_inputs, num_outputs, cubes, input_labels, output_labels)


def read_pla(path) -> PLA:
    with open(path) as handle:
        return parse_pla(handle.read())


def write_pla(table: TruthTable, merge: bool = True) -> str:
    """Render a Boolean table as PLA text.

    With ``merge`` a greedy literal-dropping pass widens each minterm into
    a prime-ish cube before emission (cover stays exact: every emitted
    cube lies inside the on-set and together they cover it).
    """
    if not table.is_boolean():
        raise DimensionError("PLA output requires a Boolean table")
    n = table.n
    on = table.values != 0
    cubes: List[str] = []
    covered = np.zeros(1 << n, dtype=bool)
    assignments = np.arange(1 << n, dtype=np.int64)
    for minterm in np.nonzero(on)[0]:
        if covered[minterm]:
            continue
        cube = ["1" if (int(minterm) >> i) & 1 else "0" for i in range(n)]
        if merge:
            for i in range(n):
                trial = cube[:i] + ["-"] + cube[i + 1:]
                inside = _cube_cover(assignments, "".join(trial))
                if np.all(on[inside]):
                    cube = trial
        text = "".join(cube)
        covered |= _cube_cover(assignments, text)
        cubes.append(text)
    lines = [f".i {n}", ".o 1", f".p {len(cubes)}"]
    lines += [f"{cube} 1" for cube in cubes]
    lines.append(".e")
    return "\n".join(lines) + "\n"
