"""JSON (de)serialization of standalone diagrams.

Lets minimum diagrams produced by the optimizer be stored, diffed, and
reloaded without re-running the DP — the artifact a downstream tool
consumes.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from ..core.reconstruct import Diagram
from ..core.spec import ReductionRule
from ..errors import ParseError

_FORMAT = "repro-diagram-v1"


def diagram_to_json(diagram: Diagram, indent: int = 2) -> str:
    """Serialize a :class:`~repro.core.reconstruct.Diagram` to JSON."""
    payload = {
        "format": _FORMAT,
        "n": diagram.n,
        "rule": diagram.rule.value,
        "order": list(diagram.order),
        "root": diagram.root,
        "num_terminals": diagram.num_terminals,
        "terminal_values": list(diagram.terminal_values),
        "nodes": {
            str(node_id): [var, lo, hi]
            for node_id, (var, lo, hi) in sorted(diagram.nodes.items())
        },
    }
    return json.dumps(payload, indent=indent)


def diagram_from_json(text: str) -> Diagram:
    """Inverse of :func:`diagram_to_json`, with structural validation."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ParseError(f"not valid JSON: {error}") from None
    if payload.get("format") != _FORMAT:
        raise ParseError(f"unknown diagram format {payload.get('format')!r}")
    try:
        n = int(payload["n"])
        rule = ReductionRule(payload["rule"])
        order = tuple(int(v) for v in payload["order"])
        root = int(payload["root"])
        num_terminals = int(payload["num_terminals"])
        terminal_values = [int(v) for v in payload["terminal_values"]]
        nodes: Dict[int, Tuple[int, int, int]] = {
            int(node_id): (int(triple[0]), int(triple[1]), int(triple[2]))
            for node_id, triple in payload["nodes"].items()
        }
    except (KeyError, TypeError, ValueError) as error:
        raise ParseError(f"malformed diagram payload: {error}") from None

    if sorted(order) != list(range(n)):
        raise ParseError(f"order {order!r} is not a permutation of range({n})")
    if len(terminal_values) != num_terminals:
        raise ParseError("terminal_values length disagrees with num_terminals")
    # For CBDD diagrams the root and children are edges (node << 1 | c)
    # over the single terminal node 0; otherwise they are plain ids.
    if rule is ReductionRule.CBDD:
        def target_known(reference: int) -> bool:
            node = reference >> 1
            return node == 0 or node in nodes
    else:
        def target_known(reference: int) -> bool:
            return reference < num_terminals or reference in nodes

    for node_id, (var, lo, hi) in nodes.items():
        if node_id < num_terminals:
            raise ParseError(f"node id {node_id} collides with terminals")
        if not 0 <= var < n:
            raise ParseError(f"node {node_id} tests out-of-range variable {var}")
        for child in (lo, hi):
            if not target_known(child):
                raise ParseError(f"node {node_id} references missing child {child}")
    if not target_known(root):
        raise ParseError(f"root {root} is not a known node")
    return Diagram(
        n=n,
        rule=rule,
        order=order,
        root=root,
        num_terminals=num_terminals,
        terminal_values=terminal_values,
        nodes=nodes,
    )


def save_diagram(diagram: Diagram, path) -> None:
    with open(path, "w") as handle:
        handle.write(diagram_to_json(diagram))


def load_diagram(path) -> Diagram:
    with open(path) as handle:
        return diagram_from_json(handle.read())
