"""Interchange formats: PLA, BLIF, DIMACS (via ``repro.expr.CNF``), and
JSON diagram serialization."""

from .bench_format import C17_BENCH, parse_bench, read_bench, write_bench
from .blif import LogicNetwork, NamesNode, parse_blif, read_blif
from .pla import PLA, parse_pla, read_pla, write_pla
from .synthesis import (
    circuit_to_verilog,
    diagram_to_mux_circuit,
    diagram_to_verilog,
    mux_cost,
)
from .serialize import (
    diagram_from_json,
    diagram_to_json,
    load_diagram,
    save_diagram,
)

__all__ = [
    "PLA",
    "parse_pla",
    "read_pla",
    "write_pla",
    "LogicNetwork",
    "NamesNode",
    "parse_blif",
    "read_blif",
    "diagram_to_json",
    "diagram_from_json",
    "save_diagram",
    "load_diagram",
    "diagram_to_mux_circuit",
    "circuit_to_verilog",
    "diagram_to_verilog",
    "mux_cost",
    "parse_bench",
    "read_bench",
    "write_bench",
    "C17_BENCH",
]
