"""BLIF (Berkeley Logic Interchange Format), combinational subset.

Parses ``.model/.inputs/.outputs/.names/.end`` into a
:class:`LogicNetwork` — a netlist of single-output PLA nodes — that
exposes the ``num_vars``/``evaluate`` protocol, so any combinational BLIF
is a Corollary 2 representation and a valid optimizer input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import EvaluationError, ParseError
from ..truth_table import TruthTable


@dataclass
class NamesNode:
    """One ``.names`` node: a single-output cube cover."""

    inputs: Tuple[str, ...]
    output: str
    cubes: Tuple[Tuple[str, str], ...]
    """``(input_pattern over 01-, output_value '0' or '1')`` rows."""

    def evaluate(self, values: Dict[str, int]) -> int:
        try:
            bits = [values[w] for w in self.inputs]
        except KeyError as missing:
            raise EvaluationError(
                f".names {self.output} reads undriven wire {missing}"
            ) from None
        # BLIF semantics: if any cube matches, output its value (all
        # cubes of a node carry the same value); otherwise the complement.
        cover_value = int(self.cubes[0][1]) if self.cubes else 1
        for pattern, _ in self.cubes:
            if all(
                symbol == "-" or int(symbol) == bit
                for symbol, bit in zip(pattern, bits)
            ):
                return cover_value
        return 1 - cover_value if self.cubes else 0


@dataclass
class LogicNetwork:
    """A combinational BLIF model."""

    name: str
    inputs: List[str]
    outputs: List[str]
    nodes: List[NamesNode] = field(default_factory=list)

    @property
    def num_vars(self) -> int:
        return len(self.inputs)

    def evaluate(self, assignment: Sequence[int], output: Optional[str] = None) -> int:
        if len(assignment) < len(self.inputs):
            raise EvaluationError(
                f"need {len(self.inputs)} input values, got {len(assignment)}"
            )
        values: Dict[str, int] = {
            wire: int(assignment[i]) & 1 for i, wire in enumerate(self.inputs)
        }
        for node in self.nodes:
            values[node.output] = node.evaluate(values)
        target = output if output is not None else self.outputs[0]
        if target not in values:
            raise EvaluationError(f"output {target!r} is undriven")
        return values[target]

    def truth_table(self, output: Optional[str] = None) -> TruthTable:
        n = self.num_vars
        return TruthTable.from_evaluator(
            n,
            lambda a: self.evaluate([(a >> i) & 1 for i in range(n)], output),
        )


def parse_blif(text: str) -> LogicNetwork:
    """Parse a single combinational ``.model`` (latches unsupported)."""
    name = "top"
    inputs: List[str] = []
    outputs: List[str] = []
    nodes: List[NamesNode] = []
    current: Optional[Tuple[Tuple[str, ...], str, List[Tuple[str, str]]]] = None

    def flush() -> None:
        nonlocal current
        if current is not None:
            node_inputs, node_output, cubes = current
            values = {value for _, value in cubes}
            if len(values) > 1:
                raise ParseError(
                    f".names {node_output} mixes on-set and off-set rows"
                )
            nodes.append(NamesNode(node_inputs, node_output, tuple(cubes)))
            current = None

    # Join continuation lines first.
    logical_lines: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        logical_lines.append(pending + line)
        pending = ""
    if pending:
        logical_lines.append(pending)

    for line in logical_lines:
        line = line.strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            keyword = parts[0]
            if keyword == ".model":
                name = parts[1] if len(parts) > 1 else name
            elif keyword == ".inputs":
                flush()
                inputs.extend(parts[1:])
            elif keyword == ".outputs":
                flush()
                outputs.extend(parts[1:])
            elif keyword == ".names":
                flush()
                if len(parts) < 2:
                    raise ParseError(".names needs at least an output")
                current = (tuple(parts[1:-1]), parts[-1], [])
            elif keyword == ".end":
                flush()
                break
            elif keyword in (".latch", ".subckt"):
                raise ParseError(f"{keyword} is not supported (combinational only)")
            else:
                raise ParseError(f"unknown BLIF directive {keyword!r}")
            continue
        if current is None:
            raise ParseError(f"cube line outside .names: {line!r}")
        fields = line.split()
        node_inputs = current[0]
        if len(node_inputs) == 0:
            # constant node: single field '1' or '0'... or empty cover
            if len(fields) != 1 or fields[0] not in ("0", "1"):
                raise ParseError(f"bad constant row {line!r}")
            current[2].append(("", fields[0]))
            continue
        if len(fields) != 2:
            raise ParseError(f"malformed cube row {line!r}")
        pattern, value = fields
        if len(pattern) != len(node_inputs) or any(c not in "01-" for c in pattern):
            raise ParseError(f"bad cube pattern {pattern!r}")
        if value not in ("0", "1"):
            raise ParseError(f"bad cube value {value!r}")
        current[2].append((pattern, value))
    flush()

    if not inputs or not outputs:
        raise ParseError("BLIF is missing .inputs or .outputs")
    return LogicNetwork(name, inputs, outputs, nodes)


def read_blif(path) -> LogicNetwork:
    with open(path) as handle:
        return parse_blif(handle.read())
