"""Netlist synthesis from diagrams: BDD -> multiplexer circuit -> Verilog.

The classic "BDD synthesis" step of a logic-synthesis flow: every
internal node of a reduced OBDD is one 2:1 multiplexer selected by its
variable, so a minimum OBDD *is* a minimum mux netlist for that topology
— which is why the optimal-ordering problem matters to synthesis in the
first place.  This module converts a
:class:`~repro.core.reconstruct.Diagram` into a
:class:`~repro.expr.circuit.Circuit` (verifiable with the library's own
evaluators), and renders circuits as structural Verilog.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.reconstruct import Diagram
from ..core.spec import ReductionRule
from ..errors import DimensionError
from ..expr.circuit import Circuit


def diagram_to_mux_circuit(diagram: Diagram) -> Circuit:
    """Synthesize a plain-BDD diagram into a 2:1-mux netlist.

    Each node ``u`` testing ``x_v`` becomes
    ``wire_u = (x_v & hi) | (~x_v & lo)``; terminals become constant
    wires.  Only :attr:`ReductionRule.BDD` diagrams are supported (ZDD
    skips and complement edges need different cell libraries).
    """
    if diagram.rule is not ReductionRule.BDD:
        raise DimensionError(
            f"mux synthesis supports the plain BDD rule, not {diagram.rule.value}"
        )
    inputs = [f"x{v}" for v in range(diagram.n)]
    circuit = Circuit(inputs=list(inputs), output="f")

    # Constant rails from an arbitrary input (x & ~x / x | ~x).
    rail_input = inputs[0] if inputs else None
    if rail_input is None:
        raise DimensionError("cannot synthesize a zero-variable diagram")
    circuit.add_gate("not", "nrail", [rail_input])
    circuit.add_gate("and", "const0", [rail_input, "nrail"])
    circuit.add_gate("or", "const1", [rail_input, "nrail"])

    wire_of: Dict[int, str] = {}
    for terminal in range(diagram.num_terminals):
        value = diagram.terminal_values[terminal]
        wire_of[terminal] = "const1" if value else "const0"

    inverted: Dict[int, str] = {}

    def inverter(variable: int) -> str:
        if variable not in inverted:
            name = f"n_x{variable}"
            circuit.add_gate("not", name, [f"x{variable}"])
            inverted[variable] = name
        return inverted[variable]

    # Children precede parents in the chain-construction id order.
    for node_id in sorted(diagram.nodes):
        variable, lo, hi = diagram.nodes[node_id]
        select = f"x{variable}"
        t_hi = f"m{node_id}_hi"
        t_lo = f"m{node_id}_lo"
        out = f"m{node_id}"
        circuit.add_gate("and", t_hi, [select, wire_of[hi]])
        circuit.add_gate("and", t_lo, [inverter(variable), wire_of[lo]])
        circuit.add_gate("or", out, [t_hi, t_lo])
        wire_of[node_id] = out

    circuit.add_gate("buf", "f", [wire_of[diagram.root]])
    return circuit


def mux_cost(diagram: Diagram) -> int:
    """Number of 2:1 muxes the synthesized netlist uses (= internal
    nodes) — the cost function minimized by optimal ordering."""
    return diagram.mincost


_VERILOG_GATES = {
    "and": "and",
    "or": "or",
    "not": "not",
    "xor": "xor",
    "nand": "nand",
    "nor": "nor",
    "xnor": "xnor",
}


def _sanitize(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not out or out[0].isdigit():
        out = "w_" + out
    return out


def circuit_to_verilog(circuit: Circuit, module_name: str = "top") -> str:
    """Render a :class:`~repro.expr.circuit.Circuit` as structural Verilog.

    ``buf`` gates become continuous assignments; everything else maps to
    Verilog gate primitives.
    """
    inputs = [_sanitize(w) for w in circuit.inputs]
    output = _sanitize(circuit.output)
    lines: List[str] = [
        f"module {module_name} ({', '.join(inputs + [output])});",
        "  input " + ", ".join(inputs) + ";",
        f"  output {output};",
    ]
    wires = sorted(
        {_sanitize(g.output) for g in circuit.gates} - set(inputs) - {output}
    )
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    for index, gate in enumerate(circuit.gates):
        out = _sanitize(gate.output)
        ins = [_sanitize(w) for w in gate.inputs]
        if gate.kind == "buf":
            lines.append(f"  assign {out} = {ins[0]};")
        else:
            primitive = _VERILOG_GATES[gate.kind]
            lines.append(
                f"  {primitive} g{index} ({out}, {', '.join(ins)});"
            )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def diagram_to_verilog(diagram: Diagram, module_name: str = "minimum_obdd") -> str:
    """One-call synthesis: minimum diagram -> mux netlist -> Verilog."""
    return circuit_to_verilog(diagram_to_mux_circuit(diagram), module_name)
