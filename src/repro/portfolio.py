"""The heuristic portfolio: registered inexact ordering strategies.

The exact FS-family DP certifies optima but costs ``O*(3^n)``; the
heuristics literature the paper's introduction surveys trades that
certificate for speed.  This module makes the inexact side a first-class
subsystem, mirroring the kernel / backend / frontier-store registries:
every heuristic registers under a name (:func:`register_strategy`), runs
standalone (:func:`run_strategy`) under a :class:`~repro.core.budget.Budget`,
or races against the whole field (:func:`run_portfolio`) with a
deterministic winner — best size, ties broken by the lexicographically
lowest strategy name — independent of ``jobs`` and backend.

It is also the canonical home of Rudell sifting.  The repo historically
grew two independent implementations (the evaluation-level
``repro.bdd.reorder.sift`` and the swap-level
``ReorderingBDD.sift``); both now delegate to one schedule driver,
:func:`run_sift_schedule`, parameterized over a *substrate*:

* :class:`TableSiftSubstrate` scores candidate orderings with an exact
  size oracle (the historical ``reorder.sift`` behaviour, preserved
  bit-identically: same schedule, same candidate sequence, same
  evaluation and trajectory accounting), and generalizes to *group*
  sifting — blocks of variables moved as one unit, which is how the
  symmetric-sifting strategy exploits
  :func:`repro.analysis.symmetry.symmetry_classes`.
* :class:`SwapSiftSubstrate` walks a live
  :class:`~repro.bdd.swap.ReorderingBDD` with real adjacent level swaps
  (the historical ``ReorderingBDD.sift`` behaviour, also preserved).

Registered strategies (see ``repro portfolio`` on the CLI):

``sift`` / ``sift_group`` / ``sift_symmetric`` / ``sift_swap``
    Plain, paired-block, symmetry-class and swap-based sifting.
``window3`` / ``window4``
    The Lemma-8 exact-window sweep (:func:`repro.core.window.window_sweep`)
    at widths 3 and 4 — every window solved *optimally* by FS*, so these
    strictly dominate the classic ``w!``-permutation window heuristic.
``anneal``
    Simulated annealing over transpositions with a seeded deterministic
    RNG — same seed, same answer, on any backend.
``influence`` / ``entropy``
    Static profile orders: descending variable influence
    (:func:`repro.analysis.influence.influence_order`) and descending
    information gain built from :func:`repro.analysis.entropy.binary_entropy`
    (Popel's entropy-measure family).

Every strategy reports an *honest* size: the final ordering is scored by
the exact chain-cost oracle under the requested reduction rule, with a
budget check per evaluation.  A strategy that exhausts its
:meth:`~repro.core.budget.Budget.subbudget` share returns its
best-so-far ordering with ``status="budget_exceeded"`` instead of
raising — only cancellation propagates — so a raced portfolio always
yields an ordering.
"""

from __future__ import annotations

import itertools
import math
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple,
)

import numpy as np

from ._bitops import insert_bit_indices
from .analysis.counters import OperationCounters
from .analysis.entropy import binary_entropy
from .analysis.influence import influence_order
from .analysis.symmetry import symmetry_classes
from .core.budget import Budget, _governed_size_fn
from .core.engine import EngineConfig
from .core.spec import ReductionRule
from .errors import BudgetExceeded, OrderingError
from .truth_table import TruthTable, count_subfunctions, obdd_size

SizeFn = Callable[[TruthTable, Sequence[int]], int]


# ----------------------------------------------------------------------
# Search results (canonical home; repro.bdd.reorder re-exports)
# ----------------------------------------------------------------------

@dataclass
class SearchResult:
    """Outcome of a heuristic ordering search."""

    order: Tuple[int, ...]
    size: int
    evaluations: int
    trajectory: List[int] = field(default_factory=list)
    """Best size after each improvement step (for convergence plots)."""


# ----------------------------------------------------------------------
# The unified sifting driver
# ----------------------------------------------------------------------

class TableSiftSubstrate:
    """Evaluation-level substrate: candidates are scored by ``size_fn``.

    ``groups`` (disjoint variable blocks) generalizes plain sifting —
    a block's members move together, preserving their relative order;
    singleton groups reproduce classic per-variable sifting exactly.
    """

    def __init__(
        self,
        table: TruthTable,
        initial_order: Optional[Sequence[int]] = None,
        size_fn: SizeFn = obdd_size,
        groups: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        n = table.n
        self._table = table
        self._order: List[int] = (
            list(initial_order) if initial_order is not None
            else list(range(n))
        )
        self._size_fn = size_fn
        if groups is not None:
            members = [v for group in groups for v in group]
            if sorted(members) != sorted(self._order):
                raise OrderingError(
                    f"groups {groups!r} are not a disjoint cover of the "
                    f"{n} variables"
                )
            self._groups: Optional[List[frozenset]] = [
                frozenset(group) for group in groups
            ]
        else:
            self._groups = None

    def evaluate_initial(self) -> int:
        return self._size_fn(self._table, list(self._order))

    def order(self) -> List[int]:
        return list(self._order)

    def widths(self) -> List[int]:
        return count_subfunctions(self._table, self._order)

    def units(self) -> List[Tuple[int, ...]]:
        if self._groups is None:
            return [(v,) for v in self._order]
        # Blocks scheduled by the current position of their first member.
        seen: List[frozenset] = []
        units: List[Tuple[int, ...]] = []
        for v in self._order:
            group = next(g for g in self._groups if v in g)
            if group in seen:
                continue
            seen.append(group)
            units.append(tuple(w for w in self._order if w in group))
        return units

    def start_position(self, unit: Tuple[int, ...]) -> int:
        first = min(self._order.index(v) for v in unit)
        return min(first, len(self._order) - len(unit))

    def _split(self, unit: Tuple[int, ...]) -> Tuple[List[int], List[int]]:
        members = set(unit)
        working = [v for v in self._order if v not in members]
        block = [v for v in self._order if v in members]
        return working, block

    def scan(self, unit: Tuple[int, ...]) -> Iterator[Tuple[int, int]]:
        working, block = self._split(unit)
        for p in range(len(working) + 1):
            candidate = working[:p] + block + working[p:]
            yield p, self._size_fn(self._table, candidate)

    def park(self, unit: Tuple[int, ...], position: int) -> None:
        working, block = self._split(unit)
        self._order = working[:position] + block + working[position:]


class SwapSiftSubstrate:
    """Swap-level substrate: a live :class:`~repro.bdd.swap.ReorderingBDD`
    walked with real adjacent level swaps (sizes read off the diagram)."""

    def __init__(self, manager: Any) -> None:
        self._m = manager

    def evaluate_initial(self) -> int:
        return self._m.size()

    def order(self) -> List[int]:
        return list(self._m.order)

    def widths(self) -> List[int]:
        return self._m.level_widths()

    def units(self) -> List[Tuple[int, ...]]:
        return [(v,) for v in self._m.order]

    def start_position(self, unit: Tuple[int, ...]) -> int:
        return self._m._position[unit[0]]

    def scan(self, unit: Tuple[int, ...]) -> Iterator[Tuple[int, int]]:
        m = self._m
        position = m._position[unit[0]]
        # Sweep down to the bottom, then up to the top: every level gets
        # measured (returning past the start restores the start order).
        while position < m.num_vars - 1:
            m.swap(position)
            position += 1
            yield position, m.size()
        while position > 0:
            m.swap(position - 1)
            position -= 1
            yield position, m.size()

    def park(self, unit: Tuple[int, ...], position: int) -> None:
        self._m.move_var(unit[0], position)
        self._m.collect()


def run_sift_schedule(
    substrate: Any,
    max_rounds: int = 10,
    budget: Optional[Budget] = None,
    counters: Optional[OperationCounters] = None,
) -> SearchResult:
    """Rudell's sifting schedule over any :class:`TableSiftSubstrate` /
    :class:`SwapSiftSubstrate`-shaped substrate.

    Each round takes the units widest-level-first, scans every placement
    of each unit, and parks it at the best position seen; improvements
    are strict against the global best, so ties keep the current
    position.  Rounds repeat to a fixpoint or ``max_rounds``.

    On a budget abort mid-scan the current unit is parked at its best
    position so far and the :class:`~repro.errors.BudgetExceeded`
    propagates enriched with ``best_order`` / ``best_bound`` — the
    ladder and the portfolio both resume from that partial work.
    """
    best_size = substrate.evaluate_initial()
    evaluations = 1
    trajectory = [best_size]
    committed_size = best_size
    for _ in range(max_rounds):
        improved = False
        widths = substrate.widths()
        order = substrate.order()
        level_of = {var: lv for lv, var in enumerate(order)}
        schedule = sorted(
            substrate.units(),
            key=lambda unit: -max(widths[level_of[v]] for v in unit),
        )
        for unit in schedule:
            best_position = substrate.start_position(unit)
            sizes: Dict[int, int] = {}
            try:
                for position, size in substrate.scan(unit):
                    if budget is not None:
                        budget.check(counters=counters, where="sift scan")
                    evaluations += 1
                    sizes[position] = size
                    if size < best_size:
                        best_size = size
                        best_position = position
                        improved = True
                        trajectory.append(size)
            except BudgetExceeded as exc:
                substrate.park(unit, best_position)
                committed_size = sizes.get(best_position, committed_size)
                exc.best_order = tuple(substrate.order())
                exc.best_bound = committed_size
                raise
            substrate.park(unit, best_position)
            committed_size = sizes.get(best_position, committed_size)
        if not improved:
            break
    return SearchResult(
        tuple(substrate.order()), best_size, evaluations, trajectory
    )


def sift_search(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    size_fn: SizeFn = obdd_size,
    max_rounds: int = 10,
    groups: Optional[Sequence[Sequence[int]]] = None,
    budget: Optional[Budget] = None,
    counters: Optional[OperationCounters] = None,
) -> SearchResult:
    """Rudell's sifting heuristic (canonical implementation).

    Each round considers every unit (largest-width level first, the
    classic schedule), moves it through every position of the ordering,
    and leaves it at the best position found.  ``groups`` turns it into
    group sifting: each block of variables moves as one unit.
    """
    substrate = TableSiftSubstrate(
        table, initial_order=initial_order, size_fn=size_fn, groups=groups
    )
    return run_sift_schedule(
        substrate, max_rounds=max_rounds, budget=budget, counters=counters
    )


def window_permutation_search(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    window: int = 3,
    size_fn: SizeFn = obdd_size,
    max_rounds: int = 10,
) -> SearchResult:
    """Window-permutation heuristic (canonical implementation).

    Slides a window of ``window`` adjacent levels across the ordering
    and replaces its contents with the best of the ``window!``
    permutations.  Rounds repeat until no window improves.  The
    registered ``window3``/``window4`` strategies use the strictly
    stronger exact-window sweep instead; this survives as the historical
    baseline behind :func:`repro.bdd.reorder.window_permute`.
    """
    n = table.n
    if window < 2:
        raise ValueError("window must be at least 2")
    window = min(window, n) if n else window
    order = list(initial_order) if initial_order is not None else list(range(n))
    evaluations = 1
    best_size = size_fn(table, list(order))
    trajectory = [best_size]

    for _ in range(max_rounds):
        improved = False
        for start in range(max(n - window + 1, 0)):
            segment = order[start:start + window]
            best_perm = tuple(segment)
            for perm in itertools.permutations(segment):
                if perm == tuple(segment):
                    continue
                candidate = order[:start] + list(perm) + order[start + window:]
                evaluations += 1
                size = size_fn(table, candidate)
                if size < best_size:
                    best_size = size
                    best_perm = perm
                    improved = True
                    trajectory.append(size)
            order = order[:start] + list(best_perm) + order[start + window:]
        if not improved:
            break
    return SearchResult(tuple(order), best_size, evaluations, trajectory)


# ----------------------------------------------------------------------
# The strategy registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StrategySpec:
    """A registered strategy: the callable plus its shelf card."""

    name: str
    fn: Callable[["StrategyContext"], "_Outcome"]
    description: str
    kind: str = "search"
    """``sift`` / ``window`` / ``anneal`` / ``static`` — for display."""


_STRATEGIES: Dict[str, StrategySpec] = {}


def register_strategy(
    name: str, *, description: str, kind: str = "search",
) -> Callable[[Callable], Callable]:
    """Decorator registering an ordering strategy under ``name``.

    The callable receives a :class:`StrategyContext` and returns the
    order/size/evaluations it found; registered names become valid for
    ``repro.solve(strategy=...)``, ``fallback_rungs=`` ladders, the CLI
    ``--strategy`` flag and the serve daemon's ``strategy`` field."""
    def deco(fn: Callable) -> Callable:
        if name in _STRATEGIES:
            raise ValueError(f"strategy {name!r} is already registered")
        _STRATEGIES[name] = StrategySpec(
            name=name, fn=fn, description=description, kind=kind
        )
        return fn
    return deco


def get_strategy(name: str) -> StrategySpec:
    """Resolve a registered strategy; raises ``OrderingError`` on
    unknown names, listing the valid ones."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise OrderingError(
            f"unknown strategy {name!r}; registered strategies: "
            f"{', '.join(available_strategies())}"
        ) from None


def available_strategies() -> Tuple[str, ...]:
    """Registered strategy names, sorted (for CLI listings and errors)."""
    return tuple(sorted(_STRATEGIES))


# ----------------------------------------------------------------------
# Strategy execution context and results
# ----------------------------------------------------------------------

@dataclass
class StrategyContext:
    """Everything one strategy invocation may consult.

    ``budget`` is the strategy's own (sub)budget share; ``counters`` is
    the strategy's own sink — a raced portfolio gives every member a
    fresh one and merges them in sorted-name order, which is what makes
    the merged counters independent of scheduling."""

    table: TruthTable
    rule: ReductionRule
    budget: Budget
    counters: OperationCounters
    engine: str = "numpy"
    jobs: int = 1
    backend: Any = "serial"
    frontier_store: Any = "dict"
    cache: Optional[Any] = None
    profiler: Optional[Any] = None
    seed: int = 0
    initial_order: Optional[Tuple[int, ...]] = None
    max_rounds: int = 10

    def governed_size_fn(self) -> SizeFn:
        """Exact chain-cost oracle under :attr:`rule` (total nodes,
        terminals included), budget-checked per evaluation."""
        return _governed_size_fn(
            self.rule, self.engine, self.counters, self.budget
        )

    def ungoverned_size_fn(self) -> SizeFn:
        """The same oracle without budget checks — used exactly once to
        honestly score a best-so-far ordering after an abort."""
        return _governed_size_fn(
            self.rule, self.engine, self.counters, Budget()
        )

    def start_order(self) -> List[int]:
        if self.initial_order is not None:
            return list(self.initial_order)
        return list(range(self.table.n))


@dataclass
class _Outcome:
    """What a strategy callable hands back to :func:`run_strategy`."""

    order: Tuple[int, ...]
    size: int
    evaluations: int
    trajectory: List[int] = field(default_factory=list)
    detail: str = ""
    from_cache: bool = False


@dataclass
class StrategyResult:
    """One strategy's scored answer (portfolio scoreboard row)."""

    name: str
    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    size: int
    """Total node count including terminals under :attr:`order`, scored
    by the exact chain-cost oracle — honest even on a budget abort."""

    num_terminals: int
    evaluations: int
    status: str
    """``"ok"`` or ``"budget_exceeded"`` (best-so-far answer)."""

    seconds: float
    counters: OperationCounters
    trajectory: List[int] = field(default_factory=list)
    detail: str = ""
    from_cache: bool = False
    budget_reason: Optional[str] = None

    @property
    def mincost(self) -> int:
        """Internal nodes (size minus terminals)."""
        return self.size - self.num_terminals

    @property
    def exact(self) -> bool:
        """Strategies never certify optimality."""
        return False


@dataclass
class PortfolioResult:
    """The race's verdict: the deterministic winner plus every row.

    The winner minimizes ``(size, name)`` over all members — best size
    first, lexicographically lowest strategy name on ties — which is
    independent of ``jobs``, backend and completion timing."""

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    mincost: int
    num_terminals: int
    winner: str
    results: List[StrategyResult]
    counters: OperationCounters

    exact: bool = False

    @property
    def size(self) -> int:
        """Total node count including terminals (Figure 1 convention)."""
        return self.mincost + self.num_terminals

    @property
    def from_cache(self) -> bool:
        winning = next(r for r in self.results if r.name == self.winner)
        return winning.from_cache


# ----------------------------------------------------------------------
# The registered strategies
# ----------------------------------------------------------------------

@register_strategy(
    "sift",
    description="Rudell sifting, scored by the exact chain-cost oracle",
    kind="sift",
)
def _strategy_sift(ctx: StrategyContext) -> _Outcome:
    result = sift_search(
        ctx.table,
        initial_order=ctx.start_order(),
        size_fn=ctx.governed_size_fn(),
        max_rounds=ctx.max_rounds,
    )
    return _Outcome(result.order, result.size, result.evaluations,
                    result.trajectory)


@register_strategy(
    "sift_group",
    description="group sifting: adjacent pairs of the start order move "
                "as blocks",
    kind="sift",
)
def _strategy_sift_group(ctx: StrategyContext) -> _Outcome:
    start = ctx.start_order()
    groups = [tuple(start[i:i + 2]) for i in range(0, len(start), 2)]
    result = sift_search(
        ctx.table,
        initial_order=start,
        size_fn=ctx.governed_size_fn(),
        max_rounds=ctx.max_rounds,
        groups=groups,
    )
    return _Outcome(result.order, result.size, result.evaluations,
                    result.trajectory,
                    detail=f"{len(groups)} blocks")


@register_strategy(
    "sift_symmetric",
    description="symmetric sifting: symmetry classes "
                "(analysis.symmetry) move as blocks",
    kind="sift",
)
def _strategy_sift_symmetric(ctx: StrategyContext) -> _Outcome:
    classes = symmetry_classes(ctx.table)
    result = sift_search(
        ctx.table,
        initial_order=ctx.start_order(),
        size_fn=ctx.governed_size_fn(),
        max_rounds=ctx.max_rounds,
        groups=[tuple(cls) for cls in classes],
    )
    nontrivial = sum(1 for cls in classes if len(cls) > 1)
    return _Outcome(result.order, result.size, result.evaluations,
                    result.trajectory,
                    detail=f"{len(classes)} classes ({nontrivial} symmetric)")


@register_strategy(
    "sift_swap",
    description="swap-based sifting on a live ReorderingBDD "
                "(bdd.swap level swaps); final order rescored under the "
                "requested rule",
    kind="sift",
)
def _strategy_sift_swap(ctx: StrategyContext) -> _Outcome:
    table = ctx.table
    oracle = ctx.governed_size_fn()
    if table.n < 2:
        order = tuple(ctx.start_order())
        return _Outcome(order, oracle(table, list(order)), 1)
    from .bdd.swap import ReorderingBDD  # deferred: repro.bdd imports us

    manager = ReorderingBDD(table.n, order=ctx.start_order())
    manager.from_truth_table(table)
    search = run_sift_schedule(
        SwapSiftSubstrate(manager),
        max_rounds=ctx.max_rounds,
        budget=ctx.budget,
        counters=ctx.counters,
    )
    size = oracle(table, list(search.order))
    return _Outcome(tuple(search.order), size, search.evaluations + 1,
                    search.trajectory,
                    detail="searched by diagram size, rescored by oracle")


def _window_strategy(width: int) -> Callable[[StrategyContext], _Outcome]:
    def run(ctx: StrategyContext) -> _Outcome:
        table = ctx.table
        if table.n < 2:
            order = tuple(ctx.start_order())
            return _Outcome(order, ctx.governed_size_fn()(table, list(order)), 1)
        from .core.fs import terminal_values
        from .core.window import window_sweep

        config = EngineConfig(
            kernel=ctx.engine,
            jobs=ctx.jobs,
            backend=ctx.backend,
            frontier_store=ctx.frontier_store,
            cache=ctx.cache,
            profiler=ctx.profiler,
            budget=ctx.budget,
        )
        result = window_sweep(
            table,
            initial_order=ctx.initial_order,
            width=min(width, table.n),
            rule=ctx.rule,
            max_rounds=ctx.max_rounds,
            counters=ctx.counters,
            config=config,
        )
        total = result.size + len(terminal_values(table, ctx.rule))
        return _Outcome(
            tuple(result.order), total, result.windows_solved,
            detail=f"{result.windows_solved} exact windows of width "
                   f"{min(width, table.n)}",
            from_cache=result.from_cache,
        )
    return run


register_strategy(
    "window3",
    description="exact-window sweep (Lemma 8) of width 3",
    kind="window",
)(_window_strategy(3))

register_strategy(
    "window4",
    description="exact-window sweep (Lemma 8) of width 4",
    kind="window",
)(_window_strategy(4))


@register_strategy(
    "anneal",
    description="simulated annealing over transpositions with a seeded "
                "deterministic RNG",
    kind="anneal",
)
def _strategy_anneal(ctx: StrategyContext) -> _Outcome:
    table = ctx.table
    n = table.n
    size_fn = ctx.governed_size_fn()
    order = ctx.start_order()
    current = size_fn(table, order)
    evaluations = 1
    best_order, best_size = list(order), current
    trajectory = [current]
    if n < 2:
        return _Outcome(tuple(order), current, evaluations, trajectory)

    rng = random.Random(ctx.seed)
    steps = 60 * n
    t_start = max(1.0, 0.05 * current)
    t_end = 0.1
    for step in range(steps):
        temperature = t_start * (t_end / t_start) ** (step / max(steps - 1, 1))
        i = rng.randrange(n)
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        candidate = list(order)
        candidate[i], candidate[j] = candidate[j], candidate[i]
        size = size_fn(table, candidate)
        evaluations += 1
        delta = size - current
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            order, current = candidate, size
            if current < best_size:
                best_order, best_size = list(order), current
                trajectory.append(current)
    return _Outcome(tuple(best_order), best_size, evaluations, trajectory,
                    detail=f"{steps} proposals, seed {ctx.seed}")


@register_strategy(
    "influence",
    description="static order by descending variable influence "
                "(analysis.influence)",
    kind="static",
)
def _strategy_influence(ctx: StrategyContext) -> _Outcome:
    order = influence_order(ctx.table, descending=True)
    size = ctx.governed_size_fn()(ctx.table, order)
    return _Outcome(tuple(order), size, 1, [size])


def entropy_gain_order(table: TruthTable) -> List[int]:
    """Ordering by descending information gain (Popel's entropy family).

    The gain of ``x_i`` is ``H(f) - (H(f|x_i=0) + H(f|x_i=1)) / 2`` over
    the uniform input distribution — how much splitting on ``x_i``
    reduces output entropy.  Ties break by variable index."""
    n = table.n
    if n == 0:
        return []
    values = np.asarray(table.values) != 0
    total = 1 << n
    h_f = binary_entropy(float(np.count_nonzero(values)) / total)
    half = total // 2
    gains: List[float] = []
    for var in range(n):
        idx0, idx1 = insert_bit_indices(half, var)
        h0 = binary_entropy(float(np.count_nonzero(values[idx0])) / half)
        h1 = binary_entropy(float(np.count_nonzero(values[idx1])) / half)
        gains.append(h_f - 0.5 * (h0 + h1))
    return sorted(range(n), key=lambda v: (-gains[v], v))


@register_strategy(
    "entropy",
    description="static order by descending information gain "
                "(Popel's entropy measure, via analysis.entropy)",
    kind="static",
)
def _strategy_entropy(ctx: StrategyContext) -> _Outcome:
    if ctx.table.n == 0:
        order: Tuple[int, ...] = ()
    else:
        order = tuple(entropy_gain_order(ctx.table))
    size = ctx.governed_size_fn()(ctx.table, list(order))
    return _Outcome(order, size, 1, [size])


# ----------------------------------------------------------------------
# Running strategies: standalone and raced
# ----------------------------------------------------------------------

def run_strategy(
    name: str,
    table: TruthTable,
    *,
    rule: ReductionRule = ReductionRule.BDD,
    budget: Optional[Budget] = None,
    counters: Optional[OperationCounters] = None,
    seed: int = 0,
    initial_order: Optional[Sequence[int]] = None,
    max_rounds: int = 10,
    config: Optional[EngineConfig] = None,
) -> StrategyResult:
    """Run one registered strategy standalone under a budget.

    Engine knobs (kernel, jobs, backend, frontier store, cache,
    profiler) come from ``config`` (an
    :class:`~repro.core.engine.EngineConfig`); ``budget`` overrides
    ``config.budget``.  A deadline or frontier-cap abort returns the
    best-so-far ordering with ``status="budget_exceeded"`` — its size
    honestly rescored — instead of raising; only cancellation
    propagates.
    """
    spec = get_strategy(name)
    if config is None:
        config = EngineConfig()
    if budget is None:
        budget = config.budget if config.budget is not None else Budget()
    budget.ensure_armed()
    if counters is None:
        counters = OperationCounters()
    ctx = StrategyContext(
        table=table,
        rule=rule,
        budget=budget,
        counters=counters,
        engine=config.kernel,
        jobs=config.jobs,
        backend=config.backend,
        frontier_store=config.frontier_store,
        cache=config.cache,
        profiler=config.profiler,
        seed=seed,
        initial_order=tuple(initial_order) if initial_order is not None
        else None,
        max_rounds=max_rounds,
    )
    started = time.perf_counter()
    try:
        outcome = spec.fn(ctx)
        status = "ok"
        budget_reason: Optional[str] = None
    except BudgetExceeded as exc:
        if exc.reason == "cancelled":
            raise
        # budget_aborts was already tallied by Budget.check at the raise
        # site (the governed oracle passes these counters through).
        order = (
            tuple(exc.best_order) if exc.best_order is not None
            else tuple(ctx.start_order())
        )
        size = ctx.ungoverned_size_fn()(table, list(order))
        outcome = _Outcome(order, size, 0, detail=str(exc))
        status = "budget_exceeded"
        budget_reason = exc.reason
    seconds = time.perf_counter() - started
    from .core.fs import terminal_values  # deferred: heavy engine family

    return StrategyResult(
        name=name,
        n=table.n,
        rule=rule,
        order=tuple(outcome.order),
        size=outcome.size,
        num_terminals=len(terminal_values(table, rule)),
        evaluations=outcome.evaluations,
        status=status,
        seconds=seconds,
        counters=counters,
        trajectory=outcome.trajectory,
        detail=outcome.detail,
        from_cache=outcome.from_cache,
        budget_reason=budget_reason,
    )


def run_portfolio(
    table: TruthTable,
    *,
    strategies: Optional[Sequence[str]] = None,
    budget: Optional[Budget] = None,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    seed: int = 0,
    initial_order: Optional[Sequence[int]] = None,
    max_rounds: int = 10,
    config: Optional[EngineConfig] = None,
) -> PortfolioResult:
    """Race the registered strategies and return the deterministic winner.

    Every member receives its own fresh
    :class:`~repro.analysis.counters.OperationCounters` and an equal
    :meth:`~repro.core.budget.Budget.subbudget` share of the remaining
    deadline; with ``config.jobs > 1`` members run on racing threads
    (exact inner sweeps serialize on the shared warm backend).  The
    winner minimizes ``(size, strategy name)`` and the per-member
    counters merge into ``counters`` in sorted-name order, so both the
    answer and the merged counters are bit-identical across jobs counts
    and backends.  Starved members contribute their best-so-far row
    instead of failing the race; only cancellation raises.
    """
    names = tuple(strategies) if strategies is not None \
        else available_strategies()
    if not names:
        raise OrderingError("portfolio needs at least one strategy")
    if len(set(names)) != len(names):
        raise OrderingError(f"duplicate strategy names in {names!r}")
    for name in names:
        get_strategy(name)
    if config is None:
        config = EngineConfig()
    if counters is None:
        counters = OperationCounters()
    if budget is None:
        budget = config.budget if config.budget is not None else Budget()
    budget.arm()
    remaining = budget.remaining()
    share = None if remaining is None else remaining / len(names)

    from .core.executor import resolve_backend  # deferred: engine family

    backend_obj, owns_backend = resolve_backend(
        config.backend, max_pool_rebuilds=config.max_pool_rebuilds
    )
    member_config = EngineConfig(
        kernel=config.kernel,
        jobs=config.jobs,
        backend=backend_obj,
        frontier_store=config.frontier_store,
        cache=config.cache,
        profiler=config.profiler,
    )

    def run_one(name: str) -> StrategyResult:
        return run_strategy(
            name,
            table,
            rule=rule,
            budget=budget.subbudget(share),
            seed=seed,
            initial_order=initial_order,
            max_rounds=max_rounds,
            config=member_config,
        )

    try:
        race_jobs = min(config.jobs, len(names))
        if race_jobs > 1:
            with ThreadPoolExecutor(
                max_workers=race_jobs, thread_name_prefix="portfolio"
            ) as pool:
                results = list(pool.map(run_one, names))
        else:
            results = [run_one(name) for name in names]
    finally:
        if owns_backend:
            backend_obj.close()

    for result in sorted(results, key=lambda r: r.name):
        counters.merge(result.counters)
    winner = min(results, key=lambda r: (r.size, r.name))
    return PortfolioResult(
        n=table.n,
        rule=rule,
        order=winner.order,
        mincost=winner.mincost,
        num_terminals=winner.num_terminals,
        winner=winner.name,
        results=sorted(results, key=lambda r: (r.size, r.name)),
        counters=counters,
    )
