"""repro: exact optimal variable ordering for binary decision diagrams.

A from-scratch reproduction of the Friedman-Supowit ``O*(3^n)`` exact
optimal-ordering dynamic program ("Finding the Optimal Variable Ordering
for Binary Decision Diagrams", DAC 1987) together with its generalization
and quantum divide-and-conquer extensions (Tani's ``O*(2.77286^n)``
algorithm), over fully independent OBDD / ZDD / MTBDD substrates.

Quick start
-----------
>>> from repro import parse, solve
>>> solution = solve(parse("x0 & x1 | x2 & x3 | x4 & x5"))
>>> solution.size        # minimum OBDD node count (incl. terminals)
8
>>> solution.order       # an optimal read order
(0, 1, 2, 3, 4, 5)

``solve(problem, method="fs"|"shared"|"constrained"|"window"|"fs_star")``
is the stable front door over the five DP entry points (``run_fs`` and
friends remain the full-fidelity interfaces).  Orthogonally,
``solve(problem, strategy="exact"|"fallback"|"portfolio"|<name>)``
selects how hard to try: the exact DP, the budget-degradation ladder,
or the registered heuristic portfolio (see :mod:`repro.portfolio`).

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the paper-vs-measured record.
"""

from .analysis import (
    OperationCounters,
    binary_entropy,
    gamma0,
    gamma1,
    solve_parameters,
    solve_table1,
    solve_table2,
    theorem13_constant,
)
from .bdd import BDD, MTBDD, ReorderingBDD, ZDD, sift, window_permute
from .core import (
    AStarResult,
    Diagram,
    WindowResult,
    FSResult,
    OptOBDDResult,
    ReductionRule,
    brute_force_optimal,
    build_diagram,
    find_optimal_ordering,
    mincost_by_split,
    opt_obdd,
    opt_obdd_composed,
    astar_optimal_ordering,
    exact_window,
    reconstruct_minimum_diagram,
    run_fs,
    run_fs_shared,
    run_fs_star,
    window_sweep,
)
from .api import OrderingSolution, solve
from .expr import CNF, DNF, Circuit, parse, to_truth_table
from .portfolio import (
    PortfolioResult,
    SearchResult,
    StrategyResult,
    available_strategies,
    register_strategy,
    run_portfolio,
    run_strategy,
    sift_search,
    window_permutation_search,
)
from .quantum import ClassicalMinimumFinder, QuantumMinimumFinder, QueryLedger
from .truth_table import TruthTable, count_subfunctions, obdd_size

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # input representations
    "TruthTable",
    "parse",
    "DNF",
    "CNF",
    "Circuit",
    "to_truth_table",
    # unified front door
    "solve",
    "OrderingSolution",
    # core algorithms
    "ReductionRule",
    "run_fs",
    "run_fs_shared",
    "find_optimal_ordering",
    "run_fs_star",
    "opt_obdd",
    "opt_obdd_composed",
    "mincost_by_split",
    "brute_force_optimal",
    "astar_optimal_ordering",
    "AStarResult",
    "exact_window",
    "window_sweep",
    "WindowResult",
    "ReorderingBDD",
    "FSResult",
    "OptOBDDResult",
    "Diagram",
    "build_diagram",
    "reconstruct_minimum_diagram",
    # substrates
    "BDD",
    "ZDD",
    "MTBDD",
    "sift",
    "window_permute",
    "obdd_size",
    "count_subfunctions",
    # heuristic strategy portfolio
    "available_strategies",
    "register_strategy",
    "run_portfolio",
    "run_strategy",
    "sift_search",
    "window_permutation_search",
    "PortfolioResult",
    "SearchResult",
    "StrategyResult",
    # quantum (simulated)
    "QueryLedger",
    "ClassicalMinimumFinder",
    "QuantumMinimumFinder",
    # analysis
    "OperationCounters",
    "binary_entropy",
    "gamma0",
    "gamma1",
    "solve_parameters",
    "solve_table1",
    "solve_table2",
    "theorem13_constant",
]
