"""Truth tables: the canonical input representation of the FS algorithm.

The paper's algorithm takes a Boolean function ``f : {0,1}^n -> {0,1}`` as a
truth table (``TABLE_0`` in the paper's notation is exactly this table), and
Corollary 2 extends it to any representation evaluable in polynomial time —
see :func:`TruthTable.from_callable` and :mod:`repro.expr`.

Conventions
-----------
A table over ``n`` variables stores ``2**n`` values indexed by the packed
assignment ``sum(x_i << i)`` — i.e. bit ``i`` of the index is the value of
variable ``i``.  Values are small non-negative integers; ``0``/``1`` for
plain Boolean functions, arbitrary for the multi-terminal (MTBDD) case of
the paper's Remark 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ._bitops import insert_bit_indices, popcount
from .errors import DimensionError


class TruthTable:
    """An immutable truth table of an ``n``-variable discrete function.

    Parameters
    ----------
    n:
        Number of input variables.
    values:
        Sequence of ``2**n`` non-negative integers; ``values[a]`` is the
        function value on the packed assignment ``a``.
    """

    __slots__ = ("n", "values")

    def __init__(self, n: int, values) -> None:
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1 or arr.shape[0] != (1 << n):
            raise DimensionError(
                f"expected {1 << n} values for n={n}, got shape {arr.shape}"
            )
        if arr.size and arr.min() < 0:
            raise ValueError("truth-table values must be non-negative integers")
        arr.setflags(write=False)
        self.n = n
        self.values = arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_callable(cls, n: int, fn: Callable[..., int]) -> "TruthTable":
        """Tabulate ``fn`` over all ``2**n`` assignments (Corollary 2).

        ``fn`` receives ``n`` positional arguments, each 0 or 1, and must
        return an ``int`` (``bool`` is accepted).  This is the ``O*(2^n)``
        truth-table preparation step the paper describes for functions given
        as circuits, DNFs, CNFs, or existing OBDDs.
        """
        size = 1 << n
        values = np.empty(size, dtype=np.int64)
        for a in range(size):
            bits = tuple((a >> i) & 1 for i in range(n))
            values[a] = int(fn(*bits))
        return cls(n, values)

    @classmethod
    def from_evaluator(cls, n: int, evaluate: Callable[[int], int]) -> "TruthTable":
        """Like :meth:`from_callable` but ``evaluate`` takes the packed index."""
        size = 1 << n
        values = np.empty(size, dtype=np.int64)
        for a in range(size):
            values[a] = int(evaluate(a))
        return cls(n, values)

    @classmethod
    def from_minterms(cls, n: int, minterms: Iterable[int]) -> "TruthTable":
        """Boolean table that is 1 exactly on the given packed assignments."""
        values = np.zeros(1 << n, dtype=np.int64)
        for m in minterms:
            if not 0 <= m < (1 << n):
                raise DimensionError(f"minterm {m} out of range for n={n}")
            values[m] = 1
        return cls(n, values)

    @classmethod
    def constant(cls, n: int, value: int) -> "TruthTable":
        """The constant function ``value`` on ``n`` variables."""
        return cls(n, np.full(1 << n, int(value), dtype=np.int64))

    @classmethod
    def projection(cls, n: int, var: int) -> "TruthTable":
        """The function ``f(x) = x_var``."""
        if not 0 <= var < n:
            raise DimensionError(f"variable {var} out of range for n={n}")
        a = np.arange(1 << n, dtype=np.int64)
        return cls(n, (a >> var) & 1)

    @classmethod
    def random(
        cls, n: int, seed: Optional[int] = None, num_values: int = 2
    ) -> "TruthTable":
        """A uniformly random table (Boolean by default, multi-valued if
        ``num_values > 2``)."""
        rng = np.random.default_rng(seed)
        return cls(n, rng.integers(0, num_values, size=1 << n, dtype=np.int64))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __call__(self, *bits: int) -> int:
        if len(bits) != self.n:
            raise DimensionError(f"expected {self.n} arguments, got {len(bits)}")
        index = 0
        for i, b in enumerate(bits):
            index |= (int(b) & 1) << i
        return int(self.values[index])

    def evaluate_packed(self, assignment: int) -> int:
        """Value on a packed assignment (bit ``i`` = variable ``i``)."""
        return int(self.values[assignment])

    def is_boolean(self) -> bool:
        """True if every value is 0 or 1."""
        return bool(self.values.max(initial=0) <= 1)

    def num_distinct_values(self) -> int:
        return int(np.unique(self.values).size)

    def ones(self) -> List[int]:
        """Packed assignments on which a Boolean table evaluates to 1."""
        return [int(a) for a in np.nonzero(self.values)[0]]

    def count_ones(self) -> int:
        return int(np.count_nonzero(self.values))

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Restrict ``x_var = value`` yielding a table on ``n - 1`` variables.

        The remaining variables keep their relative order and are re-indexed
        densely (variable ``j > var`` becomes ``j - 1``).
        """
        if not 0 <= var < self.n:
            raise DimensionError(f"variable {var} out of range for n={self.n}")
        idx0, idx1 = insert_bit_indices(1 << (self.n - 1), var)
        chosen = idx1 if value else idx0
        return TruthTable(self.n - 1, self.values[chosen])

    def restrict(self, assignments: Sequence[Tuple[int, int]]) -> "TruthTable":
        """Apply several ``(var, value)`` restrictions at once.

        Variables are given in terms of the *original* indexing of ``self``;
        the result is over the surviving variables, re-indexed densely.
        """
        table = self
        # Apply in descending variable order so earlier indices stay valid.
        for var, value in sorted(assignments, key=lambda p: -p[0]):
            table = table.cofactor(var, value)
        return table

    def depends_on(self, var: int) -> bool:
        """True iff the function's value ever changes with ``x_var``."""
        return self.cofactor(var, 0) != self.cofactor(var, 1)

    def support(self) -> List[int]:
        """Variables the function essentially depends on."""
        return [v for v in range(self.n) if self.depends_on(v)]

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Rename variables: new variable ``i`` is old variable ``perm[i]``.

        ``perm`` must be a permutation of ``range(n)``.  The resulting table
        ``g`` satisfies ``g(y_0,...,y_{n-1}) = f(x)`` with
        ``x_{perm[i]} = y_i``.
        """
        n = self.n
        if sorted(perm) != list(range(n)):
            raise DimensionError(f"{perm!r} is not a permutation of range({n})")
        cube = self.values.reshape((2,) * n)
        # Axis k of `cube` corresponds to variable n-1-k (C order: last axis
        # is the fastest-varying index bit, i.e. variable 0).
        axes = [n - 1 - perm[n - 1 - k] for k in range(n)]
        return TruthTable(n, np.ascontiguousarray(np.transpose(cube, axes)).reshape(-1))

    def canonical_form(
        self,
        reduce_support: bool = True,
        allow_complement: bool = True,
        max_perms: int = 5040,
    ) -> "CanonicalForm":
        """Canonical representative of this table's NPN-style orbit.

        See :func:`canonicalize_tables`; this is the single-output
        convenience wrapper used by the result cache."""
        return canonicalize_tables(
            [self],
            reduce_support=reduce_support,
            allow_complement=allow_complement,
            max_perms=max_perms,
        )

    # ------------------------------------------------------------------
    # Boolean algebra (elementwise; tables must be Boolean & same n)
    # ------------------------------------------------------------------
    def _check_binop(self, other: "TruthTable") -> None:
        if not isinstance(other, TruthTable):
            raise TypeError(f"expected TruthTable, got {type(other).__name__}")
        if other.n != self.n:
            raise DimensionError(f"operand arity mismatch: {self.n} vs {other.n}")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_binop(other)
        return TruthTable(self.n, (self.values != 0) & (other.values != 0))

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_binop(other)
        return TruthTable(self.n, (self.values != 0) | (other.values != 0))

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_binop(other)
        return TruthTable(self.n, (self.values != 0) ^ (other.values != 0))

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n, (self.values == 0).astype(np.int64))

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self.values, other.values))

    def __hash__(self) -> int:
        return hash((self.n, self.values.tobytes()))

    def __repr__(self) -> str:
        if self.n <= 5:
            body = "".join(str(int(v)) for v in self.values)
            return f"TruthTable(n={self.n}, values={body!r})"
        return f"TruthTable(n={self.n}, 2^{self.n} values)"


@dataclass(frozen=True)
class CanonicalForm:
    """A table (or output vector) normalized under variable renaming.

    ``tables`` is the canonical representative: support-reduced (when
    requested), variables renamed by the canonical permutation, outputs
    possibly complemented.  Two inputs in the same orbit — equal up to a
    permutation of their variables (and, when ``allow_complement`` was
    set, a joint output complement) — produce byte-identical canonical
    tables whenever ``exact`` is True, which is what lets the result
    cache recognize renamed resubmissions of the same function.

    The remaining fields are the witness needed to translate answers
    about the canonical function back to the original variables:
    canonical variable ``c`` is original variable ``support[perm[c]]``.
    """

    n: int
    """Arity of the *original* tables."""

    tables: Tuple[TruthTable, ...]
    """Canonical support-reduced, renamed (and possibly complemented)
    representative, one table per output."""

    support: Tuple[int, ...]
    """Original indices of the kept variables, ascending.  Equal to
    ``range(n)`` when support reduction was disabled or unnecessary."""

    perm: Tuple[int, ...]
    """Canonical variable ``c`` is kept variable ``perm[c]`` (an index
    into ``support``)."""

    complemented: bool
    """True when the canonical representative is the complement of the
    input (only ever set for Boolean tables with ``allow_complement``)."""

    exact: bool
    """True when the permutation search was exhaustive over the
    signature-compatible candidates; False when ``max_perms`` forced the
    deterministic fallback (still a valid, stable form — it just may
    fail to coincide for some highly symmetric orbit members)."""

    def canonical_bytes(self) -> bytes:
        """Concatenated cell bytes of the canonical tables (the payload
        the result cache hashes)."""
        return b"".join(t.values.tobytes() for t in self.tables)

    def map_order_back(self, canonical_order: Sequence[int]) -> List[int]:
        """Translate an ordering of the canonical variables into an
        ordering of all ``n`` original variables.

        Variables outside the support are appended at the bottom (read
        last) in ascending order; under a cofactor-merging reduction rule
        they contribute zero nodes at any position, so the translated
        ordering achieves exactly the canonical ordering's cost."""
        mapped = [self.support[self.perm[c]] for c in canonical_order]
        leftover = sorted(set(range(self.n)) - set(self.support))
        return mapped + leftover

    def map_order_forward(self, order: Sequence[int]) -> List[int]:
        """Project an ordering of the original variables onto canonical
        variables (dropping non-support variables)."""
        canonical_of = {
            self.support[kept]: c for c, kept in enumerate(self.perm)
        }
        return [canonical_of[v] for v in order if v in canonical_of]


def _variable_signature(tables: Sequence[TruthTable], var: int) -> tuple:
    """Permutation-invariant signature of one variable.

    Components (per output, in output order): the variable's boundary
    size (how many assignments flip the value — its unnormalized
    influence) and the sorted cell multisets of both cofactors.  Each
    component is invariant under any renaming of the *other* variables,
    so signatures survive jointly renaming the whole vector — the
    property that makes signature-sorted permutations an orbit-invariant
    candidate set."""
    parts = []
    for t in tables:
        c0 = t.cofactor(var, 0).values
        c1 = t.cofactor(var, 1).values
        parts.append((
            int(np.count_nonzero(c0 != c1)),
            np.sort(c0).tobytes(),
            np.sort(c1).tobytes(),
        ))
    return tuple(parts)


def _min_permutation(
    tables: Sequence[TruthTable], max_perms: int
) -> Tuple[Tuple[int, ...], bytes, bool]:
    """Lexicographically minimal joint renaming of ``tables``.

    Variables are grouped by signature; candidate permutations arrange
    the groups in signature order and try every arrangement inside each
    group (the minimum over that set is the same for every orbit member).
    When the candidate count exceeds ``max_perms`` the within-group order
    falls back to the stable original indexing — deterministic, but no
    longer orbit-invariant (flagged via the returned ``exact``)."""
    m = tables[0].n
    signatures = [_variable_signature(tables, v) for v in range(m)]
    groups: dict = {}
    for v in range(m):
        groups.setdefault(signatures[v], []).append(v)
    ordered_groups = [groups[sig] for sig in sorted(groups)]

    total = 1
    for group in ordered_groups:
        for i in range(2, len(group) + 1):
            total *= i
        if total > max_perms:
            break
    exact = total <= max_perms
    if exact:
        candidates = (
            tuple(itertools.chain.from_iterable(arrangement))
            for arrangement in itertools.product(
                *(itertools.permutations(g) for g in ordered_groups)
            )
        )
    else:
        candidates = iter(
            [tuple(itertools.chain.from_iterable(ordered_groups))]
        )

    best_perm: Optional[Tuple[int, ...]] = None
    best_bytes: Optional[bytes] = None
    for perm in candidates:
        blob = b"".join(t.permute(perm).values.tobytes() for t in tables)
        if best_bytes is None or blob < best_bytes:
            best_bytes = blob
            best_perm = perm
    assert best_perm is not None and best_bytes is not None
    return best_perm, best_bytes, exact


def canonicalize_tables(
    tables: Sequence[TruthTable],
    reduce_support: bool = True,
    allow_complement: bool = True,
    max_perms: int = 5040,
) -> CanonicalForm:
    """Joint canonical form of an output vector under variable renaming.

    All tables must share one arity; a single permutation is applied to
    every output.  With ``reduce_support`` the variables no output
    depends on are cofactored away first (sound for cofactor-merging
    rules — BDD/MTBDD/CBDD — where such variables cost zero nodes at any
    position; keep it off for ZDDs).  With ``allow_complement`` (Boolean
    tables only) the complemented vector competes for the canonical
    representative too — sound whenever complementing preserves level
    widths (BDD and CBDD; off for ZDDs and for shared forests, where
    complementing one output changes cross-output sharing).
    """
    if not tables:
        raise DimensionError("need at least one table to canonicalize")
    n = tables[0].n
    if any(t.n != n for t in tables):
        raise DimensionError("all outputs must share the same variables")

    if reduce_support:
        union = sorted(
            {v for t in tables for v in t.support()}
        )
        dead = [(v, 0) for v in range(n) if v not in union]
        reduced = (
            [t.restrict(dead) for t in tables] if dead else list(tables)
        )
        support = tuple(union)
    else:
        reduced = list(tables)
        support = tuple(range(n))

    variants = [(reduced, False)]
    if allow_complement and all(t.is_boolean() for t in tables):
        variants.append(([~t for t in reduced], True))

    best: Optional[Tuple[bytes, bool, Tuple[int, ...], List[TruthTable], bool]] = None
    for candidate, complemented in variants:
        perm, blob, exact = _min_permutation(candidate, max_perms)
        key = (blob, complemented)
        if best is None or key < (best[0], best[1]):
            best = (blob, complemented, perm,
                    [t.permute(perm) for t in candidate], exact)
    assert best is not None
    _, complemented, perm, canonical, exact = best
    return CanonicalForm(
        n=n,
        tables=tuple(canonical),
        support=support,
        perm=perm,
        complemented=complemented,
        exact=exact,
    )


def count_subfunctions(table: TruthTable, order: Sequence[int]) -> List[int]:
    """Width profile of the reduced OBDD of ``table`` under ``order``.

    ``order[0]`` is the variable read first (the root level).  Returns a
    list ``w`` of length ``n`` where ``w[k]`` is the number of OBDD nodes
    labelled with ``order[k]`` — i.e. the number of distinct subfunctions
    obtained by assigning ``order[:k]`` that *essentially depend* on
    ``order[k]`` (the classic characterization; the paper's
    ``Cost_j(f, pi)``).

    This is an implementation independent of the FS dynamic program and of
    the node-based manager, used as a cross-checking oracle in the tests.
    """
    n = table.n
    if sorted(order) != list(range(n)):
        raise DimensionError(f"{order!r} is not an ordering of range({n})")
    # Permute so that the read order becomes variable n-1 (first read, most
    # significant axis) down to variable 0 (last read).
    perm = list(order)[::-1]  # new variable i = old variable perm[i]
    g = table.permute(perm).values
    widths = []
    for k in range(n):
        # After assigning the first k read variables, subfunctions are the
        # rows of a (2^k, 2^(n-k)) matrix; the next-read variable is the top
        # bit of the column index.
        rows = g.reshape(1 << k, 1 << (n - k))
        half = 1 << (n - k - 1)
        depends = ~np.all(rows[:, :half] == rows[:, half:], axis=1)
        dependent_rows = rows[depends]
        if dependent_rows.shape[0] == 0:
            widths.append(0)
            continue
        widths.append(int(np.unique(dependent_rows, axis=0).shape[0]))
    return widths


def obdd_size(table: TruthTable, order: Sequence[int], include_terminals: bool = True) -> int:
    """Total reduced-OBDD node count of ``table`` under ``order``.

    With ``include_terminals`` the two terminal nodes are counted (as in the
    paper's Figure 1, where sizes are quoted as ``2n + 2`` and ``2^{n+1}``).
    For a constant function the diagram has a single terminal node.
    """
    widths = count_subfunctions(table, order)
    internal = sum(widths)
    if not include_terminals:
        return internal
    return internal + int(np.unique(table.values).size)
