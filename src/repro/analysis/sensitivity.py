"""Ordering-sensitivity statistics: how much does the ordering matter?

The paper's opening problem is that OBDD size "may vary exponentially
depending on the variable ordering".  This module quantifies that spread
per function: the distribution of sizes over all (or sampled) orderings,
the best/worst ratio, and where heuristics' results fall inside the
distribution.  Used by the benches to rank families by sensitivity and by
the examples to show the achilles function is the extreme case by design.
"""

from __future__ import annotations

import itertools
import math
import random
import statistics
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import DimensionError
from ..truth_table import TruthTable, count_subfunctions


@dataclass
class SensitivityReport:
    """Distribution of OBDD sizes (internal nodes) over orderings."""

    n: int
    orderings_examined: int
    exhaustive: bool
    minimum: int
    maximum: int
    mean: float
    median: float
    stddev: float

    @property
    def spread(self) -> float:
        """Worst/best ratio — 1.0 means the ordering is irrelevant.

        A constant function (every ordering costs 0) is perfectly
        insensitive, hence 1.0 rather than 0/0.
        """
        if self.minimum == 0:
            return 1.0 if self.maximum == 0 else math.inf
        return self.maximum / self.minimum

    @property
    def regret_of_average(self) -> float:
        """Expected penalty of ordering blindly: mean / best."""
        if self.minimum == 0:
            return 1.0 if self.mean == 0 else math.inf
        return self.mean / self.minimum


def ordering_sensitivity(
    table: TruthTable,
    sample: Optional[int] = None,
    seed: Optional[int] = None,
) -> SensitivityReport:
    """Measure the size distribution over orderings.

    Exhaustive when ``sample`` is None (requires small ``n``); otherwise
    draws ``sample`` orderings uniformly (always including the natural
    one, so the minimum is an upper bound on the true optimum).
    """
    n = table.n
    if n < 1:
        raise DimensionError("need at least one variable")
    sizes: List[int] = []
    if sample is None:
        if n > 8:
            raise DimensionError(
                f"exhaustive sensitivity over {math.factorial(n)} orderings "
                "is impractical; pass sample="
            )
        for perm in itertools.permutations(range(n)):
            sizes.append(sum(count_subfunctions(table, list(perm))))
        exhaustive = True
    else:
        if sample < 1:
            raise DimensionError("sample must be positive")
        rng = random.Random(seed)
        orders = [list(range(n))]
        for _ in range(sample - 1):
            order = list(range(n))
            rng.shuffle(order)
            orders.append(order)
        sizes = [sum(count_subfunctions(table, order)) for order in orders]
        exhaustive = False
    return SensitivityReport(
        n=n,
        orderings_examined=len(sizes),
        exhaustive=exhaustive,
        minimum=min(sizes),
        maximum=max(sizes),
        mean=statistics.mean(sizes),
        median=statistics.median(sizes),
        stddev=statistics.pstdev(sizes) if len(sizes) > 1 else 0.0,
    )


def heuristic_percentile(
    table: TruthTable,
    heuristic_size: int,
    sample: int = 200,
    seed: Optional[int] = None,
) -> float:
    """Fraction of sampled orderings the heuristic's result beats or ties.

    1.0 means the heuristic beat every sampled ordering; 0.5 means it is
    no better than the sampling median.
    """
    n = table.n
    rng = random.Random(seed)
    beaten = 0
    for _ in range(sample):
        order = list(range(n))
        rng.shuffle(order)
        if heuristic_size <= sum(count_subfunctions(table, order)):
            beaten += 1
    return beaten / sample
