"""Numerical optimization of the division-point parameters.

This module re-derives, from the equation systems the paper states, every
number in the paper's Appendix C:

* the simple-case exponents of Section 3.1: ``gamma_0 = 2.98581`` (no
  preprocessing) and ``gamma_1 = 2.97625`` (with FS* preprocessing);
* Appendix B's two-parameter case ``gamma_2 = 2.8569``;
* **Table 1**: ``gamma_k`` and the optimal ``alpha`` vectors of
  ``OptOBDD(k, alpha)`` for ``k = 1..6`` (2.97625 down to 2.83728);
* **Table 2**: the composition fixed-point iteration ``3 -> 2.83728 ->
  2.79364 -> ... -> 2.77286`` of Section 4 (Theorem 13's constant).

The governing system (paper Eqs. (8)-(9), and (14)-(15) with general
subroutine base ``gamma``) is::

    1 - alpha_1 + H(alpha_1) = f(alpha_k, 1)
    f(alpha_{j-1}, alpha_j)  = g(alpha_j, alpha_{j+1})     (j = 2..k)

with ``alpha_{k+1} = 1`` and::

    f(x, y) = (y/2) H(x/y) + g(x, y)
    g(x, y) = (1 - y) + (y - x) log2 gamma .

Because ``g`` is linear in its second argument, fixing ``(alpha_1,
alpha_2)`` determines ``alpha_3, ..., alpha_{k+1}`` by forward chaining;
the system reduces to two equations in two unknowns, solved with scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from scipy import optimize

from .entropy import binary_entropy as H

LOG2_3 = math.log2(3.0)


def f_exponent(x: float, y: float, gamma: float = 3.0) -> float:
    """The paper's ``f(x, y) = (y/2) H(x/y) + g_gamma(x, y)``."""
    if not 0.0 < x < y <= 1.0:
        raise ValueError(f"require 0 < x < y <= 1, got x={x}, y={y}")
    return 0.5 * y * H(x / y) + g_exponent(x, y, gamma)


def g_exponent(x: float, y: float, gamma: float = 3.0) -> float:
    """The paper's ``g_gamma(x, y) = (1 - y) + (y - x) log2 gamma``."""
    return (1.0 - y) + (y - x) * math.log2(gamma)


# ----------------------------------------------------------------------
# Section 3.1 simple cases
# ----------------------------------------------------------------------
def gamma0() -> Tuple[float, float]:
    """No-preprocessing single split: returns ``(gamma_0, alpha*)``.

    Balancing ``(1-a) + a log2 3 = (1-a) log2 3`` gives the closed form
    ``alpha* = (log2 3 - 1) / (2 log2 3 - 1)``; the exponent is
    ``H(alpha)/2 + (1-alpha) log2 3``.  Paper: ``gamma_0 = 2.98581...``.
    """
    alpha = (LOG2_3 - 1.0) / (2.0 * LOG2_3 - 1.0)
    exponent = 0.5 * H(alpha) + (1.0 - alpha) * LOG2_3
    return 2.0 ** exponent, alpha


def gamma1() -> Tuple[float, float]:
    """Single split with FS* preprocessing: returns ``(gamma_1, alpha*)``.

    Solves ``(1-a) + H(a) = H(a)/2 + (1-a) log2 3``.  Paper:
    ``alpha* = 0.274863``, ``gamma_1 <= 2.97625``.
    """

    def balance(a: float) -> float:
        return (1.0 - a) + H(a) - (0.5 * H(a) + (1.0 - a) * LOG2_3)

    alpha = optimize.brentq(balance, 1e-9, 0.5)
    return 2.0 ** ((1.0 - alpha) + H(alpha)), alpha


def gamma2_appendix_b() -> Tuple[float, float, float]:
    """Appendix B's two-parameter case: ``(gamma_2, alpha_1*, alpha_2*)``.

    Solves Eqs. (20)-(21).  Paper: ``alpha_1* = 0.192755``,
    ``alpha_2* = 0.334571``, ``gamma_2 = 2.8569``.
    """

    def equations(a: Sequence[float]) -> List[float]:
        a1, a2 = a
        eq20 = (
            0.5 * a2 * H(a1 / a2)
            + (1.0 - a2)
            + (a2 - a1) * LOG2_3
            - (1.0 - a2) * LOG2_3
        )
        eq21 = (1.0 - a1) + H(a1) - (0.5 * H(a2) + (1.0 - a2) * LOG2_3)
        return [eq20, eq21]

    (a1, a2), info, ok, msg = optimize.fsolve(
        equations, x0=[0.2, 0.33], full_output=True
    )
    if ok != 1:  # pragma: no cover - numerics
        raise RuntimeError(f"Appendix B system did not converge: {msg}")
    return 2.0 ** ((1.0 - a1) + H(a1)), float(a1), float(a2)


# ----------------------------------------------------------------------
# The general system: Table 1 and Table 2
# ----------------------------------------------------------------------
@dataclass
class ParameterSolution:
    """Solution of the division-point system for one ``(k, gamma)``."""

    k: int
    gamma_subroutine: float
    """Exponent base of the extension subroutine (3 for FS*; the previous
    row's beta for the Table 2 iteration)."""

    alphas: Tuple[float, ...]
    base: float
    """Resulting exponent base ``2^{1 - alpha_1 + H(alpha_1)}`` (the
    paper's ``gamma_k`` in Table 1, ``beta_6`` in Table 2)."""

    exponent: float
    residual: float
    """Max absolute violation of the system at the solution."""


def _chain(a1: float, a2: float, k: int, gamma: float) -> List[float]:
    """Forward-chain alpha_3..alpha_{k+1} from (alpha_1, alpha_2).

    Uses Eq. (9) at j = 2..k; each step is linear in the next alpha since
    ``g`` is.  Returns ``[a1, a2, ..., a_{k+1}]``; stops early (padding
    with ``inf``) if the chain leaves the valid region, which the nested
    root finder interprets as "alpha_2 too large".
    """
    c = math.log2(gamma)
    alphas = [a1, a2]
    for j in range(2, k + 1):
        prev2, prev1 = alphas[j - 2], alphas[j - 1]
        if not 0.0 < prev2 < prev1:
            alphas.extend([math.inf] * (k + 1 - len(alphas)))
            break
        # f is valid for x < y with the entropy term H(x/y); prev1 may
        # legitimately exceed 1 transiently during bracketing.
        target = 0.5 * prev1 * H(min(prev2 / prev1, 1.0)) + (
            (1.0 - prev1) + (prev1 - prev2) * c
        )
        # Solve g(prev1, y) = target  =>  (1 - y) + (y - prev1) c = target.
        y = (target - 1.0 + c * prev1) / (c - 1.0)
        alphas.append(y)
    return alphas


def solve_parameters(
    k: int,
    gamma_subroutine: float = 3.0,
    initial_guess: Optional[Tuple[float, float]] = None,
) -> ParameterSolution:
    """Solve the system (8)-(9) for ``OptOBDD(k, alpha)``.

    ``gamma_subroutine`` is the exponent base of the extension subroutine
    (``3`` for classical FS*, reproducing Table 1; a previous beta for the
    Table 2 iteration).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    gamma = gamma_subroutine

    if k == 1:
        # One unknown; the boundary equation alone.
        def balance(a: float) -> float:
            return (1.0 - a) + H(a) - f_exponent(a, 1.0, gamma)

        a1 = optimize.brentq(balance, 1e-9, 0.5)
        exponent = (1.0 - a1) + H(a1)
        return ParameterSolution(
            k=1,
            gamma_subroutine=gamma,
            alphas=(a1,),
            base=2.0 ** exponent,
            exponent=exponent,
            residual=abs(balance(a1)),
        )

    def close_a2(a1: float) -> float:
        """Inner solve: the alpha_2 making the chain hit alpha_{k+1} = 1.

        The chain end is increasing in alpha_2 (it collapses to ``a1`` as
        ``a2 -> a1`` and diverges as ``a2`` grows), so bisection applies.
        """

        def end_minus_one(a2: float) -> float:
            end = _chain(a1, a2, k, gamma)[k]
            return (end - 1.0) if math.isfinite(end) else 1e6

        lo = a1 * (1.0 + 1e-12)
        hi = 0.999999
        if end_minus_one(hi) < 0.0:  # pragma: no cover - not reachable here
            raise RuntimeError("inner bracket failed: chain never reaches 1")
        return optimize.brentq(end_minus_one, lo, hi, xtol=1e-15)

    def boundary(a1: float) -> float:
        """Outer equation (8) with alpha_2 eliminated by the inner solve."""
        a2 = close_a2(a1)
        ak = _chain(a1, a2, k, gamma)[k - 1]
        return (1.0 - a1) + H(a1) - f_exponent(ak, 1.0, gamma)

    # Bracket alpha_1 by scanning; the root lies well inside (0.01, 0.45)
    # for every gamma in [2.7, 3] the paper uses.
    grid = [0.01 + 0.44 * i / 60 for i in range(61)]
    bracket = None
    previous_value = None
    previous_a = None
    for a in grid:
        try:
            value = boundary(a)
        except (ValueError, RuntimeError):
            previous_value = None
            previous_a = None
            continue
        if previous_value is not None and previous_value * value <= 0.0:
            bracket = (previous_a, a)
            break
        previous_value = value
        previous_a = a
    if bracket is None:  # pragma: no cover - numerics
        raise RuntimeError(f"could not bracket alpha_1 for k={k}, gamma={gamma}")

    a1 = optimize.brentq(boundary, bracket[0], bracket[1], xtol=1e-15)
    a2 = close_a2(a1)
    chain = _chain(a1, a2, k, gamma)
    exponent = (1.0 - a1) + H(a1)
    residual = max(abs(chain[k] - 1.0), abs(boundary(a1)))
    return ParameterSolution(
        k=k,
        gamma_subroutine=gamma,
        alphas=tuple(chain[:k]),
        base=2.0 ** exponent,
        exponent=exponent,
        residual=residual,
    )


def solve_table1(max_k: int = 6) -> List[ParameterSolution]:
    """Reproduce the paper's Table 1: ``gamma_k`` for ``k = 1..max_k``."""
    return [solve_parameters(k, 3.0) for k in range(1, max_k + 1)]


def solve_table2(iterations: int = 10, k: int = 6) -> List[ParameterSolution]:
    """Reproduce the paper's Table 2: iterate ``gamma -> beta_6(gamma)``.

    Starts from ``gamma = 3`` (classical FS*) and feeds each row's base
    back in as the next subroutine base; ten iterations reach the
    Theorem 13 constant 2.77286.
    """
    rows: List[ParameterSolution] = []
    gamma = 3.0
    guess: Optional[Tuple[float, float]] = None
    for _ in range(iterations):
        row = solve_parameters(k, gamma, initial_guess=guess)
        rows.append(row)
        gamma = row.base
        guess = (row.alphas[0], row.alphas[1])
    return rows


def theorem13_constant(iterations: int = 10) -> float:
    """The fixed-point constant of Theorem 13 (``<= 2.77286``)."""
    return solve_table2(iterations)[-1].base
