"""Operation counters instrumenting the dynamic programs.

The paper's complexity claims count table-cell operations ("computing each
FS(I) takes linear time to the size of TABLE up to a polynomial factor");
wall-clock time in Python is dominated by interpreter noise, so the
benchmarks reproduce the *shape* of those claims by counting exactly the
operations the analysis counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class OperationCounters:
    """Mutable tally of the dominant operations of the FS-family algorithms."""

    table_cells: int = 0
    """Cells written across all table compactions (the paper's dominant term:
    ``sum_k C(n,k) 2^{n-k} = 3^n`` for the full FS run)."""

    compactions: int = 0
    """Number of table-compaction invocations (pairs ``(I, i)``)."""

    nodes_created: int = 0
    """Distinct DD nodes materialized across compactions."""

    subsets_processed: int = 0
    """Subsets ``I`` whose quadruple ``FS(I)`` was finalized."""

    oracle_queries: int = 0
    """Modeled quantum-oracle queries charged by the minimum-finding
    simulator (see :mod:`repro.quantum`)."""

    classical_evaluations: int = 0
    """Candidate evaluations performed by classical minimum finders."""

    extra: Dict[str, int] = field(default_factory=dict)
    """Free-form counters for experiment-specific instrumentation."""

    def add_extra(self, key: str, amount: int = 1) -> None:
        self.extra[key] = self.extra.get(key, 0) + amount

    def copy(self) -> "OperationCounters":
        """Independent copy (for before/after deltas in profiling)."""
        fresh = OperationCounters(
            table_cells=self.table_cells,
            compactions=self.compactions,
            nodes_created=self.nodes_created,
            subsets_processed=self.subsets_processed,
            oracle_queries=self.oracle_queries,
            classical_evaluations=self.classical_evaluations,
            extra=dict(self.extra),
        )
        return fresh

    def diff(self, earlier: "OperationCounters") -> Dict[str, int]:
        """Per-key delta ``self - earlier`` (non-zero entries only).

        The execution engine's profiler records cumulative snapshots;
        this derives a single layer's contribution from two of them.
        """
        now = self.snapshot()
        then = earlier.snapshot()
        return {
            key: now[key] - then.get(key, 0)
            for key in now
            if now[key] - then.get(key, 0)
        }

    def merge(self, other: "OperationCounters") -> None:
        """Accumulate ``other`` into ``self``.

        The execution engine gives each worker thread its own counters
        and merges them in deterministic chunk order, which is why
        parallel runs tally identically to sequential ones."""
        self.table_cells += other.table_cells
        self.compactions += other.compactions
        self.nodes_created += other.nodes_created
        self.subsets_processed += other.subsets_processed
        self.oracle_queries += other.oracle_queries
        self.classical_evaluations += other.classical_evaluations
        for key, amount in other.extra.items():
            self.add_extra(key, amount)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view (for reporting / EXPERIMENTS.md tables)."""
        out = {
            "table_cells": self.table_cells,
            "compactions": self.compactions,
            "nodes_created": self.nodes_created,
            "subsets_processed": self.subsets_processed,
            "oracle_queries": self.oracle_queries,
            "classical_evaluations": self.classical_evaluations,
        }
        out.update(self.extra)
        return out
