"""Binary entropy and the binomial bounds used throughout the analysis.

The paper's Preliminaries use ``C(n, k) <= 2^{n H(k/n)}`` (its Eq. on
binomial coefficients) in every complexity derivation; these helpers are
shared by the parameter solver and the complexity models.
"""

from __future__ import annotations

import math


def binary_entropy(delta: float) -> float:
    """``H(delta) = -delta log2 delta - (1-delta) log2 (1-delta)``.

    Defined by continuity as 0 at the endpoints.
    """
    if not 0.0 <= delta <= 1.0:
        raise ValueError(f"entropy argument {delta} outside [0, 1]")
    if delta in (0.0, 1.0):
        return 0.0
    return -delta * math.log2(delta) - (1.0 - delta) * math.log2(1.0 - delta)


def binomial_entropy_bound(n: int, k: int) -> float:
    """The upper bound ``2^{n H(k/n)}`` on ``C(n, k)``."""
    if n == 0:
        return 1.0
    return 2.0 ** (n * binary_entropy(k / n))


def log2_binomial(n: int, k: int) -> float:
    """Exact ``log2 C(n, k)`` via lgamma (no overflow for large n)."""
    if not 0 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n}")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2.0)
