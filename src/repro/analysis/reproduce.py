"""One-shot reproduction runner: every paper number, with verdicts.

``python -m repro reproduce`` (or :func:`run_reproduction`) regenerates
the paper's Figure 1, Tables 1 and 2, the simple-case constants, and the
Theorem 5 operation-count law, comparing each against the published value
and printing a PASS/FAIL verdict — the quick way to audit the
reproduction without the full benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..truth_table import TruthTable, obdd_size
from .complexity import fs_table_cells
from .parameters import gamma0, gamma1, gamma2_appendix_b, solve_table1, solve_table2

PAPER_TABLE1 = [2.97625, 2.85690, 2.83925, 2.83744, 2.83729, 2.83728]
PAPER_TABLE2 = [2.83728, 2.79364, 2.77981, 2.77521, 2.77366,
                2.77313, 2.77295, 2.77289, 2.77287, 2.77286]


@dataclass
class Check:
    """One reproduced quantity."""

    name: str
    measured: str
    expected: str
    passed: bool


def run_reproduction(quick: bool = False) -> List[Check]:
    """Run every check; ``quick`` skips the (slower) FS sweeps."""
    checks: List[Check] = []

    # Figure 1 -----------------------------------------------------------
    from ..functions import (
        achilles_bad_order,
        achilles_good_order,
        achilles_heel,
    )

    for pairs in (1, 3, 5) if quick else (1, 2, 3, 4, 5, 6):
        table = achilles_heel(pairs)
        good = obdd_size(table, achilles_good_order(pairs))
        bad = obdd_size(table, achilles_bad_order(pairs))
        checks.append(Check(
            f"Figure 1, {pairs} pairs",
            f"good={good}, bad={bad}",
            f"good={2 * pairs + 2}, bad={2 ** (pairs + 1)}",
            good == 2 * pairs + 2 and bad == 2 ** (pairs + 1),
        ))

    # Simple cases --------------------------------------------------------
    for name, value, expected in (
        ("gamma_0 (Sec. 3.1)", gamma0()[0], 2.98581),
        ("gamma_1 (Sec. 3.1)", gamma1()[0], 2.97625),
        ("gamma_2 (App. B)", gamma2_appendix_b()[0], 2.8569),
    ):
        checks.append(Check(
            name, f"{value:.5f}", f"{expected}", abs(value - expected) < 5e-5
        ))

    # Table 1 --------------------------------------------------------------
    for row, expected in zip(solve_table1(6), PAPER_TABLE1):
        checks.append(Check(
            f"Table 1, k={row.k}",
            f"{row.base:.5f}",
            f"{expected:.5f}",
            abs(row.base - expected) < 2e-5,
        ))

    # Table 2 / Theorem 13 ---------------------------------------------------
    rows = solve_table2(10)
    for index, (row, expected) in enumerate(zip(rows, PAPER_TABLE2)):
        checks.append(Check(
            f"Table 2, iteration {index + 1}",
            f"{row.base:.5f}",
            f"{expected:.5f}",
            abs(row.base - expected) < 5e-6,
        ))
    checks.append(Check(
        "Theorem 13 constant",
        f"{rows[-1].base:.5f}",
        "<= 2.77286",
        rows[-1].base <= 2.77286 + 5e-6,
    ))

    # Figure 1 level profiles ----------------------------------------------
    from ..core import ReductionRule, build_diagram

    achilles3 = achilles_heel(3)
    left = build_diagram(achilles3, achilles_good_order(3)).level_widths()
    right = build_diagram(achilles3, achilles_bad_order(3)).level_widths()
    checks.append(Check(
        "Figure 1 level profiles",
        f"{left} / {right}",
        "[1,1,1,1,1,1] / [1,2,4,4,2,1]",
        left == [1] * 6 and right == [1, 2, 4, 4, 2, 1],
    ))

    # Lemma 9 and Remark 2 ---------------------------------------------------
    if not quick:
        from ..core import brute_force_optimal, mincost_by_split, run_fs

        table = TruthTable.random(5, seed=2026)
        reference = run_fs(table).mincost
        split_ok = all(
            mincost_by_split(table, k).mincost == reference
            for k in range(6)
        )
        checks.append(Check(
            "Lemma 9 split identity (n=5, all k)",
            "holds" if split_ok else "violated",
            "min over K equals MINCOST_[n]",
            split_ok,
        ))
        zdd = run_fs(table, rule=ReductionRule.ZDD).mincost
        zdd_bf = brute_force_optimal(
            table, rule=ReductionRule.ZDD, collect_all=False
        ).mincost
        checks.append(Check(
            "Remark 2 ZDD rule (n=5)",
            f"{zdd}",
            f"brute force {zdd_bf}",
            zdd == zdd_bf,
        ))

    # Theorem 5 operation law ------------------------------------------------
    if not quick:
        from ..core import run_fs

        for n in (5, 7, 9):
            result = run_fs(TruthTable.random(n, seed=n))
            expected_cells = fs_table_cells(n)
            checks.append(Check(
                f"Theorem 5 cell law, n={n}",
                f"{result.counters.table_cells}",
                f"n*3^(n-1) = {expected_cells}",
                result.counters.table_cells == expected_cells,
            ))
            checks.append(Check(
                f"FS optimum valid, n={n}",
                f"order achieves {result.mincost}",
                "order achieves MINCOST",
                obdd_size(TruthTable.random(n, seed=n), list(result.order),
                          include_terminals=False) == result.mincost,
            ))

    return checks


def render_report(checks: List[Check]) -> str:
    width = max(len(c.name) for c in checks)
    lines = []
    for check in checks:
        verdict = "PASS" if check.passed else "FAIL"
        lines.append(
            f"[{verdict}] {check.name:<{width}}  measured {check.measured}"
            f"  (paper: {check.expected})"
        )
    passed = sum(c.passed for c in checks)
    lines.append(f"\n{passed}/{len(checks)} checks passed")
    return "\n".join(lines)
