"""Variable influence: Boolean-function analysis as an ordering signal.

The influence of ``x_i`` is the probability (over uniform inputs) that
flipping ``x_i`` flips the function — a standard quantity in the analysis
of Boolean functions.  Placing high-influence variables first is one of
the oldest ordering heuristics (they split the function most evenly, so
the low widths happen near the narrow top); :func:`influence_order` packages
it, and the heuristics bench scores it against sifting and the certified
optimum.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .._bitops import insert_bit_indices
from ..errors import DimensionError
from ..truth_table import TruthTable


def influence(table: TruthTable, var: int) -> float:
    """``Pr[f(x) != f(x ^ e_var)]`` over uniform ``x``."""
    if not 0 <= var < table.n:
        raise DimensionError(f"variable {var} out of range")
    idx0, idx1 = insert_bit_indices(1 << (table.n - 1), var)
    lo = table.values[idx0]
    hi = table.values[idx1]
    return float(np.count_nonzero(lo != hi)) / (1 << (table.n - 1))


def influences(table: TruthTable) -> List[float]:
    """Influence of every variable."""
    return [influence(table, v) for v in range(table.n)]


def total_influence(table: TruthTable) -> float:
    """Sum of variable influences (average sensitivity)."""
    return sum(influences(table))


def influence_order(table: TruthTable, descending: bool = True) -> List[int]:
    """Ordering by influence (ties broken by index).

    ``descending`` puts the most influential variable at the root — the
    classic heuristic; pass ``False`` for the control experiment.
    """
    values = influences(table)
    sign = -1.0 if descending else 1.0
    return sorted(range(table.n), key=lambda v: (sign * values[v], v))


def dead_variables(table: TruthTable) -> List[int]:
    """Variables with zero influence (the function ignores them)."""
    return [v for v, value in enumerate(influences(table)) if value == 0.0]
