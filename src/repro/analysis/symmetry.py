"""Variable symmetry: detection and ordering-search pruning.

Two variables are *interchangeable* in ``f`` if swapping them leaves the
function unchanged (``f|x_i=0,x_j=1 == f|x_i=1,x_j=0``).  Interchangeable
variables yield identical widths wherever they are placed, so any two
orderings that differ only by permutations within symmetry classes have
the same OBDD profile — the ordering search space collapses by
``prod(|class|!)``.  Classic in the ordering literature (symmetric-sift
etc.); here it powers a pruned exhaustive search validated against the
unpruned one, and quantifies why families like achilles or symmetric
functions are easy for search.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DimensionError
from ..truth_table import TruthTable, count_subfunctions


def are_interchangeable(table: TruthTable, i: int, j: int) -> bool:
    """True iff swapping ``x_i`` and ``x_j`` leaves the function unchanged."""
    if not (0 <= i < table.n and 0 <= j < table.n):
        raise DimensionError("variable index out of range")
    if i == j:
        return True
    low, high = (i, j) if i < j else (j, i)
    # f with x_i=0, x_j=1 vs x_i=1, x_j=0 (restrict higher index first).
    left = table.restrict([(high, 1), (low, 0)])
    right = table.restrict([(high, 0), (low, 1)])
    return left == right


def symmetry_classes(table: TruthTable) -> List[List[int]]:
    """Partition the variables into interchangeability classes.

    Pairwise interchangeability is an equivalence relation (a transposition
    product argument), so a union-find over pairwise checks suffices.
    """
    n = table.n
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            if find(i) != find(j) and are_interchangeable(table, i, j):
                parent[find(j)] = find(i)

    classes: Dict[int, List[int]] = {}
    for v in range(n):
        classes.setdefault(find(v), []).append(v)
    return sorted(classes.values())


def search_space_reduction(table: TruthTable) -> Tuple[int, int]:
    """``(n!, n! / prod(|class|!))``: full vs symmetry-reduced ordering
    counts."""
    n = table.n
    full = math.factorial(n)
    divisor = 1
    for cls in symmetry_classes(table):
        divisor *= math.factorial(len(cls))
    return full, full // divisor


def canonical_orderings(table: TruthTable,
                        classes: Optional[List[List[int]]] = None):
    """Yield one representative per symmetry orbit of orderings.

    Representatives keep each class's members in increasing index order
    along the ordering (every orbit contains exactly one such ordering).
    """
    n = table.n
    if classes is None:
        classes = symmetry_classes(table)
    rank: Dict[int, int] = {}
    for cls in classes:
        for position, var in enumerate(sorted(cls)):
            rank[var] = position
    class_of: Dict[int, int] = {}
    for index, cls in enumerate(classes):
        for var in cls:
            class_of[var] = index

    for perm in itertools.permutations(range(n)):
        seen_rank = [0] * len(classes)
        ok = True
        for var in perm:
            cls = class_of[var]
            if rank[var] != seen_rank[cls]:
                ok = False
                break
            seen_rank[cls] += 1
        if ok:
            yield perm


def brute_force_up_to_symmetry(
    table: TruthTable,
) -> Tuple[Tuple[int, ...], int, int]:
    """Exhaustive ordering search over symmetry-orbit representatives.

    Returns ``(best_order, best_internal_nodes, orderings_evaluated)`` —
    the same optimum as the unpruned search (tests assert this) at a
    fraction of the evaluations.
    """
    best_order: Optional[Tuple[int, ...]] = None
    best_cost: Optional[int] = None
    evaluated = 0
    for order in canonical_orderings(table):
        evaluated += 1
        cost = sum(count_subfunctions(table, list(order)))
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_order = order
    assert best_order is not None and best_cost is not None
    return best_order, best_cost, evaluated
