"""The counting argument: almost every function needs exponential OBDDs.

The paper's related-work section recalls that "there exists a function for
which the OBDD size grows exponentially in the number of variables under
any variable ordering", provable "by a counting argument" [Lee59, HC92,
HM94].  This module carries that argument out with explicit constants:

* :func:`log2_functions_with_at_most` — a sound upper bound on how many
  ``n``-variable functions admit an OBDD with at most ``s`` internal
  nodes under *some* ordering (each node chooses a variable and two
  successors; orderings contribute ``n!``);
* :func:`exponential_necessity_threshold` — the largest ``s`` for which
  that count stays below ``2^{2^n}``, certifying a function needing more
  than ``s`` nodes under **every** ordering (grows like ``2^n / n``);
* :func:`max_profile` / :func:`max_obdd_nodes` — the per-level width caps
  ``min(2^k, #dependent functions below)``, i.e. the largest any reduced
  OBDD can possibly be;
* :func:`fraction_of_easy_functions_bound` — an upper bound on the
  fraction of functions whose optimal OBDD has at most ``s`` nodes.

The bench pairs these with measurements: optimal sizes of random
functions concentrate against the :func:`max_obdd_nodes` ceiling, exactly
as the argument predicts.
"""

from __future__ import annotations

import math
from typing import List

from ..errors import DimensionError


def max_profile(n: int) -> List[int]:
    """Per-level width caps for any reduced OBDD on ``n`` variables.

    Width at level ``k`` (k variables already read) is at most ``2^k``
    (distinct prefixes) and at most the number of functions of the
    remaining ``n - k`` variables that depend on their first variable,
    ``2^{2^{n-k}} - 2^{2^{n-k-1}}``.
    """
    if n < 0:
        raise DimensionError("n must be non-negative")
    widths = []
    for k in range(n):
        remaining = n - k
        dependent = (1 << (1 << remaining)) - (1 << (1 << (remaining - 1)))
        widths.append(min(1 << k, dependent))
    return widths


def max_obdd_nodes(n: int, include_terminals: bool = True) -> int:
    """The largest possible reduced-OBDD size on ``n`` variables."""
    internal = sum(max_profile(n))
    return internal + (2 if include_terminals else 0)


def log2_functions_with_at_most(n: int, s: int) -> float:
    """``log2`` upper bound on #functions with an OBDD of ``<= s``
    internal nodes under some ordering.

    A diagram with ``s`` nodes is described by, per node, a variable
    (``n`` choices) and two successors (``<= s + 2`` choices each); the
    root is one of ``s + 2`` ids, and any of ``n!`` orderings may be the
    good one.  Crude but sound — every such function is obtained from at
    least one such description.
    """
    if s < 0:
        raise DimensionError("s must be non-negative")
    if s == 0:
        # Only functions of no essential variable fit: the two constants
        # (times the ordering slack, harmless for an upper bound).
        return math.log2(math.factorial(n)) + 1 if n else 1
    return (
        math.log2(math.factorial(n))
        + s * math.log2(n if n else 1)
        + 2 * s * math.log2(s + 2)
        + math.log2(s + 2)
    )


def exponential_necessity_threshold(n: int) -> int:
    """Largest ``s`` with ``#{functions with <= s nodes} < 2^{2^n}``.

    By pigeonhole, some ``n``-variable function has **no** OBDD with at
    most ``s`` internal nodes under any ordering.  The threshold grows
    like ``2^n / n`` (the classical Shannon-style rate).
    """
    if n < 1:
        raise DimensionError("n must be positive")
    target = float(1 << n)  # log2 of 2^{2^n}
    low, high = 0, 1 << n
    while low < high:
        mid = (low + high + 1) // 2
        if log2_functions_with_at_most(n, mid) < target:
            low = mid
        else:
            high = mid - 1
    return low


def fraction_of_easy_functions_bound(n: int, s: int) -> float:
    """Upper bound on the fraction of ``n``-variable functions whose
    *optimal* OBDD has at most ``s`` internal nodes (may exceed 1 when
    the bound is vacuous)."""
    log2_fraction = log2_functions_with_at_most(n, s) - float(1 << n)
    if log2_fraction >= 0:
        return 1.0
    return 2.0 ** log2_fraction
