"""Theoretical operation-count models and empirical growth-rate fitting.

The benchmarks compare *measured* operation counts (from
:class:`~repro.analysis.counters.OperationCounters` and the quantum query
ledger) against the closed forms the paper derives; this module holds both
sides of that comparison.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .entropy import binary_entropy


def fs_table_cells(n: int) -> int:
    """Exact cells written by the full FS run.

    For each of the ``C(n, k)`` subsets of size ``k`` the DP performs ``k``
    compactions each writing ``2^{n-k}`` cells:
    ``sum_k C(n,k) * k * 2^{n-k}`` — the paper's ``3^n`` up to the
    polynomial factor (the sum equals ``n * 3^{n-1}``).
    """
    return sum(math.comb(n, k) * k * (1 << (n - k)) for k in range(1, n + 1))


def fs_star_table_cells(n: int, placed: int, j: int) -> int:
    """Cells written by FS* placing a ``j``-set over ``placed`` variables.

    ``sum_{l=1..j} C(j,l) * l * 2^{n-placed-l}`` — the paper's
    ``2^{n-|I|-|J|} 3^{|J|}`` bound's exact counterpart.
    """
    if placed + j > n:
        raise ValueError("placed + j exceeds n")
    return sum(
        math.comb(j, l) * l * (1 << (n - placed - l)) for l in range(1, j + 1)
    )


def brute_force_cells(n: int) -> int:
    """Cells written by the brute-force search: ``n!`` chains, each
    ``sum_k 2^{n-k} = 2^n - 1`` cells."""
    return math.factorial(n) * ((1 << n) - 1)


def preprocess_cells(n: int, first_level: int) -> int:
    """Cells of the OptOBDD preprocessing phase:
    ``sum_{l=1..l1} C(n,l) * l * 2^{n-l}`` (paper's
    ``sum 2^{n-l} C(n,l)`` up to the inner-loop factor ``l``)."""
    return sum(
        math.comb(n, l) * l * (1 << (n - l)) for l in range(1, first_level + 1)
    )


def theorem5_bound(n: int) -> float:
    """The paper's headline ``3^n`` (no polynomial factor)."""
    return 3.0 ** n


def trivial_bound(n: int) -> float:
    """The trivial ``n! 2^n`` bound."""
    return math.factorial(n) * 2.0 ** n


def theorem10_time_model(
    n: int, alphas: Sequence[float], epsilon: float = 1e-6
) -> Dict[str, float]:
    """Numeric evaluation of the recurrence (5)-(7) for ``OptOBDD(k, a)``.

    Returns the preprocessing term, each ``L_j``, and the total ``T(n)`` —
    with *exact* binomials and the Lemma 6 query factor, i.e. the model the
    quantum benches compare the ledger against.
    """
    levels = [max(1, round(a * n)) for a in alphas]
    levels = sorted(set(min(l, n - 1) for l in levels))
    levels_ext = levels + [n]
    preprocess = float(preprocess_cells(n, levels[0]))
    log_factor = math.sqrt(math.log(1.0 / epsilon))
    out: Dict[str, float] = {"preprocess": preprocess}
    L = 1.0
    for j in range(len(levels_ext) - 1):
        lower, upper = levels_ext[j], levels_ext[j + 1]
        search = math.sqrt(math.comb(upper, lower)) * log_factor
        # Paper Eq. (6): extending a bottom block of size `lower` over the
        # next `upper - lower` variables costs 2^{n - upper} 3^{upper - lower}.
        extend = (2.0 ** (n - upper)) * (3.0 ** (upper - lower))
        L = search * (L + extend)
        out[f"L_{j + 2}"] = L
    out["total"] = preprocess + L
    return out


def fit_growth_rate(ns: Sequence[int], counts: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``count ~ C * base^n``.

    Returns ``(base, C)``.  Used by the scaling benches to verify, e.g.,
    that FS's measured cell counts grow like ``3^n``.
    """
    if len(ns) != len(counts) or len(ns) < 2:
        raise ValueError("need at least two (n, count) pairs")
    if any(c <= 0 for c in counts):
        raise ValueError("counts must be positive")
    slope, intercept = np.polyfit(np.asarray(ns, dtype=float),
                                  np.log2(np.asarray(counts, dtype=float)), 1)
    return float(2.0 ** slope), float(2.0 ** intercept)


def entropy_bound_check(n: int, k: int) -> Tuple[int, float]:
    """Pair ``(C(n,k), 2^{n H(k/n)})`` — the preliminary bound the paper
    uses everywhere; the property tests assert the first never exceeds the
    second."""
    bound = 2.0 ** (n * binary_entropy(k / n)) if n else 1.0
    return math.comb(n, k), bound
