"""Closed-form OBDD profiles for totally symmetric functions.

A totally symmetric function depends only on the input weight, so its
subfunctions after assigning ``k`` variables are determined by how many of
them were 1 — at most ``k + 1`` distinct subfunctions per level, and the
exact width is computable from the value vector alone.  This gives an
``O(n^2)``-time independent oracle for a whole function class (parity,
thresholds, majority, exactly-k, ...), which the tests run against the
exponential-time generic machinery.

It also makes symmetric functions the canonical *ordering-insensitive*
family: every ordering yields the same profile, a fact the property tests
exploit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import DimensionError
from ..truth_table import TruthTable


def is_totally_symmetric(table: TruthTable) -> bool:
    """True iff the function's value depends only on the input weight."""
    by_weight = {}
    for assignment in range(1 << table.n):
        weight = bin(assignment).count("1")
        value = int(table.values[assignment])
        if by_weight.setdefault(weight, value) != value:
            return False
    return True


def value_vector(table: TruthTable) -> List[int]:
    """The symmetric function's value per weight ``0..n`` (requires a
    totally symmetric table)."""
    if not is_totally_symmetric(table):
        raise DimensionError("table is not totally symmetric")
    values = [0] * (table.n + 1)
    seen = [False] * (table.n + 1)
    for assignment in range(1 << table.n):
        weight = bin(assignment).count("1")
        if not seen[weight]:
            values[weight] = int(table.values[assignment])
            seen[weight] = True
    return values


def symmetric_from_value_vector(n: int, values: Sequence[int]) -> TruthTable:
    """Build the symmetric function with the given weight-value vector."""
    if len(values) != n + 1:
        raise DimensionError(f"need {n + 1} values, got {len(values)}")
    table = [int(values[bin(a).count('1')]) for a in range(1 << n)]
    return TruthTable(n, table)


def symmetric_profile(n: int, values: Sequence[int]) -> List[int]:
    """Exact OBDD width per level for the symmetric function (any order).

    Level ``k`` (0-based from the root, ``k`` variables already read) has
    one node per distinct *dependent* residual value vector
    ``(values[w], values[w+1], ..., values[w + n - k])`` over
    ``w = 0..k`` — residuals that no longer depend on the remaining
    variables (constant vectors) are terminal links, not nodes.
    """
    if len(values) != n + 1:
        raise DimensionError(f"need {n + 1} values, got {len(values)}")
    widths: List[int] = []
    for k in range(n):
        residuals = set()
        for ones_so_far in range(k + 1):
            residual: Tuple[int, ...] = tuple(
                int(values[ones_so_far + extra]) for extra in range(n - k + 1)
            )
            # A node exists iff the residual depends on the NEXT variable:
            # its 0-branch (drop last entry) differs from its 1-branch
            # (drop first entry).
            if residual[:-1] != residual[1:]:
                residuals.add(residual)
        widths.append(len(residuals))
    return widths


def symmetric_obdd_size(n: int, values: Sequence[int],
                        include_terminals: bool = True) -> int:
    """Total OBDD size of the symmetric function (any ordering)."""
    widths = symmetric_profile(n, values)
    internal = sum(widths)
    if not include_terminals:
        return internal
    return internal + len(set(int(v) for v in values))


def parity_size(n: int) -> int:
    """Closed form: parity has ``2n - 1`` internal nodes for ``n >= 1``."""
    if n < 1:
        raise DimensionError("parity needs at least one variable")
    return 2 * n - 1


def threshold_size(n: int, k: int) -> int:
    """Internal nodes of the threshold function ``T_k^n`` via the
    symmetric profile."""
    values = [1 if w >= k else 0 for w in range(n + 1)]
    return symmetric_obdd_size(n, values, include_terminals=False)
