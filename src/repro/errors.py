"""Exception types for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DimensionError(ReproError):
    """A truth table / function had an unexpected number of variables."""


class OrderingError(ReproError):
    """A variable ordering was malformed (wrong length, duplicates, ...)."""


class ParseError(ReproError):
    """A Boolean expression / DNF / CNF string could not be parsed."""


class EvaluationError(ReproError):
    """A function representation could not be evaluated on an assignment."""


class BudgetExceeded(ReproError):
    """An instrumented run exceeded its configured operation budget."""


class CheckpointError(ReproError):
    """A sweep checkpoint could not be loaded: the file was truncated or
    corrupted (checksum mismatch), or it was written by a sweep with a
    different configuration (fingerprint mismatch).  The message always
    names the offending file; a resume never proceeds silently past one."""


class CacheError(ReproError):
    """A result-cache entry was unusable: a damaged on-disk file (checksum
    or fingerprint mismatch) or a stored payload inconsistent with the
    function it claims to describe.  Like checkpoints, cache entries are
    never silently skipped — the message names the offending file or key."""
