"""Exception types for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DimensionError(ReproError):
    """A truth table / function had an unexpected number of variables."""


class OrderingError(ReproError):
    """A variable ordering was malformed (wrong length, duplicates, ...)."""


class ParseError(ReproError):
    """A Boolean expression / DNF / CNF string could not be parsed."""


class EvaluationError(ReproError):
    """A function representation could not be evaluated on an assignment."""


class BudgetExceeded(ReproError):
    """A governed run exhausted its :class:`repro.core.budget.Budget`.

    Raised only at well-defined boundaries (a DP layer boundary, a window
    boundary, a degradation-ladder rung), never mid-kernel, so the
    process state at the moment of the raise is always resumable.  The
    exception records how far the run got:

    ``reason``
        Which limit tripped: ``"deadline"``, ``"cancelled"``,
        ``"frontier_entries"`` or ``"frontier_bytes"``.
    ``elapsed_seconds``
        Wall-clock since the budget was armed.
    ``layers_completed``
        DP layers fully committed before the abort (sweeps only).
    ``best_bound``
        Best size bound established so far: for an aborted exact sweep a
        *lower* bound on the optimum (the cheapest frontier state); for
        an aborted window sweep the best *achieved* total so far.
    ``best_order``
        Best complete ordering found so far, when one exists (window
        sweeps and ladder rungs; ``None`` for an aborted exact DP).
    ``checkpoint_path``
        The last durably committed checkpoint file when the governed run
        had ``checkpoint_dir`` set — a later resume with a larger (or no)
        budget continues from it bit-identically.
    ``where``
        Human-readable boundary description (e.g. ``"layer boundary"``).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "deadline",
        elapsed_seconds=None,
        layers_completed=None,
        best_bound=None,
        best_order=None,
        checkpoint_path=None,
        where: str = "layer boundary",
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.elapsed_seconds = elapsed_seconds
        self.layers_completed = layers_completed
        self.best_bound = best_bound
        self.best_order = best_order
        self.checkpoint_path = checkpoint_path
        self.where = where


class ExecutorBrokenError(ReproError):
    """An execution backend died and could not be healed.

    The process backend rebuilds its pool (fresh workers, re-shipped
    shared-memory base table) and re-submits only the unmerged chunks of
    the broken layer, up to ``max_pool_rebuilds`` times with exponential
    backoff; this error means every rebuild was consumed and the layer
    still could not complete — e.g. a chunk that deterministically kills
    its worker (an OOM-sized allocation) would otherwise rebuild forever.
    The exception records where the run stood so a larger-budget retry
    resumes at the layer boundary instead of from scratch:

    ``layer``
        The DP layer (subset cardinality) that was executing when the
        backend gave up.  Layers below it are fully committed.
    ``pool_rebuilds``
        How many pool rebuilds were attempted before giving up.
    ``checkpoint_path``
        The last durably committed checkpoint file when the run had
        ``checkpoint_dir`` set — resuming from it re-runs only the
        broken layer onward, bit-identically.  ``None`` without
        checkpointing.
    """

    def __init__(
        self,
        message: str,
        *,
        layer=None,
        pool_rebuilds=None,
        checkpoint_path=None,
    ) -> None:
        super().__init__(message)
        self.layer = layer
        self.pool_rebuilds = pool_rebuilds
        self.checkpoint_path = checkpoint_path


class CheckpointError(ReproError):
    """A sweep checkpoint could not be loaded: the file was truncated or
    corrupted (checksum mismatch), or it was written by a sweep with a
    different configuration (fingerprint mismatch).  The message always
    names the offending file; a resume never proceeds silently past one."""


class ServeError(ReproError):
    """A request to the ``repro serve`` daemon failed.

    Raised client-side (:class:`repro.serve.ServeClient`) when the
    server answers with ``ok: false``; carries the HTTP-style ``status``
    the server assigned (400 malformed request, 429 queue full, 503
    draining/cancelled, 504 budget exhausted, 500 internal)."""

    def __init__(self, message: str, *, status: int = 500) -> None:
        super().__init__(message)
        self.status = status


class CacheError(ReproError):
    """A result-cache entry was unusable: a damaged on-disk file (checksum
    or fingerprint mismatch) or a stored payload inconsistent with the
    function it claims to describe.  Like checkpoints, cache entries are
    never silently skipped — the message names the offending file or key."""
