"""Exception types for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DimensionError(ReproError):
    """A truth table / function had an unexpected number of variables."""


class OrderingError(ReproError):
    """A variable ordering was malformed (wrong length, duplicates, ...)."""


class ParseError(ReproError):
    """A Boolean expression / DNF / CNF string could not be parsed."""


class EvaluationError(ReproError):
    """A function representation could not be evaluated on an assignment."""


class BudgetExceeded(ReproError):
    """An instrumented run exceeded its configured operation budget."""
