"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
optimize
    Find the optimal variable ordering for a function given as an
    expression string, PLA file, BLIF file, or DIMACS CNF file; print the
    ordering and sizes, optionally export the minimum diagram.
tables
    Re-derive the paper's Appendix C Tables 1 and 2 and the simple-case
    constants.
gap
    Print the Figure 1 ordering-gap series.
heuristics
    Compare the ordering heuristics against the exact optimum.
portfolio
    List the registered ordering strategies, or race them on a function.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .analysis.parameters import gamma0, gamma1, gamma2_appendix_b, solve_table1, solve_table2
from .bdd.reorder import greedy_append, random_restart_search
from .portfolio import sift_search, window_permutation_search
from .core.astar import astar_optimal_ordering
from .core.bruteforce import brute_force_optimal
from .core.divide_conquer import opt_obdd
from .core.engine import available_kernels
from .core.executor import available_backends
from .core.frontier import available_frontier_stores
from .core.fs import run_fs
from .observability import Profiler
from .core.reconstruct import reconstruct_minimum_diagram
from .core.spec import ReductionRule
from .errors import ReproError
from .expr.convert import to_truth_table
from .expr.normal_forms import CNF
from .expr.parser import parse
from .functions.families import (
    achilles_bad_order,
    achilles_good_order,
    achilles_heel,
)
from .io.blif import read_blif
from .io.pla import read_pla
from .io.serialize import save_diagram
from .truth_table import TruthTable, obdd_size


def _load_table(args: argparse.Namespace) -> TruthTable:
    sources = [
        name for name in ("expr", "pla", "blif", "dimacs") if getattr(args, name)
    ]
    if len(sources) != 1:
        raise ReproError("give exactly one of --expr/--pla/--blif/--dimacs")
    if args.expr:
        return to_truth_table(parse(args.expr), args.num_vars)
    if args.pla:
        return read_pla(args.pla).truth_table()
    if args.blif:
        return read_blif(args.blif).truth_table(args.output)
    with open(args.dimacs) as handle:
        return to_truth_table(CNF.from_dimacs(handle.read()), args.num_vars)


def _make_profiler(args: argparse.Namespace) -> Optional[Profiler]:
    if getattr(args, "profile", None):
        return Profiler()
    return None


def _make_cache(args: argparse.Namespace):
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from .core.cache import ResultCache

        return ResultCache(directory=cache_dir, retry=_make_io_retry(args))
    return None


def _make_budget(args: argparse.Namespace):
    """A :class:`~repro.core.budget.Budget` from ``--timeout`` /
    ``--max-frontier-mb``, or ``None`` when neither was given."""
    timeout = getattr(args, "timeout", None)
    frontier_mb = getattr(args, "max_frontier_mb", None)
    if timeout is None and frontier_mb is None:
        return None
    from .core.budget import Budget

    return Budget(
        deadline=timeout,
        max_frontier_bytes=(
            int(frontier_mb * 1024 * 1024) if frontier_mb is not None
            else None
        ),
    )


def _make_io_retry(args: argparse.Namespace):
    max_retries = getattr(args, "max_retries", None)
    if max_retries is None:
        return None
    from .core.checkpoint import RetryPolicy

    return RetryPolicy(max_retries=max_retries)


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Execution options shared by every DP-running subcommand."""
    kwargs = dict(engine=args.engine, jobs=args.jobs,
                  backend=getattr(args, "backend", "thread"),
                  frontier_store=getattr(args, "frontier_store", "dict"))
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = bool(getattr(args, "resume", False))
    if resume and not checkpoint_dir:
        raise ReproError("--resume requires --checkpoint-dir")
    if checkpoint_dir:
        kwargs["checkpoint_dir"] = checkpoint_dir
        kwargs["resume"] = resume
    cache = _make_cache(args)
    if cache is not None:
        kwargs["cache"] = cache
    budget = _make_budget(args)
    if budget is not None:
        kwargs["budget"] = budget
    io_retry = _make_io_retry(args)
    if io_retry is not None:
        kwargs["io_retry"] = io_retry
    max_pool_rebuilds = getattr(args, "max_pool_rebuilds", None)
    if max_pool_rebuilds is not None:
        kwargs["max_pool_rebuilds"] = max_pool_rebuilds
    return kwargs


def _emit_profile(args: argparse.Namespace, profiler: Optional[Profiler],
                  cache=None) -> None:
    if profiler is not None:
        if cache is not None:
            profiler.note_cache_stats(cache.stats.snapshot())
        profiler.write(args.profile)
        print(f"wrote profile    : {args.profile} "
              f"(peak frontier {profiler.peak_frontier_bytes} bytes, "
              f"{profiler.total_layer_seconds:.3f}s in {len(profiler.layers)} "
              f"layers)")
        if profiler.cache:
            print(f"cache            : {profiler.cache.get('hits', 0)} hits / "
                  f"{profiler.cache.get('misses', 0)} misses "
                  f"({profiler.cache.get('stores', 0)} stored)")


def _run_optimize(args: argparse.Namespace) -> int:
    if getattr(args, "strategy", None) not in (None, "exact") and (
            args.batch or args.all_outputs):
        raise ReproError(
            "--strategy applies to single-function solves; drop it or "
            "use the serve daemon's per-request strategy field for batches"
        )
    if getattr(args, "connect", None):
        if not args.batch:
            raise ReproError(
                "--connect submits a --batch manifest to a running "
                "'repro serve' daemon; give --batch too"
            )
        return _run_optimize_batch_connect(args)
    if args.batch:
        return _run_optimize_batch(args)
    if args.all_outputs:
        return _run_optimize_shared(args)
    table = _load_table(args)
    rule = ReductionRule(args.rule)
    if table.n > 16:
        raise ReproError(
            f"{table.n} variables is beyond the exact DP's practical range"
        )
    profiler = _make_profiler(args)
    engine_kwargs = _engine_kwargs(args)
    fallback_spec = getattr(args, "fallback", None)
    if fallback_spec is not None and args.algorithm != "fs":
        raise ReproError("--fallback requires --algorithm fs")
    strategy = getattr(args, "strategy", None)
    if strategy is not None and strategy != "exact":
        if args.algorithm != "fs":
            raise ReproError("--strategy requires --algorithm fs")
        if fallback_spec is not None and strategy != "fallback":
            raise ReproError(
                "--fallback only combines with --strategy fallback"
            )
        result = _solve_with_strategy(
            table, strategy, rule, args, profiler, engine_kwargs,
            fallback_spec,
        )
    elif args.algorithm == "fs" and fallback_spec is not None:
        from .core.budget import parse_ladder, run_ladder

        result = run_ladder(
            table,
            budget=engine_kwargs.get("budget"),
            ladder=parse_ladder(fallback_spec),
            rule=rule,
            engine=args.engine,
            jobs=args.jobs,
            backend=getattr(args, "backend", "thread"),
            cache=engine_kwargs.get("cache"),
            profiler=profiler,
            checkpoint_dir=engine_kwargs.get("checkpoint_dir"),
            resume=bool(engine_kwargs.get("resume", False)),
            frontier_store=engine_kwargs.get("frontier_store", "dict"),
        )
    elif args.algorithm == "fs":
        result = run_fs(table, rule=rule, profiler=profiler,
                        **engine_kwargs)
    elif args.algorithm == "astar":
        result = astar_optimal_ordering(table, rule=rule)
    elif args.algorithm == "optobdd":
        result = opt_obdd(table, rule=rule)
    elif args.algorithm == "bruteforce":
        result = brute_force_optimal(table, rule=rule, collect_all=False)
    else:  # pragma: no cover - argparse choices guard this
        raise ReproError(f"unknown algorithm {args.algorithm}")

    print(f"variables        : {table.n}")
    print(f"rule             : {rule.value}")
    print(f"algorithm        : {args.algorithm}")
    exact = bool(getattr(result, "exact", True))
    label = "optimal ordering" if exact else "best ordering   "
    print(f"{label} : {' '.join(f'x{v}' for v in result.order)}")
    print(f"internal nodes   : {result.mincost}")
    print(f"total size       : {result.size}")
    rung = getattr(result, "rung", None)
    used_strategy = getattr(result, "strategy", None)
    if used_strategy not in (None, "exact"):
        print(f"strategy         : {used_strategy}")
    if rung is not None:
        flavor = ("fallback" if used_strategy in (None, "fallback")
                  else "heuristic")
        print(f"method           : {rung} "
              f"({'exact' if exact else f'{flavor}, not certified optimal'})")
    if used_strategy == "portfolio":
        for member in result.result.results:
            print(f"  {member.name:<15} size {member.size:4d}  "
                  f"[{member.status}]")
    if getattr(result, "from_cache", False):
        print("served from      : result cache")
    natural = list(range(table.n))
    if rule is ReductionRule.BDD:
        print(f"natural ordering : {obdd_size(table, natural)} total nodes")
    _emit_profile(args, profiler, engine_kwargs.get("cache"))
    if args.dot or args.json:
        if not exact:
            producer = (
                f"the {rung!r} rung" if rung is not None
                else f"strategy {used_strategy!r}"
            )
            raise ReproError(
                "--dot/--json reconstruct the minimum diagram, which needs "
                f"an exact result; {producer} produced an uncertified "
                "ordering (raise --timeout, or use strategy/fallback "
                "settings that let the exact DP finish)"
            )
        while rung is not None and hasattr(result, "result") \
                and result.result is not None:
            result = result.result  # unwrap to the fs rung's native FSResult
        fs_result = (
            result if args.algorithm == "fs"
            else run_fs(table, rule=rule, **engine_kwargs)
        )
        diagram = reconstruct_minimum_diagram(table, fs_result)
        if args.dot:
            with open(args.dot, "w") as handle:
                handle.write(diagram.to_dot(name="Minimum"))
            print(f"wrote DOT        : {args.dot}")
        if args.json:
            save_diagram(diagram, args.json)
            print(f"wrote JSON       : {args.json}")
    return 0


def _solve_with_strategy(table, strategy, rule, args, profiler,
                         engine_kwargs, fallback_spec):
    """Dispatch one table through ``repro.solve(strategy=...)`` with the
    engine options the inexact strategy paths accept."""
    from .api import solve

    allowed = ("engine", "jobs", "backend", "frontier_store", "cache",
               "budget", "checkpoint_dir", "resume", "max_pool_rebuilds")
    kwargs = {k: v for k, v in engine_kwargs.items() if k in allowed}
    if profiler is not None:
        kwargs["profiler"] = profiler
    return solve(
        table,
        strategy=strategy,
        rule=rule,
        seed=getattr(args, "seed", 0),
        fallback_rungs=fallback_spec if strategy == "fallback" else None,
        **kwargs,
    )


def _run_optimize_shared(args: argparse.Namespace) -> int:
    from .core.fs import run_fs as _run_fs
    from .core.shared import run_fs_shared

    rule = ReductionRule(args.rule)
    if args.blif:
        network = read_blif(args.blif)
        tables = [network.truth_table(w) for w in network.outputs]
        labels = list(network.outputs)
    elif args.pla:
        pla = read_pla(args.pla)
        tables = pla.truth_tables()
        labels = pla.output_labels or [f"y{j}" for j in range(len(tables))]
    else:
        raise ReproError("--all-outputs requires --blif or --pla input")
    if tables[0].n > 16:
        raise ReproError(
            f"{tables[0].n} variables is beyond the exact DP's practical range"
        )
    profiler = _make_profiler(args)
    engine_kwargs = _engine_kwargs(args)
    result = run_fs_shared(tables, rule=rule, profiler=profiler,
                           **engine_kwargs)
    print(f"outputs          : {len(tables)} ({' '.join(labels)})")
    print(f"variables        : {tables[0].n}")
    print(f"rule             : {rule.value}")
    print(f"shared ordering  : {' '.join(f'x{v}' for v in result.order)}")
    print(f"shared nodes     : {result.mincost}")
    if getattr(result, "from_cache", False):
        print("served from      : result cache")
    separate = sum(
        _run_fs(t, rule=rule, **engine_kwargs).mincost
        for t in tables
    )
    print(f"separate optima  : {separate} (sum over outputs)")
    _emit_profile(args, profiler, engine_kwargs.get("cache"))
    return 0


def _table_from_entry(entry: dict, base_dir: str, index: int) -> TruthTable:
    """One batch-manifest entry -> a truth table (same loaders as the
    single-function flags; relative paths resolve against the manifest)."""
    import os

    def resolve(path: str) -> str:
        return path if os.path.isabs(path) else os.path.join(base_dir, path)

    sources = [k for k in ("expr", "pla", "blif", "dimacs") if entry.get(k)]
    if len(sources) != 1:
        raise ReproError(
            f"batch entry {index} needs exactly one of expr/pla/blif/dimacs"
        )
    if entry.get("expr"):
        return to_truth_table(parse(entry["expr"]), entry.get("num_vars"))
    if entry.get("pla"):
        return read_pla(resolve(entry["pla"])).truth_table()
    if entry.get("blif"):
        return read_blif(resolve(entry["blif"])).truth_table(
            entry.get("output")
        )
    with open(resolve(entry["dimacs"])) as handle:
        return to_truth_table(CNF.from_dimacs(handle.read()),
                              entry.get("num_vars"))


def _load_batch_manifest(args: argparse.Namespace):
    """Load a ``--batch`` manifest: returns ``(labels, tables, loaded_at,
    load_errors)`` with one label per manifest entry and malformed
    entries downgraded to [failed] rows instead of aborting the batch."""
    import json as json_module
    import os

    with open(args.batch) as handle:
        manifest = json_module.load(handle)
    entries = manifest.get("tables") if isinstance(manifest, dict) else manifest
    if not isinstance(entries, list) or not entries:
        raise ReproError(
            f"batch manifest {args.batch} must contain a non-empty list "
            "of tables (either a top-level list or under a 'tables' key)"
        )
    base_dir = os.path.dirname(os.path.abspath(args.batch))
    tables = []         # successfully loaded tables, in manifest order
    loaded_at = []      # manifest index of each loaded table
    labels = []         # one label per manifest entry
    load_errors = {}    # manifest index -> (error type, message)
    for index, entry in enumerate(entries):
        if isinstance(entry, str):
            entry = {"expr": entry}
        if not isinstance(entry, dict):
            labels.append(f"entry{index}")
            load_errors[index] = ("ReproError", (
                f"batch entry {index} must be an object or an expression "
                "string"
            ))
            continue
        labels.append(str(
            entry.get("label") or entry.get("expr") or entry.get("pla")
            or entry.get("blif") or entry.get("dimacs") or f"table{index}"
        ))
        try:
            table = _table_from_entry(entry, base_dir, index)
            if table.n > 16:
                raise ReproError(
                    f"batch entry {index} has {table.n} variables, beyond "
                    "the exact DP's practical range"
                )
        except Exception as exc:
            # A malformed entry must not take the rest of the batch down;
            # it becomes a [failed] row like any solve-time error.
            load_errors[index] = (type(exc).__name__, str(exc))
            continue
        tables.append(table)
        loaded_at.append(index)
    return labels, tables, loaded_at, load_errors


def _run_optimize_batch(args: argparse.Namespace) -> int:
    from .core.cache import ResultCache, optimize_many

    rule = ReductionRule(args.rule)
    labels, tables, loaded_at, load_errors = _load_batch_manifest(args)

    profiler = _make_profiler(args)
    cache = _make_cache(args)
    if cache is None:
        cache = ResultCache(retry=_make_io_retry(args))
    # --timeout is *per item* in batch mode; only the frontier cap spans
    # the whole batch.
    batch_budget = None
    frontier_mb = getattr(args, "max_frontier_mb", None)
    if frontier_mb is not None:
        from .core.budget import Budget

        batch_budget = Budget(
            max_frontier_bytes=int(frontier_mb * 1024 * 1024)
        )
    outcome = optimize_many(
        tables, rule=rule, cache=cache, engine=args.engine, jobs=args.jobs,
        backend=getattr(args, "backend", "thread"),
        profiler=profiler,
        per_item_timeout=getattr(args, "timeout", None),
        fallback=getattr(args, "fallback", None),
        budget=batch_budget,
        io_retry=_make_io_retry(args),
        install_signal_handlers=True,
        frontier_store=getattr(args, "frontier_store", "dict"),
    )
    name_width = max(len(label) for label in labels)
    counts = {"ok": 0, "fallback": 0, "error": 0}
    item_at = dict(zip(loaded_at, outcome.items))
    for index, label in enumerate(labels):
        if index in load_errors:
            error_type, message = load_errors[index]
            counts["error"] += 1
            print(f"{label:<{name_width}}  [failed] {error_type}: {message}")
            continue
        item = item_at[index]
        counts[item.status] += 1
        if item.status == "error":
            assert item.error is not None
            print(f"{label:<{name_width}}  [failed] "
                  f"{item.error.error_type}: {item.error.message}")
            continue
        result = item.result
        suffix = ""
        if item.status == "fallback":
            suffix = f"  [fallback:{result.rung}]"
        elif result.from_cache:
            suffix = "  [cached]"
        order = " ".join(f"x{v}" for v in result.order)
        print(f"{label:<{name_width}}  n={result.n}  "
              f"nodes={result.mincost}  {order}{suffix}")
    print(f"batch            : {len(labels)} tables, "
          f"{outcome.unique} unique functions")
    print(f"statuses         : {counts['ok']} ok / "
          f"{counts['fallback']} fallback / {counts['error']} failed")
    print(f"cache            : {outcome.stats['hits']} hits / "
          f"{outcome.stats['misses']} misses "
          f"({outcome.stats['stores']} stored)")
    _emit_profile(args, profiler)
    return 1 if counts["error"] else 0


def _parse_connect(spec: str):
    """``--connect`` address: ``host:port`` or a unix-socket path."""
    if "/" in spec or ":" not in spec:
        return spec  # unix-socket path
    host, _, port = spec.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ReproError(
            f"--connect expects HOST:PORT or a unix-socket path, got "
            f"{spec!r}"
        ) from None


def _run_optimize_batch_connect(args: argparse.Namespace) -> int:
    """Submit the ``--batch`` manifest to a running daemon as ONE
    ``solve_many`` request: the server dedups by canonical fingerprint
    before queueing and answers with per-item bodies bit-identical to
    individual solves."""
    from .serve import ServeClient, ServeError

    rule = ReductionRule(args.rule)
    labels, tables, loaded_at, load_errors = _load_batch_manifest(args)
    # Files were loaded locally; everything travels as explicit truth
    # tables so the daemon needs no filesystem access.
    items = [
        {"values": [int(v) for v in table.values], "n": table.n}
        for table in tables
    ]
    batch_kwargs = {"method": "fs", "rule": rule.value}
    if getattr(args, "timeout", None) is not None:
        # Over the wire the whole manifest shares ONE budget (the items
        # race each other for the same wall clock).
        batch_kwargs["timeout"] = args.timeout
    if getattr(args, "fallback", None) is not None:
        batch_kwargs["fallback"] = args.fallback
    try:
        with ServeClient(_parse_connect(args.connect)) as client:
            response = client.solve_many(items, **batch_kwargs)
    except ConnectionError as exc:
        raise ReproError(
            f"could not reach a daemon at {args.connect!r}: {exc} "
            "(start one with 'repro serve')"
        ) from None
    except ServeError as exc:
        raise ReproError(f"daemon rejected the batch: {exc}") from None
    bodies = response["results"]
    statuses = response["statuses"]
    summary = response["summary"]
    body_at = dict(zip(loaded_at, zip(bodies, statuses)))
    name_width = max(len(label) for label in labels)
    errors = len(load_errors)
    for index, label in enumerate(labels):
        if index in load_errors:
            error_type, message = load_errors[index]
            print(f"{label:<{name_width}}  [failed] {error_type}: {message}")
            continue
        body, status = body_at[index]
        if status == "error":
            error = body.get("error", {})
            errors += 1
            print(f"{label:<{name_width}}  [failed] "
                  f"{error.get('type', 'Error')}: "
                  f"{error.get('message', 'request failed')}")
            continue
        result = body["result"]
        suffix = "" if status == "ok" else f"  [{status}]"
        if status == "fallback":
            suffix = f"  [fallback:{result.get('rung')}]"
        order = " ".join(f"x{v}" for v in result["order"])
        print(f"{label:<{name_width}}  n={result['n']}  "
              f"nodes={result['mincost']}  {order}{suffix}")
    print(f"batch            : {len(labels)} tables, "
          f"{summary['unique']} unique functions (via {args.connect})")
    print(f"statuses         : {summary['ok']} ok / {summary['cached']} "
          f"cached / {summary['coalesced']} coalesced / "
          f"{summary['fallback']} fallback / "
          f"{summary['error'] + len(load_errors)} failed")
    return 1 if errors else 0


def _run_tables(args: argparse.Namespace) -> int:
    g0, a0 = gamma0()
    g1, a1 = gamma1()
    g2, b1, b2 = gamma2_appendix_b()
    print("simple cases:")
    print(f"  gamma_0 = {g0:.5f} (alpha {a0:.6f})   paper 2.98581")
    print(f"  gamma_1 = {g1:.5f} (alpha {a1:.6f})   paper 2.97625")
    print(f"  gamma_2 = {g2:.5f} (alphas {b1:.6f} {b2:.6f})   paper 2.8569")
    print("\nTable 1 (gamma_k for OptOBDD(k, alpha)):")
    for row in solve_table1(6):
        alphas = " ".join(f"{a:.6f}" for a in row.alphas)
        print(f"  k={row.k}: gamma={row.base:.5f}  alphas: {alphas}")
    print("\nTable 2 (composition iteration):")
    for i, row in enumerate(solve_table2(10)):
        print(f"  iter {i + 1:2d}: {row.gamma_subroutine:.5f} -> {row.base:.5f}")
    print("\nTheorem 13 constant: <= 2.77286")
    return 0


def _governed_exact(table, args, profiler, rule=None):
    """Run the exact DP, or the --fallback ladder when requested.

    Returns an object with ``order``/``size`` plus an ``exact`` verdict
    (always True without --fallback) and the producing ``rung``.
    """
    engine_kwargs = _engine_kwargs(args)
    fallback_spec = getattr(args, "fallback", None)
    kwargs = {} if rule is None else {"rule": rule}
    if fallback_spec is None:
        result = run_fs(table, profiler=profiler, **kwargs, **engine_kwargs)
        return result, True, None
    from .core.budget import parse_ladder, run_ladder

    result = run_ladder(
        table,
        budget=engine_kwargs.get("budget"),
        ladder=parse_ladder(fallback_spec),
        engine=args.engine,
        jobs=args.jobs,
        backend=getattr(args, "backend", "thread"),
        cache=engine_kwargs.get("cache"),
        profiler=profiler,
        checkpoint_dir=engine_kwargs.get("checkpoint_dir"),
        resume=bool(engine_kwargs.get("resume", False)),
        frontier_store=engine_kwargs.get("frontier_store", "dict"),
        **kwargs,
    )
    return result, result.exact, result.rung


def _run_gap(args: argparse.Namespace) -> int:
    profiler = _make_profiler(args)
    print("pairs  vars  good(2n+2)  bad(2^(n+1))  optimal")
    for pairs in range(1, args.max_pairs + 1):
        table = achilles_heel(pairs)
        good = obdd_size(table, achilles_good_order(pairs))
        bad = obdd_size(table, achilles_bad_order(pairs))
        result, exact, _ = _governed_exact(table, args, profiler)
        # '~' marks an upper bound from a fallback rung, not the optimum.
        opt_text = f"{result.size}" if exact else f"{result.size}~"
        print(f"{pairs:5d}  {2 * pairs:4d}  {good:10d}  {bad:12d}  "
              f"{opt_text:>7}")
    _emit_profile(args, profiler)
    return 0


def _run_heuristics(args: argparse.Namespace) -> int:
    table = _load_table(args)
    profiler = _make_profiler(args)
    exact, is_exact, rung = _governed_exact(table, args, profiler)
    baseline_label = (
        "exact (FS)" if is_exact else f"{rung} (fallback, not optimal)"
    )
    rows = [
        (baseline_label, exact.size, " ".join(f"x{v}" for v in exact.order)),
    ]
    for name, result in (
        ("sift", sift_search(table)),
        ("window3",
         window_permutation_search(table, window=min(3, max(table.n, 2)))),
        ("random30", random_restart_search(table, tries=30, seed=0)),
        ("greedy", greedy_append(table)),
    ):
        rows.append((name, result.size, " ".join(f"x{v}" for v in result.order)))
    width = max(len(r[0]) for r in rows)
    for name, size, order in rows:
        ratio = size / exact.size
        print(f"{name:<{width}}  size {size:4d}  ({ratio:.2f}x)  {order}")
    _emit_profile(args, profiler)
    return 0


def _run_portfolio_cmd(args: argparse.Namespace) -> int:
    from .portfolio import available_strategies, get_strategy, run_portfolio

    has_input = any(
        getattr(args, name, None) for name in ("expr", "pla", "blif", "dimacs")
    )
    if not has_input:
        print("registered strategies:")
        width = max(len(name) for name in available_strategies())
        for name in available_strategies():
            spec = get_strategy(name)
            print(f"  {name:<{width}}  [{spec.kind}]  {spec.description}")
        return 0

    table = _load_table(args)
    rule = ReductionRule(args.rule)
    profiler = _make_profiler(args)
    engine_kwargs = _engine_kwargs(args)
    from .core.engine import EngineConfig

    config = EngineConfig(
        kernel=args.engine,
        jobs=args.jobs,
        backend=getattr(args, "backend", "thread"),
        frontier_store=getattr(args, "frontier_store", "dict"),
        cache=engine_kwargs.get("cache"),
        profiler=profiler,
        budget=engine_kwargs.get("budget"),
        strategy="portfolio",
    )
    names = None
    if args.strategies:
        names = tuple(
            part.strip() for part in args.strategies.split(",") if part.strip()
        )
    result = run_portfolio(
        table, strategies=names, rule=rule,
        seed=getattr(args, "seed", 0), config=config,
    )
    print(f"variables        : {table.n}")
    print(f"rule             : {rule.value}")
    print(f"winner           : {result.winner} (size {result.size})")
    print(f"best ordering    : {' '.join(f'x{v}' for v in result.order)}")
    for member in result.results:
        order = " ".join(f"x{v}" for v in member.order)
        print(f"  {member.name:<15} size {member.size:4d}  "
              f"[{member.status}]  {order}")
    _emit_profile(args, profiler, engine_kwargs.get("cache"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exact optimal variable ordering for decision diagrams",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--expr", help="Boolean expression, e.g. 'x0 & x1 | x2'")
        p.add_argument("--pla", help="path to a PLA file")
        p.add_argument("--blif", help="path to a BLIF file")
        p.add_argument("--dimacs", help="path to a DIMACS CNF file")
        p.add_argument("--output", help="BLIF output wire to use")
        p.add_argument("--num-vars", type=int, default=None,
                       help="widen the variable domain (expr/dimacs)")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def positive_float(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
        return value

    def nonnegative_int(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
        return value

    def add_engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--engine", choices=available_kernels(),
                       default="numpy",
                       help="compaction kernel for the FS-family dynamic "
                            "programs: 'numpy' is the vectorized default, "
                            "'python' the per-cell executable specification "
                            "(exponentially slower; for validation). Plugins "
                            "registered via repro.core.engine.register_kernel "
                            "appear here automatically")
        p.add_argument("--jobs", type=positive_int, default=1,
                       help="workers per DP layer (subsets of equal "
                            "size are independent); results and operation "
                            "counters are identical for every value")
        p.add_argument("--backend", choices=available_backends(),
                       default="thread",
                       help="where --jobs workers run: 'thread' (default; "
                            "cheap to start but GIL-bound), 'process' "
                            "(real multicore throughput; the base table "
                            "ships once per run via shared memory), or "
                            "'serial' (inline reference executor). "
                            "Results and counters are bit-identical "
                            "across backends")
        p.add_argument("--frontier-store", choices=available_frontier_stores(),
                       default="dict",
                       help="in-memory representation of the retained DP "
                            "frontier: 'dict' (default; one FSState per "
                            "subset) or 'packed' (contiguous columnar "
                            "arrays; several-fold smaller peak memory). "
                            "Results and operation counters are "
                            "bit-identical across stores; checkpoints "
                            "written under either store resume under the "
                            "other")
        p.add_argument("--checkpoint-dir",
                       help="snapshot every finished DP layer into this "
                            "directory so an interrupted run can be "
                            "restarted with --resume (results and "
                            "operation counters are bit-identical to an "
                            "uninterrupted run)")
        p.add_argument("--resume", action="store_true",
                       help="restart from the newest valid checkpoint in "
                            "--checkpoint-dir (cold start if none matches "
                            "this run's configuration; corrupt or "
                            "mismatched checkpoints are an error, never "
                            "silently skipped)")
        p.add_argument("--cache-dir",
                       help="persist optimizer results into this directory, "
                            "keyed by a canonical function fingerprint "
                            "(support-reduced, permutation- and complement-"
                            "canonicalized), so repeated runs — including "
                            "renamed/complemented variants of the same "
                            "function — return instantly with zero kernel "
                            "work")
        p.add_argument("--timeout", type=positive_float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget for the DP (per table in "
                            "--batch mode); an over-budget run stops at the "
                            "next layer boundary with its last checkpoint "
                            "already committed (resumable via "
                            "--checkpoint-dir/--resume), or degrades to a "
                            "cheaper method when --fallback is given")
        p.add_argument("--max-frontier-mb", type=positive_float, default=None,
                       metavar="MB",
                       help="cap the retained DP frontier (the structure "
                            "that actually exhausts memory) at this many "
                            "megabytes; enforced after each layer commits")
        p.add_argument("--fallback", nargs="?", const="fs,window,sift",
                       default=None, metavar="LADDER",
                       help="when the budget runs out, degrade through this "
                            "comma-separated ladder instead of failing "
                            "(default ladder: fs,window,sift — exact DP, "
                            "then the exact-window sweep, then sifting; "
                            "any registered strategy name is also a valid "
                            "rung, see 'repro portfolio'); results from a "
                            "lower rung are explicitly marked as not "
                            "certified optimal")
        p.add_argument("--strategy", default=None, metavar="NAME",
                       help="solve strategy axis: 'exact' (default), "
                            "'fallback' (the --fallback ladder), "
                            "'portfolio' (race every registered heuristic "
                            "and keep the deterministic best-(size, name) "
                            "winner), or one registered strategy name "
                            "(list them with 'repro portfolio'); anything "
                            "but 'exact'/'fallback' is never certified "
                            "optimal")
        p.add_argument("--seed", type=nonnegative_int, default=0,
                       help="deterministic RNG seed for stochastic "
                            "strategies (annealing); the same seed always "
                            "reproduces the same search (default 0)")
        p.add_argument("--max-retries", type=nonnegative_int, default=None,
                       metavar="N",
                       help="retry transient checkpoint/cache disk-write "
                            "failures up to N times with exponential "
                            "backoff (default: fail on the first error)")
        p.add_argument("--max-pool-rebuilds", type=nonnegative_int,
                       default=None, metavar="N",
                       help="with --backend process: rebuild a crashed "
                            "worker pool (SIGKILLed/OOM-killed worker) up "
                            "to N times per DP layer, re-running only the "
                            "chunks whose results were lost — results and "
                            "counters stay bit-identical to an uncrashed "
                            "run (default: 2; 0 disables self-healing)")

    def add_profile_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--profile",
                       help="write a JSON execution profile (per-layer "
                            "wall-clock, frontier bytes, counter snapshots, "
                            "checkpoint write/load timings) of the FS "
                            "dynamic program to this path")

    opt = sub.add_parser("optimize", help="find an optimal variable ordering")
    add_input_options(opt)
    add_engine_options(opt)
    opt.add_argument("--rule", choices=[r.value for r in ReductionRule],
                     default="bdd")
    opt.add_argument("--algorithm",
                     choices=["fs", "astar", "optobdd", "bruteforce"],
                     default="fs")
    opt.add_argument("--dot", help="write the minimum diagram as DOT")
    opt.add_argument("--json", help="write the minimum diagram as JSON")
    add_profile_option(opt)
    opt.add_argument("--all-outputs", action="store_true",
                     help="optimize one shared ordering for every output "
                          "of a multi-output BLIF/PLA")
    opt.add_argument("--batch",
                     help="optimize every table in a JSON manifest (a list "
                          "of {expr|pla|blif|dimacs, label?, num_vars?, "
                          "output?} entries, or bare expression strings); "
                          "tables are deduplicated by canonical fingerprint "
                          "before the distinct ones fan out over --jobs, and "
                          "duplicates resolve through the result cache")
    opt.add_argument("--connect", metavar="HOST:PORT|SOCKET",
                     help="submit the --batch manifest to a running "
                          "'repro serve' daemon as one solve_many request "
                          "instead of solving locally: the server dedups "
                          "by canonical fingerprint before queueing, the "
                          "whole manifest shares one --timeout budget, and "
                          "answers are bit-identical to local solves")
    opt.set_defaults(handler=_run_optimize)

    tables = sub.add_parser("tables", help="re-derive the Appendix C tables")
    tables.set_defaults(handler=_run_tables)

    gap = sub.add_parser("gap", help="print the Figure 1 ordering-gap series")
    gap.add_argument("--max-pairs", type=int, default=7)
    add_engine_options(gap)
    add_profile_option(gap)
    gap.set_defaults(handler=_run_gap)

    heur = sub.add_parser("heuristics",
                          help="compare heuristics against the exact optimum")
    add_input_options(heur)
    add_engine_options(heur)
    add_profile_option(heur)
    heur.set_defaults(handler=_run_heuristics)

    port = sub.add_parser(
        "portfolio",
        help="list the registered ordering strategies, or race them on "
             "one function (give an input flag) and print the scoreboard",
    )
    add_input_options(port)
    add_engine_options(port)
    port.add_argument("--rule", choices=[r.value for r in ReductionRule],
                      default="bdd")
    port.add_argument("--strategies", default=None, metavar="NAMES",
                      help="comma-separated subset of registered strategies "
                           "to race (default: all of them)")
    port.set_defaults(handler=_run_portfolio_cmd)

    rep = sub.add_parser("reproduce",
                         help="regenerate every paper number with verdicts")
    rep.add_argument("--quick", action="store_true",
                     help="skip the slower FS sweeps")
    rep.set_defaults(handler=_run_reproduce)

    sym = sub.add_parser("symmetry",
                         help="variable symmetry classes and sensitivity")
    add_input_options(sym)
    sym.add_argument("--sample", type=int, default=None,
                     help="sample orderings instead of exhausting them")
    sym.set_defaults(handler=_run_symmetry)

    srv = sub.add_parser(
        "serve",
        help="run the ordering daemon: one warm pool + one shared cache "
             "serving newline-delimited JSON requests",
    )
    srv.add_argument("--host", default="127.0.0.1",
                     help="TCP interface to bind (default 127.0.0.1)")
    srv.add_argument("--port", type=nonnegative_int, default=0,
                     help="TCP port; 0 (default) binds an ephemeral port "
                          "and prints it on startup")
    srv.add_argument("--unix-socket", default=None, metavar="PATH",
                     help="serve on this unix-domain socket instead of TCP")
    srv.add_argument("--engine", choices=available_kernels(),
                     default="numpy",
                     help="compaction kernel every request runs under")
    srv.add_argument("--jobs", type=positive_int, default=None,
                     help="worker width of the one warm pool (default: "
                          "CPU count)")
    srv.add_argument("--backend", choices=available_backends(),
                     default="process",
                     help="execution backend warmed once for the server's "
                          "lifetime (default 'process': the pool spin-up "
                          "the daemon exists to amortize)")
    srv.add_argument("--frontier-store", choices=available_frontier_stores(),
                     default="dict",
                     help="frontier representation for every request")
    srv.add_argument("--cache-dir",
                     help="persist the shared result cache into this "
                          "directory (cross-process-safe; restarts and "
                          "sibling daemons keep the accumulated answers)")
    srv.add_argument("--cache-size", type=positive_int, default=4096,
                     help="in-memory LRU entries (default 4096)")
    srv.add_argument("--max-disk-entries", type=positive_int, default=None,
                     metavar="N",
                     help="cap the on-disk cache at N entries, evicting "
                          "oldest (default: unbounded)")
    srv.add_argument("--cache-shards", type=positive_int, default=16,
                     metavar="N",
                     help="fingerprint-prefix shard count for the disk "
                          "cache (default 16): entries live under "
                          "<cache-dir>/<shard>/ with one lockfile per "
                          "shard, so concurrent daemons sharing a cache "
                          "directory stop contending on a single lock; "
                          "flat PR-era directories are migrated lazily on "
                          "first write and stay readable throughout")
    srv.add_argument("--queue-limit", type=positive_int, default=64,
                     help="bounded request-queue depth; requests beyond it "
                          "are rejected with status 429 (default 64)")
    srv.add_argument("--max-inflight", type=positive_int, default=2,
                     help="concurrently executing requests (default 2; "
                          "kernel sweeps additionally serialize on the one "
                          "warm backend)")
    srv.add_argument("--timeout", type=positive_float, default=None,
                     metavar="SECONDS",
                     help="per-request wall-clock ceiling; a request's own "
                          "timeout may only tighten it")
    srv.add_argument("--max-frontier-mb", type=positive_float, default=None,
                     metavar="MB",
                     help="frontier byte cap applied to every request")
    srv.add_argument("--max-pool-rebuilds", type=nonnegative_int,
                     default=None, metavar="N",
                     help="self-healing budget of the warm process "
                          "backend: rebuild a crashed worker pool up to N "
                          "times per DP layer before the request fails "
                          "(default 2; 0 disables in-sweep healing — the "
                          "daemon then swaps in a fresh backend and fails "
                          "only the in-flight request with a retryable "
                          "503 backend_restarting)")
    srv.set_defaults(handler=_run_serve)

    cert = sub.add_parser("certify",
                          help="emit or verify an optimality certificate")
    add_input_options(cert)
    add_engine_options(cert)
    add_profile_option(cert)
    cert.add_argument("--out", help="write the certificate JSON here")
    cert.add_argument("--check", help="verify a certificate JSON file")
    cert.set_defaults(handler=_run_certify)
    return parser


def _run_serve(args: argparse.Namespace) -> int:
    import os

    from .serve import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        backend=getattr(args, "backend", "process"),
        jobs=args.jobs if args.jobs else (os.cpu_count() or 1),
        engine=args.engine,
        frontier_store=getattr(args, "frontier_store", "dict"),
        cache_dir=getattr(args, "cache_dir", None),
        cache_size=args.cache_size,
        max_disk_entries=args.max_disk_entries,
        cache_shards=args.cache_shards,
        queue_limit=args.queue_limit,
        max_inflight=args.max_inflight,
        default_timeout=getattr(args, "timeout", None),
        max_frontier_mb=getattr(args, "max_frontier_mb", None),
        max_pool_rebuilds=getattr(args, "max_pool_rebuilds", None),
    )
    return serve_main(config)


def _run_symmetry(args: argparse.Namespace) -> int:
    from .analysis.sensitivity import ordering_sensitivity
    from .analysis.symmetry import search_space_reduction, symmetry_classes

    table = _load_table(args)
    classes = symmetry_classes(table)
    full, reduced = search_space_reduction(table)
    print(f"variables        : {table.n}")
    print("symmetry classes : "
          + " ".join("{" + " ".join(f"x{v}" for v in cls) + "}"
                     for cls in classes))
    print(f"ordering orbits  : {reduced} of {full}")
    if table.n <= 8 or args.sample:
        report = ordering_sensitivity(table, sample=args.sample)
        kind = "exhaustive" if report.exhaustive else "sampled"
        print(f"size spread      : {report.minimum}..{report.maximum} "
              f"internal nodes ({kind} over "
              f"{report.orderings_examined} orderings, "
              f"worst/best {report.spread:.2f}x)")
    return 0


def _run_certify(args: argparse.Namespace) -> int:
    from .core.certificate import (
        OptimalityCertificate,
        extract_certificate,
        verify_certificate,
    )

    table = _load_table(args)
    if args.check:
        with open(args.check) as handle:
            certificate = OptimalityCertificate.from_json(handle.read())
        valid = verify_certificate(table, certificate)
        print(f"certificate      : {args.check}")
        print(f"claimed optimum  : {certificate.mincost} internal nodes")
        print(f"verdict          : {'VALID' if valid else 'INVALID'}")
        return 0 if valid else 1
    if table.n > 12:
        raise ReproError("certificate extraction needs the full DP (n <= 12)")
    profiler = _make_profiler(args)
    result, exact, rung = _governed_exact(table, args, profiler)
    if not exact:
        raise ReproError(
            f"cannot certify: the {rung!r} fallback rung produced an "
            "ordering without an optimality proof (raise --timeout or "
            "drop --fallback)"
        )
    if rung is not None:
        result = result.result  # the fs rung's native FSResult
    certificate = extract_certificate(result)
    print(f"optimal ordering : {' '.join(f'x{v}' for v in certificate.order)}")
    print(f"certified optimum: {certificate.mincost} internal nodes")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(certificate.to_json())
        print(f"wrote certificate: {args.out}")
    _emit_profile(args, profiler)
    return 0


def _run_reproduce(args: argparse.Namespace) -> int:
    from .analysis.reproduce import render_report, run_reproduction

    checks = run_reproduction(quick=args.quick)
    print(render_report(checks))
    return 0 if all(c.passed for c in checks) else 1


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
