"""Canonical result cache + batch front-end for the FS-family optimizers.

Optimal-ordering workloads are full of repeats: the same function
resubmitted across CLI runs, dozens of near-identical tables in one
batch, and — the classic observation behind every production BDD
package's computed-table — the *same function up to variable renaming
and output complement* appearing under many disguises.  The dynamic
programs themselves are ``O*(3^n)``; recognizing a repeat costs
``O*(2^n)`` (a canonicalization pass over the truth table).  This module
caches final answers behind that recognition step:

* **Canonical fingerprints.**  :func:`table_key` support-reduces the
  table(s) (:meth:`TruthTable.support`), canonicalizes under variable
  permutation — and under output complement for single-output Boolean
  tables when the rule is complement-invariant (BDD, CBDD) — and hashes
  the canonical bytes together with the kernel-independent problem spec
  ``(spec, rule, arity, outputs, dtype)``.  Two tables in the same orbit
  collide on purpose; the :class:`~repro.truth_table.CanonicalForm`
  witness maps the stored ordering back through the canonicalizing
  permutation on every hit.
* **Two storage layers.**  :class:`ResultCache` keeps a bounded
  in-memory LRU and, when given a directory, an on-disk store of
  fingerprint-scoped, checksummed, atomically-written JSON files (the
  same envelope the sweep checkpoints use, via
  :func:`repro.core.checkpoint.write_checked_json`).  A damaged disk
  entry raises :class:`~repro.errors.CacheError` naming the file — never
  a silent wrong answer.
* **Wired into every DP entry point.**  ``EngineConfig(cache=...)`` (or
  the ``cache=`` keyword of :func:`~repro.core.fs.run_fs`,
  :func:`~repro.core.shared.run_fs_shared`,
  :func:`~repro.core.constrained.run_fs_constrained`) makes the
  optimizers consult the cache first; :func:`repro.core.fs_star
  .run_fs_star` and :func:`repro.core.window.window_sweep` read it off
  their :class:`~repro.core.engine.EngineConfig`.  FS* entries store the
  optimal placement chain and rematerialize the state by replaying it
  (``O(|J|)`` compactions instead of an ``O*(3^{|J|})`` sweep — the same
  Lemma 3 argument as the engine's mincost-only frontier).
* **Batch front-end.**  :func:`optimize_many` (CLI:
  ``optimize --batch manifest.json``) fingerprints a list of tables,
  dedupes them *before* solving, fans the distinct misses over a worker
  pool, and resolves every duplicate through the cache — each duplicate
  costs zero kernel invocations.  The batch is failure-isolated and
  resource-governed: per-item errors become structured
  :class:`BatchError` records while the rest of the batch still solves,
  per-item deadlines (optionally with a degradation ladder, see
  :mod:`repro.core.budget`) bound each item's cost, and disk-store
  writes retry transient I/O errors with exponential backoff.

Determinism guarantee: a cache hit returns an ordering in the same orbit
as — and with cost bit-identical to — what an uncached run returns, and
its stored width profile is exact (Lemma 3: level widths depend only on
the variable sets, which the canonical permutation transports).  When a
function has several optimal orderings, the hit reproduces the one the
*first* (cache-filling) run found, translated to the caller's variable
names; repeated hits are bit-identical to each other.  Cache entries are
kernel-independent (both kernels are exact), so results computed with
``engine="python"`` serve hits to ``engine="numpy"`` callers and vice
versa.  Invalidation is structural: the fingerprint embeds a format
version, the rule, and the canonical bytes, so a format bump or any
change to the function simply misses.

Observability: lookups/stores/canonicalization run under the
``cache_lookup`` / ``cache_store`` / ``canonicalize`` profiler phases,
hit/miss totals land in the ``cache_hits`` / ``cache_misses`` extra
counters, and :meth:`Profiler.note_cache_stats` embeds the final tallies
in ``--profile`` output.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union,
)

import numpy as np

from ..analysis.counters import OperationCounters
from ..errors import CacheError
from ..observability import Profiler
from ..truth_table import CanonicalForm, TruthTable, canonicalize_tables
from .checkpoint import RetryPolicy, read_checked_json, write_checked_json
from .spec import FSState, ReductionRule

if TYPE_CHECKING:  # pragma: no cover - cycle guard (budget imports .fs)
    from .budget import Budget
    from .executor import ExecutorBackend

CACHE_FORMAT = 1
"""Bumping this invalidates every existing fingerprint (entries simply
stop matching; stale files are inert)."""

try:  # pragma: no cover - import probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


class FileLock:
    """Advisory interprocess mutex over one lockfile.

    A :class:`threading.Lock` only serializes threads of one process;
    two daemons (or a daemon and a CLI run) sharing a cache *directory*
    need mutual exclusion across processes for the operations that read
    the directory and then mutate it — eviction scans above all.  On
    POSIX this is ``fcntl.flock`` on a dedicated lockfile (crash-safe:
    the kernel drops the lock when the holder dies); elsewhere it falls
    back to an ``O_EXCL`` claim file polled with a short sleep, with a
    staleness cutoff so a crashed holder cannot wedge the directory
    forever.  Reentrant within a thread is NOT supported — hold it for
    one short critical section at a time.

    Contention is observable: an acquisition that had to wait (the
    non-blocking first attempt lost to another thread or process) tallies
    :attr:`contentions` / :attr:`wait_seconds` and reports the wait to
    ``on_wait`` — how :class:`ResultCache` proves shard locks removed
    the single-directory bottleneck.
    """

    def __init__(
        self,
        path: str,
        stale_seconds: float = 30.0,
        on_wait: Optional[Any] = None,
    ) -> None:
        self.path = path
        self.stale_seconds = stale_seconds
        self.on_wait = on_wait
        """Optional ``callable(seconds)`` invoked after every contended
        acquisition with how long it blocked."""

        self.contentions = 0
        self.wait_seconds = 0.0
        self._fd: Optional[int] = None
        self._thread_lock = threading.Lock()

    def _note_wait(self, started: float) -> None:
        waited = time.perf_counter() - started
        self.contentions += 1
        self.wait_seconds += waited
        if self.on_wait is not None:
            self.on_wait(waited)

    def acquire(self) -> None:
        started = time.perf_counter()
        contended = not self._thread_lock.acquire(blocking=False)
        if contended:
            self._thread_lock.acquire()
        try:
            if fcntl is not None:
                fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    contended = True
                    fcntl.flock(fd, fcntl.LOCK_EX)
                self._fd = fd
                if contended:
                    self._note_wait(started)
                return
            while True:  # pragma: no cover - exercised only off-POSIX
                try:
                    self._fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    )
                    if contended:
                        self._note_wait(started)
                    return
                except FileExistsError:
                    contended = True
                    try:
                        age = time.time() - os.path.getmtime(self.path)
                        if age > self.stale_seconds:
                            os.unlink(self.path)
                            continue
                    except OSError:
                        pass
                    time.sleep(0.01)
        except BaseException:
            self._thread_lock.release()
            raise

    def release(self) -> None:
        fd, self._fd = self._fd, None
        try:
            if fd is not None:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                    os.close(fd)
                else:  # pragma: no cover - exercised only off-POSIX
                    os.close(fd)
                    try:
                        os.unlink(self.path)
                    except FileNotFoundError:
                        pass
        finally:
            self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


def _phase(profiler: Optional[Profiler], name: str):
    return profiler.phase(name) if profiler is not None else nullcontext()


def _digest(header: Dict[str, Any], blob: bytes) -> str:
    """Stable fingerprint of a problem: canonical JSON header + payload."""
    h = hashlib.sha256()
    h.update(json.dumps(header, sort_keys=True, separators=(",", ":")).encode())
    h.update(b"\x00")
    h.update(blob)
    return h.hexdigest()


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TableKey:
    """A canonical cache key plus the witness to translate hits back."""

    fingerprint: str
    form: CanonicalForm
    rule: ReductionRule
    spec: str

    @property
    def canonical_n(self) -> int:
        return len(self.form.support)


def table_key(
    tables: Sequence[TruthTable],
    rule: ReductionRule,
    spec: str = "fs",
    profiler: Optional[Profiler] = None,
) -> TableKey:
    """Canonical fingerprint of an (output vector, rule) problem.

    Support reduction is applied for every cofactor-merging rule (a
    variable no output depends on costs zero nodes at any position); for
    ZDDs it is disabled — zero-suppression prices dead variables.
    Output complement competes for the canonical form only for
    single-output Boolean tables under complement-invariant rules (BDD,
    CBDD): complementing preserves every level width there, but changes
    ZDD widths and cross-output sharing in forests.
    """
    reduce_support = rule is not ReductionRule.ZDD
    allow_complement = (
        len(tables) == 1
        and rule in (ReductionRule.BDD, ReductionRule.CBDD)
    )
    with _phase(profiler, "canonicalize"):
        form = canonicalize_tables(
            tables,
            reduce_support=reduce_support,
            allow_complement=allow_complement,
        )
    header = {
        "format": CACHE_FORMAT,
        "spec": spec,
        "rule": rule.value,
        "arity": len(form.support),
        "outputs": len(tables),
        "dtype": str(form.tables[0].values.dtype),
    }
    return TableKey(
        fingerprint=_digest(header, form.canonical_bytes()),
        form=form,
        rule=rule,
        spec=spec,
    )


def raw_table_key(
    tables: Sequence[TruthTable],
    rule: ReductionRule,
    spec: str,
    extra: Dict[str, Any],
) -> str:
    """Fingerprint *without* canonicalization, for entry points whose
    extra state is not permutation-invariant (precedence constraints, a
    window sweep's initial ordering)."""
    header = {
        "format": CACHE_FORMAT,
        "spec": spec,
        "rule": rule.value,
        "n": tables[0].n,
        "outputs": len(tables),
        "dtype": str(tables[0].values.dtype),
        "extra": extra,
    }
    blob = b"".join(t.values.tobytes() for t in tables)
    return _digest(header, blob)


def state_key(base: FSState, j_mask: int, rule: ReductionRule) -> str:
    """Fingerprint of an FS* solve: the base quadruple's table bytes plus
    the placement bookkeeping and the set ``J`` to optimize.  The DP's
    behavior depends on the base only through these (cell values encode
    the subfunction partition), so equal keys yield bit-identical
    placement chains."""
    header = {
        "format": CACHE_FORMAT,
        "spec": "fs_star",
        "rule": rule.value,
        "n": base.n,
        "mask": base.mask,
        "j_mask": j_mask,
        "num_roots": base.num_roots,
        "num_terminals": base.num_terminals,
        "dtype": str(base.table.dtype),
    }
    return _digest(header, np.ascontiguousarray(base.table).tobytes())


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Running tallies of one :class:`ResultCache` (all layers)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    """Hits served from the on-disk store (a subset of ``hits``)."""

    evictions: int = 0

    retries: int = 0
    """Disk writes that needed at least one retry (see
    :class:`~repro.core.checkpoint.RetryPolicy`), counted per attempt."""

    lock_waits: int = 0
    """Shard-lock acquisitions that had to block on another holder
    (thread or process).  Zero when concurrent writers land in distinct
    shards — the whole point of fingerprint-prefix sharding."""

    lock_wait_seconds: float = 0.0
    """Total wall-clock spent blocked on contended shard locks."""

    def snapshot(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "retries": self.retries,
            "lock_waits": self.lock_waits,
            "lock_wait_seconds": round(self.lock_wait_seconds, 6),
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Fingerprint-keyed store of optimizer results (LRU + optional disk).

    Thread-safe: :func:`optimize_many` fans misses over a worker pool
    that shares one instance.  Payloads are plain JSON-able dicts so the
    memory and disk layers hold the same bytes; the disk layer
    write-throughs every store and backfills the LRU on a disk hit.

    The disk layer is additionally **cross-process-safe** and **sharded
    by fingerprint prefix**: several processes (two daemons, a daemon
    plus CLI runs) may share one directory without contending on a
    single lockfile.  Entries live at ``<directory>/<shard>/cache_<fp>
    .json`` where ``<shard>`` is ``fp[:2]`` reduced modulo
    :attr:`shards` (default 16), and every disk *mutation* — entry
    writes and the :attr:`max_disk_entries` eviction pass — runs under
    that shard's own :class:`FileLock` (``<shard>/.cache.lock``), so
    concurrent writers only serialize when their fingerprints land in
    the same shard.  Entry files were already written atomically
    (temp-name + ``os.replace``); a reader that loses the race with a
    sibling's eviction (the file vanishes between the existence probe
    and the read) records a plain miss instead of raising.  Damaged
    bytes still raise :class:`~repro.errors.CacheError` — only
    *absence* is tolerated.

    Pre-sharding directories (flat ``<directory>/cache_<fp>.json``
    layout) keep working: reads fall back to the flat path
    transparently, and the first disk write performs a one-time lazy
    migration that moves every flat entry into its shard (under the
    legacy root ``.cache.lock``, so it is safe against stragglers).
    """

    def __init__(
        self,
        maxsize: int = 4096,
        directory: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        max_disk_entries: Optional[int] = None,
        shards: int = 16,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if max_disk_entries is not None and max_disk_entries < 1:
            raise ValueError(
                f"max_disk_entries must be >= 1, got {max_disk_entries}"
            )
        if shards < 1 or shards > 256:
            raise ValueError(f"shards must be in 1..256, got {shards}")
        self.maxsize = maxsize
        self.directory = directory
        self.retry = retry
        """Optional :class:`~repro.core.checkpoint.RetryPolicy` applied to
        disk-store writes (transient ``OSError`` -> exponential backoff);
        each retried attempt tallies :attr:`CacheStats.retries`."""

        self.max_disk_entries = max_disk_entries
        """Global cap on entry files kept in :attr:`directory` (across
        all shards); crossing it evicts the oldest files (by
        modification time).  ``None`` = unbounded (the historical
        behavior)."""

        self.shards = shards
        """Disk-store shard count.  The shard of a fingerprint is
        ``int(fp[:2], 16) % shards``, so two caches over one directory
        must agree on the count (a mismatch is harmless but wasteful:
        entries written under one count read as misses under the
        other)."""

        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._shard_locks: Dict[str, FileLock] = {}
        self._migrated = False
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _note_lock_wait(self, waited: float) -> None:
        with self._lock:
            self.stats.lock_waits += 1
            self.stats.lock_wait_seconds += waited

    def shard_name(self, fingerprint: str) -> str:
        """Directory name of the shard holding ``fingerprint``."""
        return f"{int(fingerprint[:2], 16) % self.shards:02x}"

    def _shard_lock(self, shard: str) -> FileLock:
        assert self.directory is not None
        with self._lock:
            lock = self._shard_locks.get(shard)
            if lock is None:
                shard_dir = os.path.join(self.directory, shard)
                os.makedirs(shard_dir, exist_ok=True)
                lock = FileLock(
                    os.path.join(shard_dir, ".cache.lock"),
                    on_wait=self._note_lock_wait,
                )
                self._shard_locks[shard] = lock
            return lock

    def entry_path(self, fingerprint: str) -> str:
        """Sharded on-disk path of ``fingerprint``'s entry file."""
        if self.directory is None:
            raise ValueError("cache has no on-disk store")
        return os.path.join(
            self.directory, self.shard_name(fingerprint),
            f"cache_{fingerprint}.json",
        )

    def flat_entry_path(self, fingerprint: str) -> str:
        """Pre-sharding (PR-7 era) path; reads fall back to it until the
        lazy migration has run."""
        if self.directory is None:
            raise ValueError("cache has no on-disk store")
        return os.path.join(self.directory, f"cache_{fingerprint}.json")

    def lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``fingerprint``, or ``None`` (a miss).

        A hit found only on disk re-validates checksum and fingerprint
        (raising :class:`~repro.errors.CacheError` on damage) and
        backfills the memory layer.  An entry that *vanishes* between
        the existence probe and the read — a sibling process evicted it
        — is a miss, not an error.  A directory written before sharding
        landed (flat ``cache_*.json`` layout) is consulted at the flat
        path too, so old cache dirs serve hits before any migration.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return entry
        if self.directory is not None:
            path = self.entry_path(fingerprint)
            if not os.path.exists(path):
                flat = self.flat_entry_path(fingerprint)
                path = flat if os.path.exists(flat) else path
            if os.path.exists(path):
                try:
                    payload = read_checked_json(path, error=CacheError)
                except CacheError as exc:
                    if isinstance(exc.__cause__, FileNotFoundError):
                        with self._lock:
                            self.stats.misses += 1
                        return None
                    raise
                if payload.get("fingerprint") != fingerprint:
                    raise CacheError(
                        f"cache entry {path} carries fingerprint "
                        f"{payload.get('fingerprint')!r}, expected "
                        f"{fingerprint!r}; refusing to use it"
                    )
                entry = payload["entry"]
                with self._lock:
                    self._insert(fingerprint, entry)
                    self.stats.disk_hits += 1
                    self.stats.hits += 1
                return entry
        with self._lock:
            self.stats.misses += 1
        return None

    def store(self, fingerprint: str, entry: Dict[str, Any]) -> None:
        """Insert (write-through when a directory is configured).

        Disk writes go through :attr:`retry` when one is configured, so a
        transiently flaky filesystem costs backoff, not a lost batch.
        The write (and any :attr:`max_disk_entries` eviction it
        triggers) holds only the target *shard's* interprocess
        :class:`FileLock` — writers in distinct shards never wait on
        each other.  The first write also runs the one-time lazy
        migration of any pre-sharding flat-layout entries."""
        with self._lock:
            self._insert(fingerprint, entry)
            self.stats.stores += 1
        if self.directory is not None:
            self._migrate_flat_entries()
            path = self.entry_path(fingerprint)
            payload = {"fingerprint": fingerprint, "entry": entry}
            lock = self._shard_lock(self.shard_name(fingerprint))

            def write() -> None:
                with lock:
                    write_checked_json(path, payload)
                    if self.max_disk_entries is not None:
                        self._evict_disk_locked()

            if self.retry is not None:
                self.retry.run(
                    write,
                    describe=f"cache store {fingerprint[:12]}",
                    on_retry=self._note_retry,
                )
            else:
                write()

    def _migrate_flat_entries(self) -> None:
        """Move pre-sharding flat-layout entries into their shards, once.

        Runs before the first disk write of this instance.  Flat files
        are moved with ``os.replace`` (atomic; mtime — the eviction
        ordering — is preserved) under the legacy root ``.cache.lock``,
        which is exactly what a pre-sharding process holds for its
        mutations, so a straggler writer cannot interleave.  A file a
        sibling already migrated is skipped silently.
        """
        assert self.directory is not None
        if self._migrated:
            return
        self._migrated = True
        flat = glob.glob(os.path.join(self.directory, "cache_*.json"))
        if not flat:
            return
        root_lock = FileLock(
            os.path.join(self.directory, ".cache.lock"),
            on_wait=self._note_lock_wait,
        )
        with root_lock:
            for name in glob.glob(
                os.path.join(self.directory, "cache_*.json")
            ):
                fingerprint = os.path.basename(name)[len("cache_"):-len(".json")]
                target = self.entry_path(fingerprint)
                os.makedirs(os.path.dirname(target), exist_ok=True)
                try:
                    os.replace(name, target)
                except FileNotFoundError:  # pragma: no cover - sibling race
                    continue

    def _disk_entry_files(self) -> List[str]:
        """Every entry file in the store: all shards plus any flat-layout
        stragglers a pre-sharding process may still be writing."""
        assert self.directory is not None
        return glob.glob(
            os.path.join(self.directory, "*", "cache_*.json")
        ) + glob.glob(os.path.join(self.directory, "cache_*.json"))

    def _evict_disk_locked(self) -> None:
        """Drop the oldest entry files beyond :attr:`max_disk_entries`.

        Caller holds the written shard's interprocess lock.  Accounting
        is *global* — the scan counts every shard so the cap bounds the
        whole directory — while the lock held is per-shard: unlinks are
        atomic, sibling readers treat a vanished file as a miss, and a
        file a sibling already removed is skipped silently, so evicting
        across shard boundaries needs no cross-shard locking.
        Oldest-by-mtime is the cross-process analogue of the in-memory
        LRU (an ``os.replace`` refresh on re-store bumps the time).
        """
        assert self.directory is not None and self.max_disk_entries is not None
        files = []
        for name in self._disk_entry_files():
            try:
                files.append((os.path.getmtime(name), name))
            except OSError:  # vanished mid-scan
                continue
        excess = len(files) - self.max_disk_entries
        if excess <= 0:
            return
        files.sort()
        for _, name in files[:excess]:
            try:
                os.unlink(name)
            except FileNotFoundError:  # pragma: no cover - sibling race
                continue
            with self._lock:
                self.stats.evictions += 1

    def _note_retry(self, attempt: int, exc: BaseException) -> None:
        with self._lock:
            self.stats.retries += 1

    def _insert(self, fingerprint: str, entry: Dict[str, Any]) -> None:
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ----------------------------------------------------------------------
# ordering entries (run_fs / run_fs_shared)
# ----------------------------------------------------------------------

def _mark(counters: Optional[OperationCounters], hit: bool) -> None:
    if counters is not None:
        counters.add_extra("cache_hits" if hit else "cache_misses")


def lookup_ordering(
    cache: ResultCache,
    key: TableKey,
    counters: Optional[OperationCounters] = None,
    profiler: Optional[Profiler] = None,
) -> Optional[Tuple[int, List[int], List[int]]]:
    """Consult the cache for an optimal-ordering entry.

    Returns ``(mincost, order, widths)`` translated back to the caller's
    variables — non-support variables appended at the bottom with width
    0 — or ``None`` on a miss.  A stored payload inconsistent with the
    key raises :class:`~repro.errors.CacheError`.
    """
    with _phase(profiler, "cache_lookup"):
        entry = cache.lookup(key.fingerprint)
    _mark(counters, entry is not None)
    if entry is None:
        return None
    m = key.canonical_n
    canonical_order = [int(v) for v in entry.get("order", ())]
    widths = [int(w) for w in entry.get("widths", ())]
    mincost = int(entry.get("mincost", -1))
    if (
        entry.get("kind") != "ordering"
        or sorted(canonical_order) != list(range(m))
        or len(widths) != m
        or sum(widths) != mincost
    ):
        raise CacheError(
            f"cache entry {key.fingerprint} holds a malformed ordering "
            f"payload for a {m}-variable canonical function"
        )
    order = key.form.map_order_back(canonical_order)
    full_widths = widths + [0] * (key.form.n - m)
    return mincost, order, full_widths


def store_ordering(
    cache: ResultCache,
    key: TableKey,
    order: Sequence[int],
    widths: Sequence[int],
    counters: Optional[OperationCounters] = None,
    profiler: Optional[Profiler] = None,
) -> None:
    """Record a freshly computed optimal ordering under its canonical key.

    ``order``/``widths`` are in the caller's variables; the canonical
    projection drops non-support levels (which must carry zero width)
    and renames through the canonicalizing permutation.
    """
    support_set = set(key.form.support)
    canonical_of = {
        key.form.support[kept]: c for c, kept in enumerate(key.form.perm)
    }
    canonical_order: List[int] = []
    canonical_widths: List[int] = []
    for v, w in zip(order, widths):
        if v in support_set:
            canonical_order.append(canonical_of[v])
            canonical_widths.append(int(w))
        elif w != 0:
            raise CacheError(
                f"non-support variable {v} reported width {w}; refusing "
                "to cache an inconsistent profile"
            )
    entry = {
        "kind": "ordering",
        "order": canonical_order,
        "widths": canonical_widths,
        "mincost": int(sum(canonical_widths)),
    }
    with _phase(profiler, "cache_store"):
        cache.store(key.fingerprint, entry)
    if counters is not None:
        counters.add_extra("cache_stores")


def chain_result_maps(
    order: Sequence[int], widths: Sequence[int]
) -> Tuple[Dict[int, int], Dict[int, int], Dict[Tuple[int, int], int]]:
    """DP-table views along one chain (for cache-hit ``FSResult``\\ s).

    A hit knows the optimal chain and its level widths but not the full
    ``MINCOST_I`` lattice; these maps cover exactly the chain's subsets,
    which is what diagram reconstruction and width queries need.  (Full
    enumeration of *all* optimal orderings still requires an uncached
    run.)
    """
    mincost_by_subset: Dict[int, int] = {0: 0}
    best_last: Dict[int, int] = {}
    level_cost_by_choice: Dict[Tuple[int, int], int] = {}
    mask = 0
    total = 0
    for var, width in zip(reversed(list(order)), reversed(list(widths))):
        level_cost_by_choice[(mask, var)] = int(width)
        mask |= 1 << var
        total += int(width)
        mincost_by_subset[mask] = total
        best_last[mask] = var
    return mincost_by_subset, best_last, level_cost_by_choice


def chain_widths(
    order: Sequence[int],
    level_cost_by_choice: Dict[Tuple[int, int], int],
    n: int,
) -> List[int]:
    """Width profile of ``order`` read off a sweep's recorded level costs."""
    below = (1 << n) - 1
    widths: List[int] = []
    for var in order:
        below &= ~(1 << var)
        widths.append(int(level_cost_by_choice[(below, var)]))
    return widths


# ----------------------------------------------------------------------
# batch front-end
# ----------------------------------------------------------------------

@dataclass
class BatchError:
    """Structured record of one batch item's failure."""

    index: int
    """Position of the failing table in the input batch."""

    stage: str
    """``"fingerprint"`` (canonicalization rejected the table) or
    ``"solve"`` (the optimizer raised)."""

    error_type: str
    """Exception class name, e.g. ``"DimensionError"``,
    ``"BudgetExceeded"``."""

    message: str


@dataclass
class BatchItem:
    """Per-input outcome of :func:`optimize_many` (aligned 1:1 with the
    input batch)."""

    index: int
    status: str
    """``"ok"`` (solved as requested), ``"fallback"`` (a lower ladder
    rung produced the ordering) or ``"error"``."""

    result: Optional["FSResultLike"] = None
    """The :class:`~repro.core.fs.FSResult` (or
    :class:`~repro.core.budget.FallbackResult` when a ladder is active);
    ``None`` iff :attr:`status` is ``"error"``."""

    error: Optional[BatchError] = None


@dataclass
class BatchOutcome:
    """What :func:`optimize_many` returns."""

    results: List["FSResultLike"]
    """The successful results in input order.  With default options every
    item succeeds and this holds one entry per input table; failed items
    (see :attr:`items`) are simply absent."""

    unique: int
    """Distinct canonical fingerprints among the inputs."""

    stats: Dict[str, int] = field(default_factory=dict)
    """The cache's :meth:`CacheStats.snapshot` after the batch."""

    items: List[BatchItem] = field(default_factory=list)
    """One :class:`BatchItem` per input table, in input order — the
    failure-isolated view (``ok``/``fallback``/``error``)."""

    errors: List[BatchError] = field(default_factory=list)
    """Every failed item's :class:`BatchError`, in input order."""


FSResultLike = Any  # FSResult; the real type lives in .fs (imported lazily)


def optimize_many(
    tables: Sequence[TruthTable],
    rule: ReductionRule = ReductionRule.BDD,
    cache: Optional[ResultCache] = None,
    engine: str = "numpy",
    jobs: int = 1,
    backend: "Union[str, ExecutorBackend]" = "thread",
    profiler: Optional[Profiler] = None,
    per_item_timeout: Optional[float] = None,
    fallback: Union[None, str, Sequence[str]] = None,
    budget: Optional["Budget"] = None,
    io_retry: Optional[RetryPolicy] = None,
    install_signal_handlers: bool = False,
    frontier_store: str = "dict",
) -> BatchOutcome:
    """Optimize a batch of tables with canonical deduplication.

    The batch is fingerprinted first; only the *first* table of each
    orbit is solved, and every other member resolves through the cache —
    zero kernel invocations, with the stored ordering translated through
    that member's own canonicalizing permutation.  Results are
    deterministic and independent of ``jobs`` and ``backend``.

    How ``jobs`` parallelizes depends on ``backend``: with the default
    in-process backends, misses fan over a ``jobs``-wide thread pool,
    each item running the sequential engine.  With ``backend="process"``
    (or a live :class:`~repro.core.executor.ExecutorBackend` instance),
    items run one at a time but each item fans its DP layers over one
    process pool shared across the whole batch — the right shape when
    items are big (layer parallelism beats item parallelism under the
    GIL) and what keeps worker count bounded at ``jobs`` either way.

    Failures are **isolated per item**: a table the canonicalizer or the
    solver rejects becomes a structured :class:`BatchError` on
    :attr:`BatchOutcome.items` / :attr:`BatchOutcome.errors` while every
    other item still solves.  Worker futures are always drained — one
    poisoned item never abandons or cancels its siblings' work.

    Resource governance:

    ``per_item_timeout``
        Wall-clock seconds granted to each item.  Without ``fallback``
        an over-budget item fails with a ``BudgetExceeded`` batch error;
        with it, the item degrades through the ladder instead.
    ``fallback``
        A ladder spec (``"fs,window,sift"`` or a sequence) handed to
        :func:`~repro.core.budget.run_ladder`; items whose
        ordering came from a rung below the first are tagged
        ``"fallback"``.
    ``budget``
        A batch-wide :class:`~repro.core.budget.Budget`.  Its deadline
        caps the whole batch (each item gets the smaller of
        ``per_item_timeout`` and the batch's remaining time), and its
        cancellation event is shared with every item, so one ``cancel``
        (or signal) stops the whole batch at the next boundary.
    ``io_retry``
        A :class:`~repro.core.checkpoint.RetryPolicy` attached to the
        cache's disk writes (when the cache has no policy of its own).
    ``install_signal_handlers``
        Route SIGINT/SIGTERM into the batch budget's cancellation event
        for the duration of the batch (see
        :func:`~repro.core.budget.handle_signals`); items then stop at
        their next layer boundary — final checkpoints and cache writes
        already flushed — instead of dying mid-write.
    """
    from .budget import Budget, handle_signals, parse_ladder, \
        run_ladder  # deferred: budget's ladder imports .fs
    from .executor import ExecutorBackend, resolve_backend
    from .fs import run_fs  # deferred: fs imports this module

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    # In-process backends parallelize *across* items (thread fan-out of
    # sequential solves); a process backend parallelizes *within* each
    # item, sharing one pool across the batch so worker count stays
    # bounded at ``jobs`` and pool startup is paid once.
    share_pool = jobs > 1 and (
        backend == "process" or isinstance(backend, ExecutorBackend)
    )
    batch_backend: Optional[ExecutorBackend] = None
    owns_backend = False
    if share_pool:
        batch_backend, owns_backend = resolve_backend(backend)
        solve_backend: "Union[str, ExecutorBackend]" = batch_backend
        solve_jobs = jobs
    else:
        solve_backend = backend
        solve_jobs = 1
    if cache is None:
        cache = ResultCache()
    if io_retry is not None and cache.retry is None:
        cache.retry = io_retry
    ladder = parse_ladder(fallback) if fallback is not None else None
    governed = (
        budget is not None
        or per_item_timeout is not None
        or install_signal_handlers
    )
    parent = budget if budget is not None else Budget()
    if governed:
        parent.arm()

    tables = list(tables)
    items: List[Optional[BatchItem]] = [None] * len(tables)
    keys: List[Optional[TableKey]] = []
    for index, t in enumerate(tables):
        try:
            keys.append(table_key([t], rule, spec="fs", profiler=profiler))
        except Exception as exc:
            keys.append(None)
            items[index] = BatchItem(
                index=index,
                status="error",
                error=BatchError(
                    index=index,
                    stage="fingerprint",
                    error_type=type(exc).__name__,
                    message=str(exc),
                ),
            )
    first_of: Dict[str, int] = {}
    for index, key in enumerate(keys):
        if key is not None:
            first_of.setdefault(key.fingerprint, index)
    representatives = sorted(first_of.values())

    def item_budget() -> Optional["Budget"]:
        if not governed:
            return None
        remaining = parent.remaining()
        if per_item_timeout is None:
            share = remaining
        elif remaining is None:
            share = per_item_timeout
        else:
            share = min(per_item_timeout, remaining)
        return parent.subbudget(share)

    def solve_item(index: int) -> BatchItem:
        sub = item_budget()
        try:
            if ladder is not None:
                outcome = run_ladder(
                    tables[index],
                    budget=sub,
                    ladder=ladder,
                    rule=rule,
                    engine=engine,
                    jobs=solve_jobs,
                    backend=solve_backend,
                    cache=cache,
                    frontier_store=frontier_store,
                )
                status = "ok" if outcome.rung == ladder[0] else "fallback"
                return BatchItem(index=index, status=status, result=outcome)
            result = run_fs(
                tables[index], rule=rule, engine=engine, jobs=solve_jobs,
                backend=solve_backend, cache=cache, budget=sub,
                frontier_store=frontier_store,
            )
            return BatchItem(index=index, status="ok", result=result)
        except Exception as exc:
            return BatchItem(
                index=index,
                status="error",
                error=BatchError(
                    index=index,
                    stage="solve",
                    error_type=type(exc).__name__,
                    message=str(exc),
                ),
            )

    def run_batch() -> None:
        if jobs > 1 and len(representatives) > 1 and not share_pool:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(jobs, len(representatives))
            ) as pool:
                futures = {i: pool.submit(solve_item, i)
                           for i in representatives}
                try:
                    # solve_item never raises, so this drains every
                    # future even when some items carry errors.
                    for i in representatives:
                        items[i] = futures[i].result()
                except BaseException:
                    # Interpreter-level interrupts (KeyboardInterrupt)
                    # still land here: stop the workers cooperatively
                    # and drop queued ones instead of leaking them.
                    parent.cancel.set()
                    for future in futures.values():
                        future.cancel()
                    raise
        else:
            for i in representatives:
                items[i] = solve_item(i)
        for i in range(len(tables)):
            if items[i] is not None:
                continue
            key = keys[i]
            assert key is not None  # fingerprint failures filled above
            rep = first_of[key.fingerprint]
            rep_item = items[rep]
            assert rep_item is not None
            if rep_item.status == "error" and rep_item.error is not None:
                # Re-solving an orbit whose representative failed would
                # deterministically fail the same way; report it directly.
                items[i] = BatchItem(
                    index=i,
                    status="error",
                    error=BatchError(
                        index=i,
                        stage=rep_item.error.stage,
                        error_type=rep_item.error.error_type,
                        message=(f"duplicate of failed item {rep}: "
                                 f"{rep_item.error.message}"),
                    ),
                )
            else:
                items[i] = solve_item(i)  # resolves as a cache hit

    try:
        if install_signal_handlers:
            with handle_signals(parent):
                run_batch()
        else:
            run_batch()
    finally:
        if owns_backend and batch_backend is not None:
            batch_backend.close()

    final_items = [item for item in items if item is not None]
    assert len(final_items) == len(tables)
    if profiler is not None:
        profiler.note_cache_stats(cache.stats.snapshot())
    return BatchOutcome(
        results=[item.result for item in final_items
                 if item.result is not None],
        unique=len(first_of),
        stats=cache.stats.snapshot(),
        items=final_items,
        errors=[item.error for item in final_items
                if item.error is not None],
    )
