"""Table compaction: the inner kernel of the Friedman-Supowit algorithm.

One compaction step folds variable ``x_i`` into the bottom part of the
diagram: it produces ``FS(<I, i>)`` from ``FS(I)`` by pairing, for every
assignment ``b`` to the remaining variables, the two parent cells
``TABLE_I[b, x_i=0]`` and ``TABLE_I[b, x_i=1]``, applying the reduction
rule, and deduplicating the surviving pairs into nodes.

Two implementations are provided, each registered with the execution
engine's kernel registry (:func:`repro.core.engine.register_kernel`) so
every DP entry point and the CLI can select them by name:

* :func:`compact` — vectorized over numpy (the default ``"numpy"`` kernel);
* :func:`compact_python` — a direct, cell-at-a-time transcription of the
  paper's ``COMPACT`` pseudo code (the ``"python"`` kernel), kept as an
  executable specification and used by the tests to cross-check the
  vectorized kernel.

Correctness note on the paper's ``NODE`` membership test: the paper's
pseudo code initializes ``NODE_(I\\i,i)`` with ``NODE_(I\\i)`` and tests
``(u, u0, u1) in NODE``.  Read literally this would merge a *new* node with
an *old* node from a lower level that happens to share the same cofactor
pair — but the paper's own equivalence definition (Sec. 2.2, rule 5(b))
requires ``var(u) = var(v)``, and merging across levels is unsound (two
nodes testing different variables with equal cofactor pairs compute
different functions whenever ``u0 != u1``).  We therefore key the
uniqueness check on the current variable: only nodes created in this very
compaction step can be shared, which is also what the original FS90
implementation does.  ``NODE`` still *accumulates* all triples so the final
diagram can be emitted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._bitops import insert_bit_indices, rank_in_mask
from ..analysis.counters import OperationCounters
from .engine import register_kernel
from .spec import FSState, ReductionRule

_KEY_SHIFT = 32
_ID_LIMIT = 1 << _KEY_SHIFT


@register_kernel("numpy")
def compact(
    state: FSState,
    var: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> FSState:
    """Produce ``FS(<chain..., var>)`` from ``state`` (vectorized).

    ``var`` must be one of the state's free variables.  Node structure is
    tracked iff the input state tracks it.
    """
    free = state.free_mask
    position = rank_in_mask(free, var)
    new_segment = 1 << (state.n - state.placed - 1)
    new_size = state.num_roots * new_segment

    idx0, idx1 = insert_bit_indices(new_segment, position)
    if state.num_roots > 1:
        # One table segment per root; the cofactor indexing applies within
        # each segment, the node dedup below is shared across all of them.
        offsets = (
            np.arange(state.num_roots, dtype=np.int64)[:, None]
            * state.segment_size
        )
        idx0 = (offsets + idx0[None, :]).ravel()
        idx1 = (offsets + idx1[None, :]).ravel()
    u0 = state.table[idx0]
    u1 = state.table[idx1]

    if rule is ReductionRule.ZDD:
        merged = u1 == 0
    else:  # BDD / MTBDD / CBDD all merge equal cofactors
        merged = u0 == u1

    next_id = state.next_id
    if next_id >= _ID_LIMIT:  # pragma: no cover - needs >2^32 nodes
        raise OverflowError("node id space exhausted")

    new_table = np.empty(new_size, dtype=np.int64)
    new_table[merged] = u0[merged]

    live = ~merged
    live_u0 = u0[live].astype(np.int64)
    live_u1 = u1[live].astype(np.int64)
    if rule is ReductionRule.CBDD:
        # Cells hold edges; normalize so the 1-edge is regular and push
        # the complement onto the produced edge.  Two cells whose
        # subfunctions are complements of each other normalize to the
        # same node — that is exactly the complement-class sharing.
        out_complement = live_u1 & 1
        live_u0 = live_u0 ^ out_complement
        live_u1 = live_u1 ^ out_complement
    keys = (live_u0 << _KEY_SHIFT) | live_u1
    unique_keys, first_pos, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    created = int(unique_keys.shape[0])
    if rule is ReductionRule.CBDD:
        new_table[live] = (((next_id + inverse) << 1) | out_complement)
    else:
        new_table[live] = next_id + inverse

    nodes = None
    if state.nodes is not None:
        nodes = dict(state.nodes)
        for j in range(created):
            key = int(unique_keys[j])
            nodes[next_id + j] = (var, key >> _KEY_SHIFT, key & (_ID_LIMIT - 1))

    if counters is not None:
        counters.compactions += 1
        counters.table_cells += new_size
        counters.nodes_created += created

    return FSState(
        n=state.n,
        mask=state.mask | (1 << var),
        pi=state.pi + (var,),
        mincost=state.mincost + created,
        table=new_table,
        num_terminals=state.num_terminals,
        nodes=nodes,
        num_roots=state.num_roots,
    )


@register_kernel("python")
def compact_python(
    state: FSState,
    var: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> FSState:
    """Cell-at-a-time transcription of the paper's ``COMPACT`` procedure.

    Functionally identical to :func:`compact` (the tests assert this); kept
    as an executable specification and as the ablation point for the
    "vectorized tables vs per-cell dictionaries" design choice.
    """
    from .._bitops import insert_bit  # local import to keep module header lean

    free = state.free_mask
    position = rank_in_mask(free, var)
    new_segment = 1 << (state.n - state.placed - 1)
    new_size = state.num_roots * new_segment
    old_segment = state.segment_size

    table = state.table
    new_table = np.empty(new_size, dtype=np.int64)
    mincost = state.mincost
    nodes = dict(state.nodes) if state.nodes is not None else None
    # Per-step unique table, keyed on the cofactor pair for the current var.
    step_unique = {}

    for b in range(new_size):
        root, cell = divmod(b, new_segment)
        base = root * old_segment
        u0 = int(table[base + insert_bit(cell, position, 0)])
        u1 = int(table[base + insert_bit(cell, position, 1)])
        if rule is ReductionRule.ZDD:
            drop = u1 == 0
        else:
            drop = u0 == u1
        if drop:
            new_table[b] = u0
            continue
        out_complement = 0
        if rule is ReductionRule.CBDD:
            out_complement = u1 & 1
            u0 ^= out_complement
            u1 ^= out_complement
        existing = step_unique.get((u0, u1))
        if existing is not None:
            node_id = existing
        else:
            mincost += 1
            node_id = state.num_terminals + mincost - 1  # "one plus MINCOST"
            step_unique[(u0, u1)] = node_id
            if nodes is not None:
                nodes[node_id] = (var, u0, u1)
        if rule is ReductionRule.CBDD:
            new_table[b] = (node_id << 1) | out_complement
        else:
            new_table[b] = node_id

    created = mincost - state.mincost
    if counters is not None:
        counters.compactions += 1
        counters.table_cells += new_size
        counters.nodes_created += created

    return FSState(
        n=state.n,
        mask=state.mask | (1 << var),
        pi=state.pi + (var,),
        mincost=mincost,
        table=new_table,
        num_terminals=state.num_terminals,
        nodes=nodes,
        num_roots=state.num_roots,
    )
