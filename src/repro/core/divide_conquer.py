"""Divide-and-conquer over the ordering-DP lattice (Lemma 9 / OptOBDD).

Lemma 9 splits the optimization at a division point ``k``::

    MINCOST_[n] = min_{|K| = k} ( MINCOST_K + MINCOST_(K, [n]\\K)([n]\\K) )

:func:`mincost_by_split` evaluates that identity directly (the tests verify
it against plain FS for every ``k``).  :func:`opt_obdd` implements the
paper's ``OptOBDD(k, alpha)``: classical FS* preprocessing up to level
``alpha_1 * n``, then nested minimum finding over division points
``alpha_2 * n, ..., alpha_k * n, n`` — with the minimum finder pluggable
(exact classical scan, or the simulated quantum finder of
:mod:`repro.quantum.minimum_finding`, which is what makes this the quantum
algorithm of Theorem 10).

Note on purpose: classically, ``opt_obdd`` does strictly more work than
plain FS — the speedup exists only for the (simulated) quantum query
model.  The implementation's value is that it exercises the exact
algorithmic structure the paper proves things about, on real inputs, and
exposes the modeled query counts for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .._bitops import bits_of, popcount, subsets_of_size
from ..analysis.counters import OperationCounters
from ..errors import DimensionError
from ..quantum.minimum_finding import ClassicalMinimumFinder, MinimumFinder
from ..truth_table import TruthTable
from .fs import initial_state
from .fs_star import ComposableSolver, fs_star_levels, run_fs_star
from .spec import FSState, ReductionRule

#: The alpha vector of Theorem 10 (k = 6), reproduced independently by
#: :func:`repro.analysis.parameters.solve_table1`.
THEOREM10_ALPHAS: Tuple[float, ...] = (
    0.183791,
    0.183802,
    0.183974,
    0.186131,
    0.206480,
    0.343573,
)


@dataclass
class SplitCheck:
    """Result of evaluating Lemma 9 at one division point ``k``."""

    k: int
    mincost: int
    best_kmask: int
    per_split: Dict[int, int] = field(default_factory=dict)
    """``MINCOST_K + MINCOST_(K, rest)(rest)`` for every ``K`` of size k."""


def mincost_by_split(
    table: TruthTable,
    k: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> SplitCheck:
    """Evaluate the right-hand side of Lemma 9 at division point ``k``.

    For every ``K`` of cardinality ``k``: compute ``FS(K)`` bottom-up, then
    extend over the complement with FS*, and take the total.  The minimum
    over ``K`` must equal ``MINCOST_[n]`` — the identity the paper's
    divide-and-conquer rests on.
    """
    n = table.n
    if not 0 <= k <= n:
        raise DimensionError(f"division point {k} out of range for n={n}")
    full = (1 << n) - 1
    base = initial_state(table, rule)
    bottoms = fs_star_levels(base, full, rule, counters, upto=k)

    per_split: Dict[int, int] = {}
    best_kmask = -1
    best_cost: Optional[int] = None
    for kmask, state in bottoms.items():
        final = run_fs_star(state, full & ~kmask, rule, counters)
        per_split[kmask] = final.mincost
        if best_cost is None or final.mincost < best_cost:
            best_cost = final.mincost
            best_kmask = kmask
    assert best_cost is not None
    return SplitCheck(k=k, mincost=best_cost, best_kmask=best_kmask, per_split=per_split)


@dataclass
class OptOBDDResult:
    """Output of :func:`opt_obdd` (and of the composed variants)."""

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    pi: Tuple[int, ...]
    mincost: int
    num_terminals: int
    levels: Tuple[int, ...]
    """Effective division-point sizes ``l_1 < ... < l_k`` actually used."""

    counters: OperationCounters = field(default_factory=OperationCounters)

    @property
    def size(self) -> int:
        return self.mincost + self.num_terminals


def effective_levels(n_prime: int, alphas: Sequence[float]) -> List[int]:
    """Round ``alpha_j * n'`` to usable division points.

    Clamps to ``[1, n' - 1]``, enforces strict monotonicity, and drops
    duplicates — for small ``n'`` several alphas collapse and the recursion
    simply has fewer stages (the asymptotic analysis is unaffected; this is
    the standard integrality handling).
    """
    if any(not 0 < a < 1 for a in alphas):
        raise ValueError("alphas must lie strictly between 0 and 1")
    if list(alphas) != sorted(alphas):
        raise ValueError("alphas must be non-decreasing")
    levels: List[int] = []
    for a in alphas:
        level = min(max(int(round(a * n_prime)), 1), n_prime - 1)
        if not levels or level > levels[-1]:
            levels.append(level)
    return [lv for lv in levels if lv < n_prime]


def opt_obdd_extend(
    base: FSState,
    j_mask: int,
    alphas: Sequence[float],
    rule: ReductionRule = ReductionRule.BDD,
    finder: Optional[MinimumFinder] = None,
    counters: Optional[OperationCounters] = None,
    subroutine: Optional[ComposableSolver] = None,
) -> FSState:
    """The composable ``OptOBDD*_Gamma``: extend ``base`` over ``j_mask``.

    This is the engine shared by Theorem 10 (``base = FS(emptyset)``,
    ``j_mask = [n]``, ``subroutine = FS*``) and the Section 4 composition
    (where ``subroutine`` is a previously-built OptOBDD solver — see
    :mod:`repro.core.composed`).

    Structure (paper's pseudo code ``OptOBDD_Gamma(k, alpha)``):

    1. preprocess ``{FS(<I.., K>) : K subset J, |K| = l_1}`` with FS*;
    2. ``DivideAndConquer(L, t)``: find, with the minimum finder, the
       ``K subset L`` of size ``l_{t-1}`` minimizing the cost of solving
       ``K`` recursively and extending over ``L \\ K`` with ``Gamma``.
    """
    if finder is None:
        finder = ClassicalMinimumFinder(counters)
    if subroutine is None:

        def subroutine(state: FSState, mask: int) -> FSState:
            return run_fs_star(state, mask, rule, counters)

    n_prime = popcount(j_mask)
    if n_prime == 0:
        return base
    levels = effective_levels(n_prime, alphas)
    if not levels:
        # Degenerately small J: no usable division point; plain FS*.
        return run_fs_star(base, j_mask, rule, counters)

    preprocessed = fs_star_levels(base, j_mask, rule, counters, upto=levels[0])

    def divide_and_conquer(l_mask: int, t: int) -> FSState:
        if t == 0:
            return preprocessed[l_mask]
        target = levels[t - 1] if t - 1 < len(levels) else None
        assert target is not None
        candidates = list(subsets_of_size(l_mask, target))

        def cost_at(index: int) -> float:
            state = compute_fs(candidates[index], l_mask & ~candidates[index], t)
            return float(state.mincost)

        outcome = finder.find(len(candidates), cost_at)
        best_kmask = candidates[outcome.index]
        return compute_fs(best_kmask, l_mask & ~best_kmask, t)

    def compute_fs(kmask: int, rest_mask: int, t: int) -> FSState:
        state = divide_and_conquer(kmask, t - 1)
        return subroutine(state, rest_mask)

    return divide_and_conquer(j_mask, len(levels))


def opt_obdd(
    table: TruthTable,
    alphas: Sequence[float] = THEOREM10_ALPHAS,
    rule: ReductionRule = ReductionRule.BDD,
    finder: Optional[MinimumFinder] = None,
    counters: Optional[OperationCounters] = None,
) -> OptOBDDResult:
    """The paper's ``OptOBDD(k, alpha)`` (Theorem 10) end to end.

    With the default exact finders the result is always optimal; with a
    sampled :class:`~repro.quantum.minimum_finding.QuantumMinimumFinder`
    the produced OBDD is always *valid* but is minimum only with the
    finder's success probability — exactly the guarantee of Theorem 1
    ("the OBDD produced by our algorithm is always a valid one for f,
    although it is not minimum with an exponentially small probability").
    """
    if counters is None:
        counters = OperationCounters()
    n = table.n
    base = initial_state(table, rule)
    final = opt_obdd_extend(
        base,
        (1 << n) - 1,
        alphas,
        rule=rule,
        finder=finder,
        counters=counters,
    )
    pi = final.pi
    return OptOBDDResult(
        n=n,
        rule=rule,
        order=tuple(reversed(pi)),
        pi=pi,
        mincost=final.mincost,
        num_terminals=final.num_terminals,
        levels=tuple(effective_levels(n, alphas)),
        counters=counters,
    )
