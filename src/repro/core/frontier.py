"""Pluggable frontier representations for the layered sweep.

The retained DP layer — the *frontier* — is what actually caps tractable
``n``: at the waist the FS dynamic program holds ``C(n, n/2)`` states of
``2^{n/2}`` table cells each (the ``3^n`` analysis of Theorem 5 counts
exactly these cells).  Historically the engine kept the frontier as a
``Dict[int, FSState]`` of tuple-heavy dataclasses, and every layer —
engine, chunk executor, checkpoint codec, budget caps — assumed that
shape, so no compact representation could land without this cross-cutting
seam.  This module is the seam:

* :class:`FrontierStore` — the abstract one-layer container the engine
  builds, the backends read, the checkpoint store serializes and the
  budget meters, with a name registry
  (:func:`register_frontier_store` / :func:`get_frontier_store`)
  mirroring the kernel and backend registries;
* :class:`DictFrontier` — the historical ``mask -> entry`` dict
  (``"dict"``, the default; byte accounting is the documented estimate);
* :class:`PackedFrontier` — contiguous column storage (``"packed"``):
  subset masks and mincosts in ``array('q')`` columns, placement chains
  as one byte per variable, and all table payloads of a layer in a
  single ``bytearray`` bit-packed at the *exact* width the layer's node
  ids need (``bit_length`` of the layer maximum, widened on demand;
  each entry's cells padded to a byte boundary so rows stay sliceable)
  — the ``BitList``/``CompressedList`` idiom of word-packed storage
  with exact ``memory_consumption``-style accounting.  Entries in one
  layer share ``|pi|`` and cell count by construction (equal
  cardinality), which is what makes columns contiguous.

Bit-identity contract: a store changes *where bytes live*, never what
the sweep computes.  Reconstructed entries compare equal to the ones put
in (table values exactly, via widening back to ``int64``), and the
whole-layer batch kernel (:func:`batch_sweep_chunk`) reproduces the
scalar kernel's results **and** :class:`~repro.analysis.counters.\
OperationCounters` tallies arithmetic-for-arithmetic, which the
``store x kernel x backend x jobs x FrontierPolicy`` parity matrix in
``tests/test_core_frontier.py`` pins.

numpy accelerates the packing codec and enables the batch kernel, but
the codec itself has a pure-stdlib fallback (``array`` module) selected
when numpy is unavailable — flip :data:`_USE_NUMPY` to exercise it.
"""

from __future__ import annotations

import abc
import base64
from array import array
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Type,
    Union,
)

try:  # pragma: no cover - numpy is present in the supported environments
    import numpy as np

    _USE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via the _USE_NUMPY flag
    np = None  # type: ignore[assignment]
    _USE_NUMPY = False

from .._bitops import insert_bit_indices, popcount, popcount_buffer, rank_in_mask
from ..errors import OrderingError
from ..observability import frontier_nbytes as _estimate_nbytes
from .checkpoint import Skeleton
from .spec import FSState

Entry = Union[FSState, Skeleton]

# Mirrors repro.core.compaction: node ids are packed two-per-int64 word
# during dedup, so the id space is 32 bits wide.
_KEY_SHIFT = 32
_ID_LIMIT = 1 << _KEY_SHIFT

# Table cells (node ids, or edges under the CBDD rule) are always
# non-negative and bounded by the packed id space, so they bit-pack at
# exactly bit_length(layer max) bits per cell — e.g. 9 bits where a
# byte-aligned ladder would burn 16.  Each entry's run of cells is
# padded up to a byte boundary so entry rows stay independently
# sliceable (shipping, absorb) without bit-offset arithmetic.
_MAX_BITS = 63  # int64 weights decode exactly up to 63-bit values


def _bits_for(bound: int) -> int:
    """Exact bit width holding ``bound`` (>= 1 so empty rows have size)."""
    if bound >= (1 << _MAX_BITS):
        raise OverflowError(f"table value {bound} exceeds the packed id space")
    return max(1, int(bound).bit_length())


def _row_bytes(cells: int, bits: int) -> int:
    """Bytes per entry row: ``cells`` values of ``bits`` bits, byte-padded."""
    return (cells * bits + 7) // 8


def _encode_cells(table: Any, bits: int) -> bytes:
    """Bit-pack an ``int64`` table row (values preserved exactly)."""
    if _USE_NUMPY:
        values = np.asarray(table, dtype=np.uint64)
        shifts = np.arange(bits, dtype=np.uint64)
        cell_bits = ((values[:, None] >> shifts) & 1).astype(np.uint8)
        return np.packbits(cell_bits.ravel(), bitorder="little").tobytes()
    acc = 0
    for row, value in enumerate(table):
        acc |= int(value) << (row * bits)
    return acc.to_bytes(_row_bytes(len(table), bits), "little")


def _decode_cells(buffer: Any, bits: int, count: int, offset: int = 0) -> Any:
    """Rebuild an ``int64`` table row from bit-packed bytes."""
    nbytes = _row_bytes(count, bits)
    if _USE_NUMPY:
        raw = np.frombuffer(buffer, dtype=np.uint8, count=nbytes,
                            offset=offset)
        cell_bits = np.unpackbits(raw, bitorder="little")[:count * bits]
        weights = np.int64(1) << np.arange(bits, dtype=np.int64)
        return cell_bits.reshape(count, bits).astype(np.int64) @ weights
    raw = bytes(memoryview(buffer)[offset:offset + nbytes])
    acc = int.from_bytes(raw, "little")
    mask = (1 << bits) - 1
    values = [(acc >> (row * bits)) & mask for row in range(count)]
    # numpy is genuinely absent only on exotic installs; FSState tables
    # are numpy arrays, so the fallback still converges on one at the
    # boundary when it can, else a stdlib array (duck-typed by nbytes).
    if np is not None:
        return np.array(values, dtype=np.int64)
    return array("q", values)  # pragma: no cover - no-numpy installs


def _rewiden(buffer: Any, cells: int, old_bits: int, new_bits: int) -> bytearray:
    """Re-encode a whole packed table column at a wider bit width."""
    out = bytearray()
    old_row = _row_bytes(cells, old_bits)
    for offset in range(0, len(buffer), old_row):
        out += _encode_cells(
            _decode_cells(buffer, old_bits, cells, offset=offset), new_bits
        )
    return out


def _table_bound(table: Any) -> int:
    """Largest cell value (the quantity that picks the packed width)."""
    if _USE_NUMPY and hasattr(table, "max"):
        return int(table.max())
    return max(int(v) for v in table)


# ----------------------------------------------------------------------
# the wire/rest format of a packed layer slice
# ----------------------------------------------------------------------

@dataclass
class PackedSlice:
    """Picklable column snapshot of (part of) a packed layer.

    This is what a :class:`PackedFrontier` ships across the process
    boundary (a chunk's predecessor entries out, its finished entries
    back) and what the checkpoint codec embeds: five flat byte columns
    plus the layer metadata needed to reinterpret them.  ``nbytes`` is
    the exact payload size, which the process backend's ``bytes_shipped``
    tally reports instead of the dict-era per-entry estimate.
    """

    kind: str
    """``"full"`` (tables present) or ``"skeleton"`` (pi+mincost only)."""

    n: int
    num_terminals: int
    num_roots: int
    base_mask: int
    pi_len: int
    cells: int
    bits: int
    """Bit width of one table cell (``bit_length`` of the slice max)."""

    masks: bytes
    """``array('q')`` of relative subset masks, insertion order."""

    mincosts: bytes
    """``array('q')`` parallel to :attr:`masks`."""

    pis: bytes
    """``pi_len`` bytes per entry (one variable index per byte)."""

    tables: bytes
    """``ceil(cells * bits / 8)`` bytes per entry; empty for skeletons."""

    @property
    def count(self) -> int:
        return len(self.masks) // 8

    @property
    def nbytes(self) -> int:
        return (
            len(self.masks) + len(self.mincosts) + len(self.pis)
            + len(self.tables)
        )


# ----------------------------------------------------------------------
# store protocol + registry
# ----------------------------------------------------------------------

class FrontierStore(abc.ABC):
    """One retained DP layer, behind a representation-agnostic interface.

    The engine builds one store per layer, the execution backends read it
    (``get`` for the scalar kernel path, ``prev_data`` for the packed
    batch path), the checkpoint store serializes it
    (``checkpoint_payload`` / ``to_entry_dict``) and the budget meters it
    (``nbytes``).  Stores register by name
    (:func:`register_frontier_store`) and are selected via
    ``EngineConfig(frontier_store=...)`` and the CLI ``--frontier-store``
    flag, mirroring the kernel and backend registries.

    Bit-identity contract: ``get(mask)`` must return an entry equal in
    every field the kernels read (``n``/``mask``/``pi``/``mincost``/table
    values/``num_terminals``/``num_roots``/``nodes``) to the entry that
    was ``put``; results and operation counters are then independent of
    the store by construction.
    """

    name: str = "custom"

    @abc.abstractmethod
    def put(self, mask: int, entry: Entry) -> None:
        """Add one finished subset's entry (insertion order preserved)."""

    @abc.abstractmethod
    def get(self, mask: int) -> Optional[Entry]:
        """The entry for ``mask``, or ``None`` (mirrors ``dict.get``)."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __contains__(self, mask: int) -> bool: ...

    @abc.abstractmethod
    def masks(self) -> List[int]:
        """Subset masks in insertion order."""

    @abc.abstractmethod
    def min_mincost(self) -> int:
        """Smallest ``mincost`` over the layer (the best-so-far bound)."""

    @abc.abstractmethod
    def nbytes(self) -> int:
        """Resident payload bytes of this layer (exact for packed
        stores; the documented flat-overhead estimate for dict stores)."""

    def items(self) -> Iterator[Tuple[int, Entry]]:
        for mask in self.masks():
            entry = self.get(mask)
            assert entry is not None
            yield mask, entry

    def extend(self, entries: Dict[int, Entry]) -> None:
        for mask, entry in entries.items():
            self.put(mask, entry)

    def to_entry_dict(self) -> Dict[int, Entry]:
        """Materialize the historical ``mask -> entry`` dict view."""
        return dict(self.items())

    # -- optional capabilities ----------------------------------------

    def absorb(self, entries: Dict[int, Entry],
               packed: Optional[PackedSlice] = None) -> None:
        """Merge one chunk result (dict entries and/or a packed slice)."""
        if packed is not None:
            self.extend(_slice_to_entries(packed))
        if entries:
            self.extend(entries)

    def ship_slice(self, masks: Sequence[int]) -> Optional[PackedSlice]:
        """Packed selection of ``masks`` for cross-process shipping, or
        ``None`` when this store ships plain entry dicts."""
        return None

    def checkpoint_payload(self) -> Optional[Dict[str, Any]]:
        """JSON-safe packed payload for the checkpoint codec, or ``None``
        to use the historical per-entry encoding."""
        return None


_STORES: Dict[str, Type[FrontierStore]] = {}


def register_frontier_store(
    name: str,
) -> Callable[[Type[FrontierStore]], Type[FrontierStore]]:
    """Class decorator registering a frontier store under ``name``.

    Registered names become valid for ``EngineConfig(frontier_store=...)``
    and the CLI ``--frontier-store`` flag."""

    def decorate(cls: Type[FrontierStore]) -> Type[FrontierStore]:
        _STORES[name] = cls
        return cls

    return decorate


def get_frontier_store(name: str) -> Type[FrontierStore]:
    """Resolve a registered store class; ``ValueError`` on unknown names."""
    try:
        return _STORES[name]
    except KeyError:
        raise ValueError(
            f"unknown frontier store {name!r}; expected one of "
            f"{available_frontier_stores()}"
        ) from None


def available_frontier_stores() -> List[str]:
    """Registered store names, sorted (for CLI choices and errors)."""
    return sorted(_STORES)


def create_frontier_store(spec: Union[str, Type[FrontierStore]]) -> FrontierStore:
    """Instantiate a store from a registered name or a store class."""
    if isinstance(spec, str):
        return get_frontier_store(spec)()
    if isinstance(spec, type) and issubclass(spec, FrontierStore):
        return spec()
    raise ValueError(
        f"frontier_store must be a registered name "
        f"{available_frontier_stores()} or a FrontierStore subclass, "
        f"got {spec!r}"
    )


# ----------------------------------------------------------------------
# dict store (historical representation, the default)
# ----------------------------------------------------------------------

@register_frontier_store("dict")
class DictFrontier(FrontierStore):
    """The historical ``Dict[int, entry]`` frontier.

    Fastest to build and read (entries are stored as-is), but every entry
    pays Python-object overhead and full ``int64`` table width.
    :meth:`nbytes` is the documented *estimate* (exact table payload plus
    a flat per-entry overhead constant): the true resident size of a
    graph of interpreter objects with interned/shared tuples is not
    well-defined, which is exactly why the budget's frontier caps prefer
    a packed store's exact accounting.
    """

    name = "dict"

    def __init__(self) -> None:
        self._entries: Dict[int, Entry] = {}

    def put(self, mask: int, entry: Entry) -> None:
        self._entries[mask] = entry

    def get(self, mask: int) -> Optional[Entry]:
        return self._entries.get(mask)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mask: int) -> bool:
        return mask in self._entries

    def masks(self) -> List[int]:
        return list(self._entries)

    def items(self) -> Iterator[Tuple[int, Entry]]:
        return iter(self._entries.items())

    def to_entry_dict(self) -> Dict[int, Entry]:
        return self._entries

    def min_mincost(self) -> int:
        return min(entry.mincost for entry in self._entries.values())

    def nbytes(self) -> int:
        return _estimate_nbytes(self._entries)

    def absorb(self, entries: Dict[int, Entry],
               packed: Optional[PackedSlice] = None) -> None:
        if packed is not None:
            self._entries.update(_slice_to_entries(packed))
        if entries:
            self._entries.update(entries)


# ----------------------------------------------------------------------
# packed store
# ----------------------------------------------------------------------

@register_frontier_store("packed")
class PackedFrontier(FrontierStore):
    """Contiguous column storage for one layer.

    Four parallel columns — masks, mincosts, placement chains, table
    payloads — in flat buffers, with the table column bit-packed at the
    exact width the layer's cell values need and widened in place when
    a larger id arrives.  The final width is ``bit_length`` of the
    layer's maximum value regardless of insertion order, so
    :meth:`nbytes` is deterministic across backends and job counts and
    the budget's byte cap aborts at the same layer everywhere.

    Entries reconstruct on :meth:`get` (table values widened back to
    ``int64``), so the scalar kernel path sees ordinary
    :class:`~repro.core.spec.FSState` objects; the batch kernel reads
    the raw rows via :meth:`prev_data` and never builds them.  Node
    structure tracking (``entry.nodes``) is supported through a Python
    side list — such layers still pack their tables but ship and
    checkpoint through the per-entry codec.
    """

    name = "packed"

    def __init__(self) -> None:
        self._kind: Optional[str] = None
        self._n = 0
        self._num_terminals = 0
        self._num_roots = 1
        self._base_mask = 0
        self._pi_len = 0
        self._cells = 0
        self._bits = 1
        self._masks = array("q")
        self._mincosts = array("q")
        self._pis = bytearray()
        self._tables = bytearray()
        self._index: Dict[int, int] = {}
        self._nodes: Optional[List[Optional[Dict[int, Tuple[int, int, int]]]]] = None

    # -- metadata ------------------------------------------------------

    def _adopt_meta(self, kind: str, n: int, num_terminals: int,
                    num_roots: int, base_mask: int, pi_len: int,
                    cells: int) -> None:
        if self._kind is None:
            if n > 0xFF:
                raise ValueError(
                    f"packed frontier stores one byte per placed variable; "
                    f"n={n} exceeds 255"
                )
            self._kind = kind
            self._n = n
            self._num_terminals = num_terminals
            self._num_roots = num_roots
            self._base_mask = base_mask
            self._pi_len = pi_len
            self._cells = cells
            return
        if (kind, n, num_terminals, num_roots, base_mask, pi_len, cells) != (
            self._kind, self._n, self._num_terminals, self._num_roots,
            self._base_mask, self._pi_len, self._cells,
        ):
            raise ValueError(
                "packed frontier layers are homogeneous; entry metadata "
                f"({kind}, n={n}, pi_len={pi_len}, cells={cells}) does not "
                f"match the layer ({self._kind}, n={self._n}, "
                f"pi_len={self._pi_len}, cells={self._cells})"
            )

    def _ensure_width(self, bound: int) -> None:
        wider = _bits_for(bound)
        if wider <= self._bits:
            return
        if self._tables:
            self._tables = _rewiden(
                self._tables, self._cells, self._bits, wider
            )
        self._bits = wider

    # -- core interface ------------------------------------------------

    def put(self, mask: int, entry: Entry) -> None:
        if isinstance(entry, FSState):
            self._adopt_meta(
                "full", entry.n, entry.num_terminals, entry.num_roots,
                entry.mask ^ mask, len(entry.pi), len(entry.table),
            )
            self._ensure_width(_table_bound(entry.table))
            self._tables += _encode_cells(entry.table, self._bits)
            if entry.nodes is not None and self._nodes is None:
                self._nodes = [None] * len(self._masks)
            if self._nodes is not None:
                self._nodes.append(entry.nodes)
        else:
            self._adopt_meta("skeleton", self._n or 0, self._num_terminals,
                             self._num_roots, self._base_mask,
                             len(entry.pi), 0)
        self._index[mask] = len(self._masks)
        self._masks.append(mask)
        self._mincosts.append(entry.mincost)
        self._pis += bytes(entry.pi)

    def get(self, mask: int) -> Optional[Entry]:
        row = self._index.get(mask)
        if row is None:
            return None
        pi = tuple(self._pis[row * self._pi_len:(row + 1) * self._pi_len])
        mincost = self._mincosts[row]
        if self._kind == "skeleton":
            return Skeleton(pi=pi, mincost=mincost)
        table = _decode_cells(
            self._tables, self._bits, self._cells,
            offset=row * _row_bytes(self._cells, self._bits),
        )
        nodes = self._nodes[row] if self._nodes is not None else None
        return FSState(
            n=self._n,
            mask=self._base_mask | mask,
            pi=pi,
            mincost=mincost,
            table=table,
            num_terminals=self._num_terminals,
            nodes=nodes,
            num_roots=self._num_roots,
        )

    def __len__(self) -> int:
        return len(self._masks)

    def __contains__(self, mask: int) -> bool:
        return mask in self._index

    def masks(self) -> List[int]:
        return list(self._masks)

    def min_mincost(self) -> int:
        return min(self._mincosts)

    def nbytes(self) -> int:
        """Exact payload bytes: the four columns, nothing estimated.

        (The node side list, when structure tracking is on, holds plain
        interpreter dicts and is excluded like the dict store's object
        overhead is — packing targets the table payloads that dominate.)
        """
        return (
            len(self._masks) * self._masks.itemsize
            + len(self._mincosts) * self._mincosts.itemsize
            + len(self._pis)
            + len(self._tables)
        )

    # -- batch-kernel raw access ---------------------------------------

    def batchable(self) -> bool:
        """Whether the whole-layer batch kernel may read this store raw."""
        return (
            _USE_NUMPY
            and self._kind == "full"
            and self._nodes is None
        )

    def prev_data(self, mask: int) -> Optional[Tuple[Any, int, Tuple[int, ...], int]]:
        """``(table, mincost, pi, abs_mask)`` without building an
        :class:`FSState` — the batch kernel's read path.  The table row
        is decoded to ``int64`` (bit-packed cells cannot be viewed in
        place) but no entry object or tuple plumbing is built."""
        row = self._index.get(mask)
        if row is None:
            return None
        table = _decode_cells(
            self._tables, self._bits, self._cells,
            offset=row * _row_bytes(self._cells, self._bits),
        )
        pi = tuple(self._pis[row * self._pi_len:(row + 1) * self._pi_len])
        return table, self._mincosts[row], pi, self._base_mask | mask

    # -- slices (shipping + merging) -----------------------------------

    def to_slice(self) -> PackedSlice:
        return PackedSlice(
            kind=self._kind or "full",
            n=self._n,
            num_terminals=self._num_terminals,
            num_roots=self._num_roots,
            base_mask=self._base_mask,
            pi_len=self._pi_len,
            cells=self._cells,
            bits=self._bits,
            masks=self._masks.tobytes(),
            mincosts=self._mincosts.tobytes(),
            pis=bytes(self._pis),
            tables=bytes(self._tables),
        )

    @classmethod
    def from_slice(cls, blob: PackedSlice) -> "PackedFrontier":
        store = cls()
        store._kind = blob.kind
        store._n = blob.n
        store._num_terminals = blob.num_terminals
        store._num_roots = blob.num_roots
        store._base_mask = blob.base_mask
        store._pi_len = blob.pi_len
        store._cells = blob.cells
        store._bits = blob.bits
        store._masks = array("q")
        store._masks.frombytes(blob.masks)
        store._mincosts = array("q")
        store._mincosts.frombytes(blob.mincosts)
        store._pis = bytearray(blob.pis)
        store._tables = bytearray(blob.tables)
        store._index = {mask: row for row, mask in enumerate(store._masks)}
        return store

    def ship_slice(self, masks: Sequence[int]) -> Optional[PackedSlice]:
        if self._nodes is not None and any(
            nodes is not None for nodes in self._nodes
        ):
            return None  # node dicts ship through the entry codec
        out_masks = array("q")
        out_mincosts = array("q")
        out_pis = bytearray()
        out_tables = bytearray()
        rowbytes = _row_bytes(self._cells, self._bits)
        for mask in masks:
            row = self._index[mask]
            out_masks.append(mask)
            out_mincosts.append(self._mincosts[row])
            out_pis += self._pis[row * self._pi_len:(row + 1) * self._pi_len]
            if self._kind == "full":
                out_tables += self._tables[row * rowbytes:(row + 1) * rowbytes]
        return PackedSlice(
            kind=self._kind or "full",
            n=self._n,
            num_terminals=self._num_terminals,
            num_roots=self._num_roots,
            base_mask=self._base_mask,
            pi_len=self._pi_len,
            cells=self._cells,
            bits=self._bits,
            masks=out_masks.tobytes(),
            mincosts=out_mincosts.tobytes(),
            pis=bytes(out_pis),
            tables=bytes(out_tables),
        )

    def absorb(self, entries: Dict[int, Entry],
               packed: Optional[PackedSlice] = None) -> None:
        if packed is not None and packed.count:
            self._absorb_slice(packed)
        if entries:
            self.extend(entries)

    def _absorb_slice(self, blob: PackedSlice) -> None:
        self._adopt_meta(blob.kind, blob.n, blob.num_terminals,
                         blob.num_roots, blob.base_mask, blob.pi_len,
                         blob.cells)
        masks = array("q")
        masks.frombytes(blob.masks)
        mincosts = array("q")
        mincosts.frombytes(blob.mincosts)
        if blob.kind == "full" and blob.count:
            if blob.bits > self._bits:
                self._ensure_width((1 << blob.bits) - 1)
            if blob.bits == self._bits:
                self._tables += blob.tables
            else:
                self._tables += _rewiden(
                    blob.tables, self._cells, blob.bits, self._bits
                )
        base_row = len(self._masks)
        for offset, mask in enumerate(masks):
            self._index[mask] = base_row + offset
        self._masks.extend(masks)
        self._mincosts.extend(mincosts)
        self._pis += blob.pis
        if self._nodes is not None:
            self._nodes.extend([None] * len(masks))

    # -- checkpoint codec ----------------------------------------------

    def checkpoint_payload(self) -> Optional[Dict[str, Any]]:
        if self._nodes is not None and any(
            nodes is not None for nodes in self._nodes
        ):
            return None  # node-tracking layers use the per-entry codec
        masks_bytes = self._masks.tobytes()
        return {
            "version": 1,
            "kind": self._kind or "full",
            "n": self._n,
            "num_terminals": self._num_terminals,
            "num_roots": self._num_roots,
            "base_mask": self._base_mask,
            "pi_len": self._pi_len,
            "cells": self._cells,
            "bits": self._bits,
            "count": len(self._masks),
            "masks": base64.b64encode(masks_bytes).decode("ascii"),
            "mincosts": base64.b64encode(
                self._mincosts.tobytes()
            ).decode("ascii"),
            "pis": base64.b64encode(bytes(self._pis)).decode("ascii"),
            "tables": base64.b64encode(bytes(self._tables)).decode("ascii"),
            # Cheap integrity extra on top of the envelope checksum: the
            # population count of the mask column must survive decode.
            "mask_popcount": popcount_buffer(masks_bytes),
        }

    @staticmethod
    def decode_checkpoint_payload(blob: Dict[str, Any]) -> Dict[int, Entry]:
        """Inverse of :meth:`checkpoint_payload`, as an entry dict."""
        packed = PackedSlice(
            kind=str(blob["kind"]),
            n=int(blob["n"]),
            num_terminals=int(blob["num_terminals"]),
            num_roots=int(blob["num_roots"]),
            base_mask=int(blob["base_mask"]),
            pi_len=int(blob["pi_len"]),
            cells=int(blob["cells"]),
            bits=int(blob["bits"]),
            masks=base64.b64decode(blob["masks"]),
            mincosts=base64.b64decode(blob["mincosts"]),
            pis=base64.b64decode(blob["pis"]),
            tables=base64.b64decode(blob["tables"]),
        )
        if not 1 <= packed.bits <= _MAX_BITS:
            raise ValueError(f"bad packed cell width {packed.bits!r}")
        if packed.count != int(blob["count"]):
            raise ValueError(
                f"packed frontier payload holds {packed.count} entries, "
                f"header says {blob['count']}"
            )
        expected_pop = int(blob["mask_popcount"])
        actual_pop = popcount_buffer(packed.masks)
        if actual_pop != expected_pop:
            raise ValueError(
                f"packed frontier mask column popcount {actual_pop} != "
                f"recorded {expected_pop}"
            )
        return _slice_to_entries(packed)


def _slice_to_entries(blob: PackedSlice) -> Dict[int, Entry]:
    """Decode a packed slice into the historical entry dict (in column
    order, so insertion order survives the round trip)."""
    masks = array("q")
    masks.frombytes(blob.masks)
    mincosts = array("q")
    mincosts.frombytes(blob.mincosts)
    out: Dict[int, Entry] = {}
    rowbytes = _row_bytes(blob.cells, blob.bits)
    for row, mask in enumerate(masks):
        pi = tuple(blob.pis[row * blob.pi_len:(row + 1) * blob.pi_len])
        if blob.kind == "skeleton":
            out[mask] = Skeleton(pi=pi, mincost=mincosts[row])
            continue
        table = _decode_cells(
            blob.tables, blob.bits, blob.cells, offset=row * rowbytes
        )
        out[mask] = FSState(
            n=blob.n,
            mask=blob.base_mask | mask,
            pi=pi,
            mincost=mincosts[row],
            table=table,
            num_terminals=blob.num_terminals,
            num_roots=blob.num_roots,
        )
    return out


# ----------------------------------------------------------------------
# worker-side composite view (shared-memory base + shipped slice)
# ----------------------------------------------------------------------

class BaseOverlay:
    """A frontier view joining the sweep's base state (mask 0, living in
    shared memory on process workers) with a shipped packed slice.

    Exposes exactly what :func:`repro.core.executor.sweep_chunk` and the
    batch kernel read: ``get`` and ``prev_data``/``batchable``.
    """

    def __init__(self, base: FSState, inner: PackedFrontier) -> None:
        self._base = base
        self._inner = inner

    def get(self, mask: int) -> Optional[Entry]:
        if mask == 0:
            return self._base
        return self._inner.get(mask)

    def batchable(self) -> bool:
        return self._inner.batchable() or len(self._inner) == 0

    def prev_data(self, mask: int) -> Optional[Tuple[Any, int, Tuple[int, ...], int]]:
        if mask == 0:
            base = self._base
            return base.table, base.mincost, base.pi, base.mask
        return self._inner.prev_data(mask)


# ----------------------------------------------------------------------
# the whole-layer batch kernel
# ----------------------------------------------------------------------

def batch_sweep_chunk(
    masks: Sequence[int],
    previous: Any,
    base: FSState,
    rule: Any,
    retain_full: bool,
    counters: Any,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Optional[Tuple[PackedFrontier, Dict[int, int], Dict[int, int],
                    Dict[Tuple[int, int], int], int, bool]]:
    """Finalize one chunk of a layer in bulk over packed predecessor rows.

    The fast path behind :func:`repro.core.executor.sweep_chunk` when the
    previous layer is a batchable :class:`PackedFrontier`: instead of
    reconstructing one :class:`FSState` per candidate and dispatching a
    kernel call each, it reads predecessor tables as zero-copy buffer
    rows, reuses the cofactor index arrays per bit position (every
    predecessor of a layer shares table geometry, so the
    ``insert_bit_indices`` work is done once per position, not once per
    candidate), and appends finished entries straight into packed
    columns — no per-subset Python objects anywhere on the hot path.

    Arithmetic is a line-for-line restatement of
    :func:`repro.core.compaction.compact` (same merge predicate, same
    ``np.unique`` dedup, same id assignment, same counter tallies in the
    same order), which is what keeps results *and*
    :class:`~repro.analysis.counters.OperationCounters` bit-identical to
    the scalar path — the parity matrix proves it.

    Returns ``None`` when the fast path does not apply (non-packed or
    skeleton previous layer, node tracking, numpy unavailable); the
    caller then runs the scalar path.
    """
    if not _USE_NUMPY or base.nodes is not None:
        return None
    batchable = getattr(previous, "batchable", None)
    prev_data = getattr(previous, "prev_data", None)
    if batchable is None or prev_data is None or not batchable():
        return None
    from .spec import ReductionRule  # local: avoid import-order surprises

    is_zdd = rule is ReductionRule.ZDD
    is_cbdd = rule is ReductionRule.CBDD
    n = base.n
    num_terminals = base.num_terminals
    num_roots = base.num_roots
    full_n = (1 << n) - 1

    out = PackedFrontier()
    mincost_d: Dict[int, int] = {}
    best_last_d: Dict[int, int] = {}
    level_cost_d: Dict[Tuple[int, int], int] = {}
    processed = 0
    cancelled = False
    idx_cache: Dict[int, Tuple[Any, Any]] = {}

    for mask in masks:
        if should_stop is not None and should_stop():
            cancelled = True
            break
        best_mincost: Optional[int] = None
        best_i = -1
        best_table: Any = None
        best_pi: Tuple[int, ...] = ()
        rest = mask
        while rest:
            low = rest & -rest
            i = low.bit_length() - 1
            rest ^= low
            data = prev_data(mask & ~low)
            if data is None:
                continue  # infeasible predecessor under a subset filter
            ptable, pmincost, ppi, prev_abs = data
            placed_prev = popcount(prev_abs)
            new_segment = 1 << (n - placed_prev - 1)
            new_size = num_roots * new_segment
            position = rank_in_mask(full_n ^ prev_abs, i)
            cached = idx_cache.get(position)
            if cached is None:
                idx0, idx1 = insert_bit_indices(new_segment, position)
                if num_roots > 1:
                    offsets = (
                        np.arange(num_roots, dtype=np.int64)[:, None]
                        * (1 << (n - placed_prev))
                    )
                    idx0 = (offsets + idx0[None, :]).ravel()
                    idx1 = (offsets + idx1[None, :]).ravel()
                idx_cache[position] = cached = (idx0, idx1)
            idx0, idx1 = cached
            u0 = ptable[idx0]
            u1 = ptable[idx1]
            merged = (u1 == 0) if is_zdd else (u0 == u1)
            next_id = num_terminals + pmincost
            if next_id >= _ID_LIMIT:  # pragma: no cover - needs >2^32 nodes
                raise OverflowError("node id space exhausted")
            new_table = np.empty(new_size, dtype=np.int64)
            new_table[merged] = u0[merged]
            live = ~merged
            live_u0 = u0[live].astype(np.int64)
            live_u1 = u1[live].astype(np.int64)
            if is_cbdd:
                out_complement = live_u1 & 1
                live_u0 = live_u0 ^ out_complement
                live_u1 = live_u1 ^ out_complement
            keys = (live_u0 << _KEY_SHIFT) | live_u1
            unique_keys, _, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            created = int(unique_keys.shape[0])
            if is_cbdd:
                new_table[live] = ((next_id + inverse) << 1) | out_complement
            else:
                new_table[live] = next_id + inverse
            counters.compactions += 1
            counters.table_cells += new_size
            counters.nodes_created += created
            level_cost_d[(prev_abs, i)] = created
            cand_mincost = pmincost + created
            if best_mincost is None or cand_mincost < best_mincost:
                best_mincost = cand_mincost
                best_i = i
                best_table = new_table
                best_pi = ppi + (i,)
        if best_mincost is None:
            raise OrderingError(f"no feasible chain reaches subset {mask:#x}")
        entry: Entry
        if retain_full:
            entry = FSState(
                n=n,
                mask=(base.mask | mask) if mask & base.mask == 0 else mask,
                pi=best_pi,
                mincost=best_mincost,
                table=best_table,
                num_terminals=num_terminals,
                num_roots=num_roots,
            )
        else:
            entry = Skeleton(pi=best_pi, mincost=best_mincost)
        out.put(mask, entry)
        mincost_d[mask] = best_mincost
        best_last_d[mask] = best_i
        processed += 1
        counters.subsets_processed += 1
    return out, mincost_d, best_last_d, level_cost_d, processed, cancelled
