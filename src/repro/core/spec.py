"""The FS quadruple: the state object threaded through all DP variants.

The paper writes ``FS(<I_1, ..., I_m>)`` for the quadruple
``(pi, MINCOST, TABLE, NODE)``.  :class:`FSState` is that quadruple plus the
bookkeeping needed to continue compacting it:

* ``pi`` — the bottom-first placement of the variables handled so far
  (paper's ``pi[1..|I|]``: ``pi[0]`` is the variable read *last*).
* ``mincost`` — number of DD nodes in the bottom ``|pi|`` levels under the
  chain that produced this state (equals ``MINCOST`` when every step chose
  the minimizing predecessor, by Lemma 4 / Lemma 7).
* ``table`` — the paper's ``TABLE``: one cell per assignment to the
  *remaining* variables, holding the node id representing the corresponding
  subfunction.  Cell indexing: bit ``j`` of the cell index is the value of
  the ``j``-th smallest remaining variable (see :mod:`repro._bitops`).
* ``nodes`` — the paper's ``NODE`` set, as a dict ``id -> (var, lo, hi)``;
  only populated when structure tracking is requested (it is needed to
  output the minimum DD itself, not to compute its size).

Node ids: ``0 .. num_terminals-1`` are terminals (0=F, 1=T for Boolean
rules); internal node ids continue from there, so the next free id is
always ``num_terminals + mincost`` — exactly the paper's "one plus the
value of MINCOST after the increment" scheme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .._bitops import popcount


class ReductionRule(enum.Enum):
    """Which decision-diagram variant the table compaction targets."""

    BDD = "bdd"
    """Merge a node whose cofactors coincide (``u0 == u1``)."""

    ZDD = "zdd"
    """Zero-suppress a node whose 1-cofactor is the 0 terminal
    (``u1 == 0``) — the paper's two-line modification."""

    MTBDD = "mtbdd"
    """Same rule as BDD but over arbitrarily many terminal values
    (paper's Remark 2)."""

    CBDD = "cbdd"
    """Complement-edge BDDs (an extension beyond the paper): table cells
    hold *edges* ``node_id << 1 | complement`` over a single terminal
    node 0 (TRUE); a level's nodes are the distinct complement-classes
    ``{g, ~g}`` of dependent subfunctions.  Lemma 3/4 carry over because
    class counts, like subfunction counts, depend only on the
    partition."""


@dataclass
class FSState:
    """One point of the FS dynamic program (the paper's quadruple)."""

    n: int
    mask: int
    pi: Tuple[int, ...]
    mincost: int
    table: np.ndarray
    num_terminals: int = 2
    nodes: Optional[Dict[int, Tuple[int, int, int]]] = None
    num_roots: int = 1
    """Roots sharing this DP state.  1 for the single-function algorithms;
    the multi-rooted generalization (:mod:`repro.core.shared`) stacks one
    table segment per output function, deduplicating nodes across all of
    them (the shared-forest semantics of multi-output circuits)."""

    def __post_init__(self) -> None:
        if self.num_roots < 1:
            raise ValueError("num_roots must be at least 1")
        expected = self.num_roots << (self.n - popcount(self.mask))
        if self.table.shape != (expected,):
            raise ValueError(
                f"table shape {self.table.shape} inconsistent with mask "
                f"{self.mask:#x} over n={self.n} variables "
                f"and {self.num_roots} roots"
            )

    @property
    def segment_size(self) -> int:
        """Cells per root segment (``2^{n - |I|}``)."""
        return 1 << (self.n - popcount(self.mask))

    @property
    def placed(self) -> int:
        """How many variables are already placed (``|I|``)."""
        return popcount(self.mask)

    @property
    def free_mask(self) -> int:
        """Bitmask of the variables not yet placed."""
        return ((1 << self.n) - 1) ^ self.mask

    @property
    def next_id(self) -> int:
        """Id the next created node will receive."""
        return self.num_terminals + self.mincost

    def tracking_nodes(self) -> bool:
        return self.nodes is not None

    def copy_shallow(self) -> "FSState":
        """Copy sharing the (read-only) table; node dict is copied."""
        return FSState(
            n=self.n,
            mask=self.mask,
            pi=self.pi,
            mincost=self.mincost,
            table=self.table,
            num_terminals=self.num_terminals,
            nodes=dict(self.nodes) if self.nodes is not None else None,
            num_roots=self.num_roots,
        )
