"""Crash-safe checkpoints for the layered sweep (and fault injection).

The FS dynamic program is the most expensive thing this repository runs —
``O*(3^n)`` table cells (Theorem 5) — and, because Lemma 4's recurrence
only ever reads the previous layer, a finished layer is a perfect cut
point: the frontier entries plus the accumulated DP tables are everything
the sweep needs to continue.  This module snapshots exactly that state so
:func:`repro.core.engine.run_layered_sweep` can restart from the last
finished layer instead of from scratch, which covers every DP entry point
(``run_fs``, ``run_fs_shared``, the constrained DP, the window optimizer
and FS*) for free.

Design points:

* **Self-describing files.**  Each layer writes one JSON file carrying a
  *fingerprint* of the sweep (kernel, rule, ``n``, universe mask, frontier
  policy, a content hash of the base state, ...) and a SHA-256 *checksum*
  of the payload.  Loading validates both; a truncated file, a checksum
  mismatch or a fingerprint mismatch raises
  :class:`~repro.errors.CheckpointError` naming the offending file —
  a resume never silently continues from the wrong data.
* **Fingerprint-scoped filenames.**  The fingerprint hash is part of the
  filename, so many sweeps (a window sweep runs dozens of FS* solves) can
  share one checkpoint directory without clobbering each other, and a
  resume only ever considers files written by an identical sweep.
* **Atomic writes.**  Files are written to a temp name and
  ``os.replace``-d into place, so a crash mid-write leaves the previous
  checkpoint intact (the torn temp file is ignored by the loader).
* **Exact counter restoration.**  Each checkpoint stores the sweep's
  *delta* of :class:`~repro.analysis.counters.OperationCounters` since
  the sweep started.  Because the sweep is deterministic, restoring the
  delta is indistinguishable from recomputing the layers: an
  interrupted-then-resumed run is bit-identical to an uninterrupted one
  in both results and counters (the fault-injection tests prove this for
  all five entry points).

:class:`FaultInjector` is the testing hook that makes the guarantee
checkable: attached to an :class:`~repro.core.engine.EngineConfig` it can
kill the process (raise :class:`InjectedFault`) after a chosen layer or
after a chosen number of checkpoint writes, and corrupt a just-written
checkpoint to exercise the validation paths.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..analysis.counters import OperationCounters
from ..errors import CheckpointError
from .spec import FSState

FORMAT_VERSION = 1

_COUNTER_FIELDS = (
    "table_cells",
    "compactions",
    "nodes_created",
    "subsets_processed",
    "oracle_queries",
    "classical_evaluations",
)


# ----------------------------------------------------------------------
# checked-JSON envelope (shared with repro.core.cache)
# ----------------------------------------------------------------------

def write_checked_json(path: str, payload: Dict[str, Any]) -> str:
    """Atomically write ``payload`` wrapped in a checksummed envelope.

    The document layout (``format``/``checksum``/``payload``) is the one
    every durable artifact of this package uses: sweep checkpoints and
    result-cache entries alike.  The payload checksum is computed over the
    canonical (sorted, separator-free) JSON encoding, and the file lands
    via a temp-name ``os.replace`` so a crash mid-write never leaves a
    torn file under the real name.
    """
    payload_json = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    document = {
        "format": FORMAT_VERSION,
        "checksum": hashlib.sha256(payload_json.encode()).hexdigest(),
        "payload": payload,
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(document, handle, sort_keys=True)
    os.replace(tmp, path)
    return path


def read_checked_json(path: str, error: type = CheckpointError) -> Dict[str, Any]:
    """Read and validate a :func:`write_checked_json` document.

    Returns the payload.  A missing/unreadable file, invalid JSON, a
    missing envelope, or a checksum mismatch raises ``error`` (default
    :class:`~repro.errors.CheckpointError`; the result cache passes
    :class:`~repro.errors.CacheError`) naming the offending file.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise error(f"{path} could not be read: {exc}") from exc
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise error(
            f"{path} is truncated or not valid JSON ({exc})"
        ) from None
    if (
        not isinstance(document, dict)
        or "payload" not in document
        or "checksum" not in document
    ):
        raise error(f"{path} is missing its payload/checksum envelope")
    payload = document["payload"]
    payload_json = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload_json.encode()).hexdigest()
    if digest != document["checksum"]:
        raise error(
            f"{path} failed its content checksum "
            f"(expected {document['checksum']}, computed {digest}); "
            "the file is corrupt"
        )
    return payload


@dataclass
class RetryPolicy:
    """Exponential-backoff retry for transient durable-storage I/O.

    Checkpoint and result-cache files live on whatever filesystem the
    operator points them at — often networked storage where a write can
    fail transiently (NFS blip, quota race) without the run being doomed.
    This policy wraps one I/O callable: retryable exceptions are retried
    up to ``max_retries`` times with delays ``base_delay * 2**attempt``
    capped at ``max_delay``; anything else (and the final failure)
    propagates unchanged.  Validation errors
    (:class:`~repro.errors.CheckpointError` /
    :class:`~repro.errors.CacheError`) are *not* ``OSError`` subclasses,
    so corrupt data is never retried into silence.

    ``sleep`` is injectable so tests run instantly; ``retries_used``
    tallies across every :meth:`run` for observability (the result cache
    mirrors it into :class:`repro.core.cache.CacheStats.retries` and the
    engine into the ``retries`` extra counter).
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    retryable: Tuple[type, ...] = (OSError,)
    sleep: Callable[[float], None] = time.sleep

    retries_used: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def run(
        self,
        fn: Callable[[], Any],
        describe: str = "operation",
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Call ``fn`` with retries; returns its result.

        ``on_retry(attempt, exc)`` fires before each backoff sleep (for
        counters/logging).  The last exception is re-raised unchanged
        once the budget of retries is spent.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except self.retryable as exc:
                if attempt >= self.max_retries:
                    raise
                delay = min(self.base_delay * (2 ** attempt), self.max_delay)
                attempt += 1
                self.retries_used += 1
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(delay)


@dataclass
class Skeleton:
    """Mincost-only frontier entry: enough to rebuild the state on demand.

    (Lives here — not in :mod:`repro.core.engine` — so the checkpoint
    codec, the engine and the frontier stores share one definition
    without import cycles.)
    """

    pi: Tuple[int, ...]
    mincost: int


Entry = Union[FSState, Skeleton]


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultInjector` to simulate a crash.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a real crash
    is not handled by library error paths, so the simulated one must not
    be either (the CLI's ``except ReproError`` would otherwise swallow
    it and defeat the tests).
    """


def corrupt_checkpoint(path: str, mode: str = "truncate") -> None:
    """Damage a checkpoint file in a controlled way (for fault injection).

    ``"truncate"`` keeps only the first half of the file (torn write),
    ``"flip"`` flips one byte in the middle (bit rot; the JSON usually
    still parses but the checksum no longer matches), ``"garbage"``
    replaces the content with non-JSON bytes.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if mode == "truncate":
        data = data[: len(data) // 2]
    elif mode == "flip":
        mid = len(data) // 2
        data = data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]
    elif mode == "garbage":
        data = b"\x00corrupt checkpoint\x00" * 4
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "wb") as handle:
        handle.write(data)


@dataclass
class FaultInjector:
    """Deterministic crash/corruption injection for checkpointed sweeps.

    Attach one to ``EngineConfig(fault_injector=...)``; the engine calls
    :meth:`on_layer_committed` after each layer's checkpoint is durably
    on disk.  Counters persist across sweeps, so ``kill_after_writes``
    can target a layer deep inside a multi-solve run (a window sweep).
    """

    kill_after_layer: Optional[int] = None
    """Raise :class:`InjectedFault` after the first sweep layer with this
    cardinality ``k`` commits."""

    kill_after_writes: Optional[int] = None
    """Raise after this many layer commits, counted across every sweep
    this injector observes."""

    corrupt_layer: Optional[int] = None
    """Corrupt the checkpoint file of the layer with this cardinality
    right after it is written (simulating a torn write that fsync'd)."""

    corruption: str = "truncate"
    """Damage mode for ``corrupt_layer`` (see :func:`corrupt_checkpoint`)."""

    kill_worker_layer: Optional[int] = None
    """SIGKILL the worker process executing chunk ``kill_worker_chunk``
    of the layer with this cardinality — a *process-level* fault, unlike
    the coordinator-side raises above.  The process backend consults the
    injector while building that chunk's task and flags the envelope;
    the worker kills itself with ``SIGKILL`` (uncatchable, exactly what
    an OOM killer delivers), the pool reports
    :class:`concurrent.futures.process.BrokenProcessPool`, and the
    backend's self-healing path takes over.  In-process backends ignore
    these fields: there is no worker to lose."""

    kill_worker_chunk: int = 0
    """Chunk index (within the layer's chunk list) whose worker dies."""

    kill_worker_phase: str = "before"
    """``"before"`` kills the worker as the chunk starts (no work done);
    ``"during"`` kills it about halfway through the chunk's masks, so
    partial worker-side state is provably discarded on retry."""

    worker_kills: int = 1
    """How many times the targeted chunk's worker dies.  Each armed kill
    fires once — the coordinator marks it consumed *before* shipping the
    chunk, so the healed pool's re-submission runs clean.  Values above
    ``max_pool_rebuilds`` exhaust the healing budget and surface
    :class:`~repro.errors.ExecutorBrokenError` deterministically."""

    commits_seen: int = field(default=0, init=False)

    worker_kills_injected: int = field(default=0, init=False)
    """How many worker kills this injector has armed so far (across
    retries and sweeps); tests assert it to prove the fault fired."""

    def on_layer_committed(self, k: int, path: Optional[str]) -> None:
        self.commits_seen += 1
        if self.corrupt_layer == k and path is not None:
            corrupt_checkpoint(path, self.corruption)
        if self.kill_after_layer is not None and k == self.kill_after_layer:
            raise InjectedFault(
                f"injected crash after layer k={k} committed"
            )
        if (
            self.kill_after_writes is not None
            and self.commits_seen >= self.kill_after_writes
        ):
            raise InjectedFault(
                f"injected crash after {self.commits_seen} checkpoint commits"
            )

    def take_worker_kill(self, layer: int, chunk_index: int) -> Optional[str]:
        """Consume one armed worker kill for ``(layer, chunk_index)``.

        Returns the kill phase (``"before"``/``"during"``) when the
        chunk's worker should die, ``None`` otherwise.  Consuming
        *mutates coordinator state*, which is what makes recovery
        deterministic: once ``worker_kills`` kills have been armed, the
        healed pool's re-submission of the same chunk ships clean.
        """
        if (
            self.kill_worker_layer != layer
            or self.kill_worker_chunk != chunk_index
            or self.worker_kills_injected >= self.worker_kills
        ):
            return None
        if self.kill_worker_phase not in ("before", "during"):
            raise ValueError(
                f"unknown kill_worker_phase {self.kill_worker_phase!r}; "
                "expected 'before' or 'during'"
            )
        self.worker_kills_injected += 1
        return self.kill_worker_phase


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------

def sweep_fingerprint(
    base: FSState,
    universe_mask: int,
    rule: str,
    upto: int,
    kernel: str,
    frontier: str,
    tag: str = "",
) -> Dict[str, Any]:
    """Identity of a sweep: two sweeps with equal fingerprints compute
    bit-identical layers, so one may resume from the other's checkpoints.

    The base state is folded in as a content hash of its table plus its
    placement bookkeeping; ``tag`` lets entry points with state the engine
    cannot see (the constrained DP's precedence closure — its
    ``subset_filter`` is an opaque callable) contribute to the identity.
    """
    base_hash = hashlib.sha256()
    base_hash.update(str(base.table.dtype).encode())
    base_hash.update(np.ascontiguousarray(base.table).tobytes())
    return {
        "format": FORMAT_VERSION,
        "kernel": kernel,
        "rule": rule,
        "frontier": frontier,
        "n": base.n,
        "num_roots": base.num_roots,
        "num_terminals": base.num_terminals,
        "track_nodes": base.nodes is not None,
        "universe_mask": universe_mask,
        "upto": upto,
        "base_mask": base.mask,
        "base_pi": list(base.pi),
        "base_mincost": base.mincost,
        "base_table_sha256": base_hash.hexdigest(),
        "tag": tag,
    }


def fingerprint_hash(fingerprint: Dict[str, Any]) -> str:
    """Short stable digest used to scope checkpoint filenames."""
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


# ----------------------------------------------------------------------
# entry / counter codecs
# ----------------------------------------------------------------------

def _encode_entry(entry: Entry) -> Dict[str, Any]:
    if isinstance(entry, FSState):
        out: Dict[str, Any] = {
            "kind": "state",
            "mask": entry.mask,
            "pi": list(entry.pi),
            "mincost": entry.mincost,
            "dtype": str(entry.table.dtype),
            "table": base64.b64encode(
                np.ascontiguousarray(entry.table).tobytes()
            ).decode("ascii"),
        }
        if entry.nodes is not None:
            out["nodes"] = [
                [u, list(triple)] for u, triple in sorted(entry.nodes.items())
            ]
        return out
    return {
        "kind": "skeleton",
        "pi": list(entry.pi),
        "mincost": entry.mincost,
    }


def _decode_entry(
    blob: Dict[str, Any], n: int, num_terminals: int, num_roots: int
) -> Entry:
    if blob["kind"] == "skeleton":
        return Skeleton(pi=tuple(blob["pi"]), mincost=int(blob["mincost"]))
    table = np.frombuffer(
        base64.b64decode(blob["table"]), dtype=np.dtype(blob["dtype"])
    ).copy()
    nodes = None
    if "nodes" in blob:
        nodes = {int(u): tuple(triple) for u, triple in blob["nodes"]}
    return FSState(
        n=n,
        mask=int(blob["mask"]),
        pi=tuple(blob["pi"]),
        mincost=int(blob["mincost"]),
        table=table,
        num_terminals=num_terminals,
        nodes=nodes,
        num_roots=num_roots,
    )


def counters_from_snapshot(snapshot: Dict[str, int]) -> OperationCounters:
    """Rebuild an :class:`OperationCounters` from a plain-dict snapshot
    (the inverse of ``OperationCounters.snapshot`` / ``diff``)."""
    counters = OperationCounters()
    for key, amount in snapshot.items():
        if key in _COUNTER_FIELDS:
            setattr(counters, key, int(amount))
        else:
            counters.add_extra(key, int(amount))
    return counters


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

@dataclass
class RestoredSweep:
    """Everything a resumed sweep needs to continue after ``layer``."""

    layer: int
    entries: Dict[int, Entry]
    mincost_by_subset: Dict[int, int]
    best_last: Dict[int, int]
    level_cost_by_choice: Dict[Tuple[int, int], int]
    subsets_processed: int
    counter_delta: OperationCounters
    path: str


class CheckpointStore:
    """Reads and writes per-layer sweep checkpoints in one directory.

    Files are named ``ckpt_<fingerprint12>_layer_<k>.json`` so multiple
    sweeps coexist; only files matching this store's fingerprint are ever
    considered for resume, and every load re-validates the embedded
    fingerprint and payload checksum.
    """

    def __init__(
        self,
        directory: str,
        fingerprint: Dict[str, Any],
        retry: Optional[RetryPolicy] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self.fp_hash = fingerprint_hash(fingerprint)
        self.retry = retry
        self.on_retry = on_retry
        os.makedirs(directory, exist_ok=True)

    def layer_path(self, k: int) -> str:
        return os.path.join(
            self.directory, f"ckpt_{self.fp_hash}_layer_{k:04d}.json"
        )

    def layers_on_disk(self) -> List[int]:
        """Layer numbers with a checkpoint file for this fingerprint."""
        pattern = re.compile(
            rf"^ckpt_{re.escape(self.fp_hash)}_layer_(\d+)\.json$"
        )
        out = []
        for name in os.listdir(self.directory):
            match = pattern.match(name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def save_layer(
        self,
        k: int,
        entries: Any,
        mincost_by_subset: Dict[int, int],
        best_last: Dict[int, int],
        level_cost_by_choice: Dict[Tuple[int, int], int],
        subsets_processed: int,
        counter_delta: Dict[str, int],
    ) -> str:
        """Atomically persist layer ``k``; returns the file path.

        ``entries`` is the finished layer: a plain ``mask -> entry`` dict
        or a :class:`~repro.core.frontier.FrontierStore`.  A store that
        offers a packed payload (``checkpoint_payload``) is written as
        one ``entries_packed`` column blob; everything else uses the
        historical per-entry ``entries`` list.  Both forms carry the same
        fingerprint and are mutually resumable — the engine repacks
        restored entries under whatever store the resuming config names.
        """
        packed_payload: Optional[Dict[str, Any]] = None
        payload_hook = getattr(entries, "checkpoint_payload", None)
        if callable(payload_hook):
            packed_payload = payload_hook()
            if packed_payload is None:
                entries = entries.to_entry_dict()
        payload = {
            "fingerprint": self.fingerprint,
            "layer": k,
            "mincost_by_subset": sorted(mincost_by_subset.items()),
            "best_last": sorted(best_last.items()),
            "level_cost_by_choice": [
                [list(key), cost]
                for key, cost in sorted(level_cost_by_choice.items())
            ],
            "subsets_processed": subsets_processed,
            "counter_delta": dict(sorted(counter_delta.items())),
        }
        if packed_payload is not None:
            payload["entries_packed"] = packed_payload
        else:
            payload["entries"] = [
                [mask, _encode_entry(entry)]
                for mask, entry in sorted(entries.items())
            ]
        path = self.layer_path(k)
        if self.retry is not None:
            return self.retry.run(
                lambda: write_checked_json(path, payload),
                describe=path,
                on_retry=self.on_retry,
            )
        return write_checked_json(path, payload)

    def load_latest(self, upto: int) -> Optional[RestoredSweep]:
        """Restore the newest finished layer ``<= upto``, or ``None``.

        The newest matching file must validate; a damaged or mismatched
        checkpoint raises :class:`~repro.errors.CheckpointError` rather
        than silently falling back to an older layer or a cold start.
        """
        candidates = [k for k in self.layers_on_disk() if k <= upto]
        if not candidates:
            return None
        return self.load_file(self.layer_path(max(candidates)))

    def load_file(self, path: str) -> RestoredSweep:
        """Load and fully validate one checkpoint file."""
        payload = read_checked_json(path, error=CheckpointError)
        found = payload.get("fingerprint", {})
        if found != self.fingerprint:
            differing = sorted(
                key
                for key in set(found) | set(self.fingerprint)
                if found.get(key) != self.fingerprint.get(key)
            )
            raise CheckpointError(
                f"checkpoint {path} was written by a different sweep "
                f"configuration (fingerprint mismatch on: "
                f"{', '.join(differing) or 'entire fingerprint'}); "
                "refusing to resume from it"
            )
        n = self.fingerprint["n"]
        num_terminals = self.fingerprint["num_terminals"]
        num_roots = self.fingerprint["num_roots"]
        try:
            if "entries_packed" in payload:
                # Packed column payload (written by a packed frontier
                # store).  Decoded into the historical entry dict so
                # resume works regardless of the resuming store.
                from .frontier import PackedFrontier  # deferred: no cycle

                entries = PackedFrontier.decode_checkpoint_payload(
                    payload["entries_packed"]
                )
            else:
                entries = {
                    int(mask): _decode_entry(blob, n, num_terminals, num_roots)
                    for mask, blob in payload["entries"]
                }
            restored = RestoredSweep(
                layer=int(payload["layer"]),
                entries=entries,
                mincost_by_subset={
                    int(mask): int(cost)
                    for mask, cost in payload["mincost_by_subset"]
                },
                best_last={
                    int(mask): int(var)
                    for mask, var in payload["best_last"]
                },
                level_cost_by_choice={
                    (int(key[0]), int(key[1])): int(cost)
                    for key, cost in payload["level_cost_by_choice"]
                },
                subsets_processed=int(payload["subsets_processed"]),
                counter_delta=counters_from_snapshot(
                    payload["counter_delta"]
                ),
                path=path,
            )
        except (KeyError, ValueError, TypeError) as error:
            raise CheckpointError(
                f"checkpoint {path} has a malformed payload: {error!r}"
            ) from None
        return restored
