"""Emit the minimum decision diagram itself (not just its size).

Theorem 1 promises "a minimum OBDD together with the corresponding variable
ordering".  The DP in :mod:`repro.core.fs` finds the ordering and the size;
this module re-runs the compaction chain along the optimal ordering with
node tracking switched on, which materializes the paper's ``NODE`` set —
the full structure of the minimum diagram — in ``n`` compactions
(``O*(2^n)`` time, dominated by the DP that preceded it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.counters import OperationCounters
from ..errors import OrderingError
from ..truth_table import TruthTable
from .compaction import compact
from .fs import FSResult, initial_state, terminal_values
from .spec import FSState, ReductionRule


@dataclass
class Diagram:
    """A standalone reduced decision diagram (id-addressed, manager-free).

    Ids below ``num_terminals`` are terminals; ``terminal_values[t]`` is the
    function value of terminal ``t`` (``[0, 1]`` for Boolean rules).
    """

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    root: int
    num_terminals: int
    terminal_values: List[int]
    nodes: Dict[int, Tuple[int, int, int]]
    """Internal nodes: id -> (var, lo, hi) — the paper's ``NODE`` triples."""

    @property
    def mincost(self) -> int:
        return len(self.nodes)

    @property
    def size(self) -> int:
        """Total node count including (reachable) terminals."""
        return len(self.reachable())

    def reachable(self) -> List[int]:
        """Reachable ids: node ids for CBDD (edges resolved), raw ids
        otherwise."""
        seen = set()
        if self.rule is ReductionRule.CBDD:
            stack = [self.root >> 1]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                if node != 0:
                    _, lo, hi = self.nodes[node]
                    stack.append(lo >> 1)
                    stack.append(hi >> 1)
            return sorted(seen)
        stack = [self.root]
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u >= self.num_terminals:
                _, lo, hi = self.nodes[u]
                stack.append(lo)
                stack.append(hi)
        return sorted(seen)

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Evaluate on a full assignment indexed by variable.

        Honors the diagram's rule: for :attr:`ReductionRule.ZDD`, a skipped
        variable set to 1 forces the value to 0 (zero-suppression
        semantics); BDD/MTBDD skips are don't-cares; for
        :attr:`ReductionRule.CBDD` the root and all child references are
        edges (``node_id << 1 | complement``) over the single TRUE
        terminal.
        """
        if self.rule is ReductionRule.CBDD:
            edge = self.root
            complement = edge & 1
            node = edge >> 1
            while node != 0:
                var, lo, hi = self.nodes[node]
                nxt = hi if assignment[var] else lo
                complement ^= nxt & 1
                node = nxt >> 1
            return 0 if complement else 1
        position = {v: lv for lv, v in enumerate(self.order)}
        u = self.root
        level = 0
        n = self.n
        while True:
            u_level = position[self.nodes[u][0]] if u >= self.num_terminals else n
            if self.rule is ReductionRule.ZDD:
                for lv in range(level, u_level):
                    if assignment[self.order[lv]]:
                        return 0
            if u < self.num_terminals:
                return self.terminal_values[u]
            var, lo, hi = self.nodes[u]
            u = hi if assignment[var] else lo
            level = u_level + 1

    def to_truth_table(self) -> TruthTable:
        values = [
            self.evaluate([(a >> i) & 1 for i in range(self.n)])
            for a in range(1 << self.n)
        ]
        return TruthTable(self.n, values)

    def level_widths(self) -> List[int]:
        """Nodes per level, indexed like ``order`` (root level first)."""
        position = {v: lv for lv, v in enumerate(self.order)}
        widths = [0] * self.n
        for u in self.reachable():
            if u >= self.num_terminals:
                widths[position[self.nodes[u][0]]] += 1
        return widths

    def to_dot(self, name: str = "DD") -> str:
        if self.rule is ReductionRule.CBDD:
            return self._cbdd_to_dot(name)
        from ..bdd.dot import diagram_to_dot

        return diagram_to_dot(self.nodes, self.root, self.num_terminals, name)

    def _cbdd_to_dot(self, name: str) -> str:
        # Complement edges rendered with [dir=both arrowtail=odot].
        lines = [f"digraph {name} {{", "  rankdir=TB;",
                 '  n0 [shape=box, label="T"];']
        for node in self.reachable():
            if node == 0:
                continue
            var, lo, hi = self.nodes[node]
            lines.append(f'  n{node} [shape=circle, label="x{var + 1}"];')
            for edge, style in ((lo, "dotted"), (hi, "solid")):
                extra = ", arrowtail=odot, dir=both" if edge & 1 else ""
                lines.append(
                    f"  n{node} -> n{edge >> 1} [style={style}{extra}];"
                )
        lines.append("}")
        return "\n".join(lines)


def build_diagram(
    table: TruthTable,
    order: Sequence[int],
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> Diagram:
    """Build the reduced diagram of ``table`` under ``order`` via the FS
    compaction chain (one compaction per variable, bottom-up).

    ``order`` is read-first to read-last; the chain processes it reversed
    (the paper's ``pi``).
    """
    n = table.n
    if sorted(order) != list(range(n)):
        raise OrderingError(f"{order!r} is not an ordering of range({n})")
    state: FSState = initial_state(table, rule, track_nodes=True)
    for var in reversed(list(order)):
        state = compact(state, var, rule, counters)
    assert state.table.shape == (1,)
    return Diagram(
        n=n,
        rule=rule,
        order=tuple(order),
        root=int(state.table[0]),
        num_terminals=state.num_terminals,
        terminal_values=terminal_values(table, rule),
        nodes=state.nodes or {},
    )


def reconstruct_minimum_diagram(
    table: TruthTable,
    result: FSResult,
    counters: Optional[OperationCounters] = None,
) -> Diagram:
    """Materialize the minimum diagram found by :func:`repro.core.fs.run_fs`."""
    diagram = build_diagram(table, result.order, result.rule, counters)
    if diagram.mincost != result.mincost:  # pragma: no cover - invariant
        raise AssertionError(
            f"reconstruction produced {diagram.mincost} nodes, "
            f"DP reported {result.mincost}"
        )
    return diagram
