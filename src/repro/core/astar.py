"""Best-first exact ordering search (A* over the FS subset lattice).

The FS dynamic program unconditionally evaluates all ``2^n`` subsets.
The same recurrence (Lemma 4) also defines a shortest-path problem on the
subset lattice — the view the paper itself takes when connecting FS to
Ambainis et al.'s framework ("the algorithm FS can be seen as solving a
kind of shortest path problem on a Boolean hypercube").  This module
solves that shortest-path problem with A*: states are bottom-variable
sets ``I``, ``g(I) = MINCOST_I``, edges are single table compactions, and
the heuristic ``h(I)`` counts the essential variables still to be placed
(each contributes at least one node — admissible, so the result is
provably optimal).

On structured functions A* expands far fewer than ``2^n`` states; on
random functions it degrades towards FS (plus queue overhead).  The
benchmarks measure exactly that trade-off; the tests cross-validate its
optimality against FS and brute force.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .._bitops import bits_of, popcount
from ..analysis.counters import OperationCounters
from ..truth_table import TruthTable
from .compaction import compact
from .fs import initial_state
from .spec import FSState, ReductionRule


@dataclass
class AStarResult:
    """Outcome of the best-first exact search."""

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    pi: Tuple[int, ...]
    mincost: int
    num_terminals: int
    states_expanded: int
    """Subset states popped and expanded (FS always expands ``2^n - 1``)."""

    states_generated: int
    """Successor evaluations (table compactions performed)."""

    optimal: bool = True
    """False when an expansion budget cut the search short; ``mincost``
    is then the incumbent (upper bound) and ``lower_bound`` brackets the
    true optimum from below."""

    lower_bound: int = 0
    counters: OperationCounters = field(default_factory=OperationCounters)

    @property
    def size(self) -> int:
        return self.mincost + self.num_terminals

    @property
    def gap(self) -> int:
        """Optimality gap (0 when proven optimal)."""
        return self.mincost - self.lower_bound if not self.optimal else 0


def _essential_mask(table: TruthTable) -> int:
    mask = 0
    for v in table.support():
        mask |= 1 << v
    return mask


def astar_optimal_ordering(
    table: TruthTable,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    max_expansions: Optional[int] = None,
) -> AStarResult:
    """Find an optimal ordering by A* over bottom-variable sets.

    Returns the same minimum as :func:`repro.core.fs.run_fs` (the tests
    assert this) while potentially expanding far fewer subset states.

    With ``max_expansions`` the search becomes *anytime*: if the budget
    runs out, the deepest frontier state is completed greedily (always
    placing the cheapest next variable) to give an incumbent ordering,
    and the open list's best ``f``-value gives a certified lower bound —
    the result carries ``optimal=False`` and the bracketing pair.
    """
    if counters is None:
        counters = OperationCounters()
    n = table.n
    full = (1 << n) - 1
    essential = _essential_mask(table)

    def heuristic(mask: int) -> int:
        # Each still-unplaced essential variable will occupy a level of
        # width >= 1 wherever it lands: admissible and consistent.
        return popcount(essential & ~mask)

    start = initial_state(table, rule)
    best_g: Dict[int, int] = {0: 0}
    states: Dict[int, FSState] = {0: start}
    parent: Dict[int, Tuple[int, int]] = {}
    expanded: Dict[int, bool] = {}
    heap: List[Tuple[int, int, int]] = [(heuristic(0), 0, 0)]  # (f, g, mask)
    states_expanded = 0
    states_generated = 0

    while heap:
        f_value, g_value, mask = heapq.heappop(heap)
        if expanded.get(mask) or g_value > best_g.get(mask, g_value):
            continue
        if max_expansions is not None and states_expanded >= max_expansions:
            # Budget exhausted: push the entry back so the frontier's best
            # f-value is intact for the lower bound, then go anytime.
            heapq.heappush(heap, (f_value, g_value, mask))
            return _anytime_result(
                table, rule, counters, heap, expanded, best_g, states,
                states_expanded, states_generated, start,
            )
        expanded[mask] = True
        states_expanded += 1
        counters.subsets_processed += 1
        if mask == full:
            break
        state = states[mask]
        for i in bits_of(full & ~mask):
            successor = compact(state, i, rule, counters)
            states_generated += 1
            new_mask = mask | (1 << i)
            if expanded.get(new_mask):
                continue
            known = best_g.get(new_mask)
            if known is None or successor.mincost < known:
                best_g[new_mask] = successor.mincost
                states[new_mask] = successor
                parent[new_mask] = (mask, i)
                heapq.heappush(
                    heap,
                    (successor.mincost + heuristic(new_mask),
                     successor.mincost, new_mask),
                )
        # The table of a fully-expanded interior state is no longer
        # needed once all successors were generated.
        if mask != 0:
            states.pop(mask, None)

    if full not in expanded:  # pragma: no cover - search is complete
        raise RuntimeError("A* terminated without reaching the goal")

    # Reconstruct pi (bottom-first) by walking parents from the goal.
    pi_reversed: List[int] = []
    mask = full
    while mask:
        mask, var = parent[mask]
        pi_reversed.append(var)
    pi = tuple(reversed(pi_reversed))
    return AStarResult(
        n=n,
        rule=rule,
        order=tuple(reversed(pi)),
        pi=pi,
        mincost=best_g[full],
        num_terminals=start.num_terminals,
        states_expanded=states_expanded,
        states_generated=states_generated,
        optimal=True,
        lower_bound=best_g[full],
        counters=counters,
    )


def _anytime_result(
    table: TruthTable,
    rule: ReductionRule,
    counters: OperationCounters,
    heap,
    expanded,
    best_g,
    states,
    states_expanded: int,
    states_generated: int,
    start: FSState,
) -> AStarResult:
    """Budget exhausted: complete the most advanced known state greedily
    and report (incumbent, lower bound)."""
    n = table.n
    full = (1 << n) - 1
    # Lower bound: smallest f on the frontier among not-yet-expanded
    # states (A* with a consistent heuristic never overstates it).
    lower_bound = min(
        (f for f, g, mask in heap
         if not expanded.get(mask) and g <= best_g.get(mask, g)),
        default=0,
    )
    # Incumbent: take the deepest state with the best g, finish greedily.
    seed_mask = max(states, key=lambda m: (popcount(m), -best_g.get(m, 0)))
    state = states[seed_mask]
    while state.mask != full:
        best_next: Optional[FSState] = None
        best_var = -1
        for i in bits_of(full & ~state.mask):
            candidate = compact(state, i, rule, counters)
            if best_next is None or candidate.mincost < best_next.mincost:
                best_next = candidate
                best_var = i
        assert best_next is not None
        state = best_next
    # The state's pi already records its full chain (seed prefix plus the
    # greedy tail appended above).
    pi = state.pi
    incumbent = state.mincost
    return AStarResult(
        n=n,
        rule=rule,
        order=tuple(reversed(pi)),
        pi=pi,
        mincost=incumbent,
        num_terminals=start.num_terminals,
        states_expanded=states_expanded,
        states_generated=states_generated,
        optimal=False,
        lower_bound=min(lower_bound, incumbent),
        counters=counters,
    )
