"""Pluggable execution backends for the layered sweep.

The engine (:func:`repro.core.engine.run_layered_sweep`) splits every DP
layer into contiguous chunks of disjoint masks and hands them to an
:class:`ExecutorBackend`; the backend decides *where* the chunks run.
Three implementations ship:

* ``serial`` — chunks run inline on the coordinator, one after another.
* ``thread`` — chunks fan out over a lazily created
  :class:`~concurrent.futures.ThreadPoolExecutor` (the historical
  ``jobs>1`` behavior).  Cheap to start, but the pure-Python kernels gain
  little under the GIL.
* ``process`` — chunks fan out over a spawn-context
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Read-only base data
  (the root table's bytes) is shipped once per sweep through
  :mod:`multiprocessing.shared_memory`; per-layer work travels as a
  picklable :class:`ChunkTask` / :class:`ChunkResult` envelope.  This is
  the backend where ``jobs=4`` means four cores.

Determinism contract: every backend executes the *same* chunks (the
split depends only on ``jobs``), runs each chunk through the same
:func:`sweep_chunk` routine with a fresh
:class:`~repro.analysis.counters.OperationCounters`, and the engine
merges chunk results in fixed chunk order — so results *and counters*
are bit-identical across ``serial``/``thread``/``process`` and any
``jobs`` value.  The only exception is transport accounting: the process
backend tallies ``tasks_shipped`` / ``bytes_shipped`` extra counters
(deterministic for a given run shape, but zero on the in-process
backends), which are excluded from the cross-backend parity guarantee
exactly like the frontier policy's ``recompute_*`` counters are excluded
from the paper-facing totals.

Budget propagation: the process backend mirrors the coordinator's
:class:`~repro.core.budget.Budget` — its cooperative-cancellation event
and its deadline — into a shared :class:`multiprocessing.Event` via a
watcher thread; workers poll it between masks and stop early.  A chunk
stopped that way comes back flagged ``cancelled`` and the engine
discards the whole partial layer, so the
:class:`~repro.errors.BudgetExceeded` it raises always describes the
last *committed* layer boundary (checkpoint/resume semantics unchanged).
Workers ignore ``SIGINT``; route signals through
:func:`repro.core.budget.handle_signals` on the coordinator and they
reach the workers through the mirrored event.

Fault tolerance: a worker SIGKILLed mid-layer (OOM killer, segfault)
marks the whole :class:`~concurrent.futures.ProcessPoolExecutor` broken.
The process backend heals in place — it tears the pool down, re-creates
and re-ships the shared-memory base table under a fresh sweep token, and
re-submits *only the chunks whose results were not yet merged*, with
exponential backoff between rebuilds (a :class:`~repro.core.checkpoint.
RetryPolicy` over ``BrokenExecutor``).  Chunk results merge in fixed
chunk order regardless of which pool produced them, so a healed layer is
bit-identical to an uncrashed one; the only trace is in the sanctioned
gauges ``pool_rebuilds`` / ``chunks_retried`` (and extra transport
volume for the re-shipped chunks, already excluded from parity like all
``tasks_shipped``/``bytes_shipped`` accounting).  After
``max_pool_rebuilds`` consecutive rebuilds of one layer the backend
raises :class:`~repro.errors.ExecutorBrokenError`; the engine stamps it
with the last committed checkpoint path so a retry resumes at the layer
boundary.

Cache lookups stay coordinator-only: workers never see a
:class:`~repro.core.cache.ResultCache`, so disk stores are not written
from multiple processes.

Lifecycle: passing a backend *name* to
:class:`~repro.core.engine.EngineConfig` makes the engine create the
backend for one sweep and close it afterwards.  Passing an *instance*
leaves ownership with the caller (``begin_sweep``/``end_sweep`` still
run per sweep) so one pool can serve many sweeps — a window sweep's
inner FS* solves, or a whole :func:`~repro.core.cache.optimize_many`
batch.  Pools are created lazily, on the first layer that actually has
more than one chunk; ``jobs=1`` runs (and tiny sweeps) never pay pool
startup.
"""

from __future__ import annotations

import abc
import atexit
import os
import signal
import threading
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Sequence,
    Tuple, Type, Union,
)

import numpy as np

from .._bitops import bits_of
from ..analysis.counters import OperationCounters
from ..errors import ExecutorBrokenError, OrderingError
from .checkpoint import RetryPolicy, Skeleton
from .frontier import (
    BaseOverlay, PackedFrontier, PackedSlice, batch_sweep_chunk,
)
from .spec import FSState, ReductionRule

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..observability import Profiler
    from .budget import Budget
    from .checkpoint import FaultInjector

KernelFn = Callable[..., FSState]
Entry = Union[FSState, Skeleton]
"""A frontier entry: a full state, or a ``(pi, mincost)`` skeleton under
the mincost-only frontier policy."""

PreviousLayer = Any
"""The finished previous layer a chunk reads: a
:class:`~repro.core.frontier.FrontierStore` (what the engine hands the
backends), a plain ``mask -> entry`` dict (direct callers, tests), or a
worker-side :class:`~repro.core.frontier.BaseOverlay`.  Chunk code only
relies on ``.get(mask)``; the batch fast path additionally probes for the
packed store's ``prev_data``/``batchable``."""

# Flat per-entry overhead charged by the shipping-volume estimate (dict
# slot + dataclass header); deliberately a round constant so the
# ``bytes_shipped`` tally is deterministic across interpreter builds.
_ENTRY_OVERHEAD_BYTES = 64
_SKELETON_BYTES = 32

_WATCHER_POLL_SECONDS = 0.05


def _phase(profiler: Optional["Profiler"], name: str):
    return profiler.phase(name) if profiler is not None else nullcontext()


# ----------------------------------------------------------------------
# the unit of work: chunk in, chunk result out
# ----------------------------------------------------------------------

@dataclass
class ChunkResult:
    """What one executed chunk reports back to the coordinator.

    The engine merges these strictly in chunk order — entries are keyed
    by disjoint masks and counter merge order is fixed, so the outcome is
    independent of scheduling (threads, processes, or inline).
    """

    index: int = 0
    """Position of the chunk within its layer's chunk list."""

    entries: Dict[int, Entry] = field(default_factory=dict)
    """Finished entries keyed by mask (the scalar path's output).  Empty
    when the chunk ran the packed batch path — see :attr:`packed`."""

    packed: Optional[PackedSlice] = None
    """Finished entries as contiguous packed columns (the batch path's
    output; also how process workers ship results back without pickling
    per-entry dataclasses).  ``entries`` and ``packed`` never overlap;
    the engine's store absorbs whichever is present."""

    mincost: Dict[int, int] = field(default_factory=dict)
    best_last: Dict[int, int] = field(default_factory=dict)
    level_cost: Dict[Tuple[int, int], int] = field(default_factory=dict)
    processed: int = 0
    counters: OperationCounters = field(default_factory=OperationCounters)

    cancelled: bool = False
    """True when the executing worker observed the mirrored cancellation
    event and stopped early; the engine discards the whole layer."""


def split_chunks(items: Sequence[int], jobs: int) -> List[Sequence[int]]:
    """Contiguous, deterministic near-equal split of a layer's masks."""
    jobs = min(jobs, len(items))
    out: List[Sequence[int]] = []
    start = 0
    for j in range(jobs):
        stop = start + (len(items) - start) // (jobs - j)
        out.append(items[start:stop])
        start = stop
    return [chunk for chunk in out if chunk]


def sweep_chunk(
    masks: Sequence[int],
    previous: PreviousLayer,
    base: FSState,
    kernel: KernelFn,
    rule: ReductionRule,
    retain_full: bool,
    counters: OperationCounters,
    should_stop: Optional[Callable[[], bool]] = None,
    kernel_name: Optional[str] = None,
) -> ChunkResult:
    """Finalize a slice of one layer (runs wherever the backend says).

    Reads ``previous`` without mutating it; writes only into its own
    result, which the coordinator merges in deterministic order.  This
    routine is the bit-identity anchor: every backend routes every chunk
    through it, so where a chunk ran can never change what it computed.

    When ``kernel_name`` says the built-in ``numpy`` kernel is running
    and ``previous`` is a batchable packed store, the chunk takes the
    whole-layer batch path (:func:`repro.core.frontier.batch_sweep_chunk`)
    — same arithmetic, same counters, no per-subset Python objects — and
    returns its entries as a packed slice.  Every other combination runs
    the scalar per-candidate loop below.

    ``should_stop`` (the process workers' view of the mirrored
    cancellation event) is polled between masks; a stopped chunk returns
    with ``cancelled=True`` and whatever masks it had not reached simply
    absent.
    """
    if kernel_name == "numpy":
        batch = batch_sweep_chunk(
            masks, previous, base, rule, retain_full, counters, should_stop
        )
        if batch is not None:
            store, mincost, best_last, level_cost, processed, cancelled = batch
            return ChunkResult(
                packed=store.to_slice() if len(store) else None,
                mincost=mincost,
                best_last=best_last,
                level_cost=level_cost,
                processed=processed,
                counters=counters,
                cancelled=cancelled,
            )
    out = ChunkResult(counters=counters)
    for mask in masks:
        if should_stop is not None and should_stop():
            out.cancelled = True
            break
        best: Optional[FSState] = None
        best_i = -1
        for i in bits_of(mask):
            entry = previous.get(mask & ~(1 << i))
            if entry is None:
                continue  # infeasible predecessor under a subset filter
            prev_state = materialize_entry(base, entry, kernel, rule, counters)
            candidate = kernel(prev_state, i, rule, counters)
            out.level_cost[(prev_state.mask, i)] = (
                candidate.mincost - prev_state.mincost
            )
            if best is None or candidate.mincost < best.mincost:
                best = candidate
                best_i = i
        if best is None:
            raise OrderingError(
                f"no feasible chain reaches subset {mask:#x}"
            )
        out.entries[mask] = (
            best if retain_full else Skeleton(pi=best.pi, mincost=best.mincost)
        )
        out.mincost[mask] = best.mincost
        out.best_last[mask] = best_i
        out.processed += 1
        counters.subsets_processed += 1
    return out


def materialize_entry(
    base: FSState,
    entry: Entry,
    kernel: KernelFn,
    rule: ReductionRule,
    counters: OperationCounters,
) -> FSState:
    """Turn a frontier entry back into a full state.

    For a skeleton this replays its chain from ``base``.  By Lemma 3 the
    subfunction partition at every step depends only on the subset, so
    the rebuilt state has the same mincost (asserted) and the same level
    costs as the one the sweep measured.  The replay work is tallied
    under ``extra`` counters so the paper-facing totals (``table_cells``
    == ``n * 3^{n-1}`` for a full FS run) stay exact.
    """
    if isinstance(entry, FSState):
        return entry
    scratch = OperationCounters()
    state = base
    for var in entry.pi[len(base.pi):]:
        state = kernel(state, var, rule, scratch)
    assert state.mincost == entry.mincost, "replayed chain must reproduce mincost"
    counters.add_extra("recompute_compactions", scratch.compactions)
    counters.add_extra("recompute_cells", scratch.table_cells)
    return state


# ----------------------------------------------------------------------
# backend protocol + registry
# ----------------------------------------------------------------------

@dataclass
class SweepContext:
    """Everything a backend needs to know about the sweep it executes.

    ``counters`` is the *coordinator's* tally — backends only write
    transport accounting (``tasks_shipped`` / ``bytes_shipped``) into
    it; all kernel work lands in per-chunk counters the engine merges."""

    base: FSState
    kernel: str
    rule: ReductionRule
    jobs: int
    counters: OperationCounters
    budget: Optional["Budget"] = None
    profiler: Optional["Profiler"] = None
    fault_injector: Optional["FaultInjector"] = None
    """Deterministic fault injection (tests/CI): the process backend
    consults :meth:`~repro.core.checkpoint.FaultInjector.take_worker_kill`
    while building each chunk's task and flags the doomed envelope.
    In-process backends ignore it — they have no worker to lose."""


class ExecutorBackend(abc.ABC):
    """Where the engine's layer chunks execute.

    Subclass and :func:`register_backend` to plug in new substrates (a
    cluster scheduler, a GPU queue, ...); the engine only ever calls the
    four lifecycle methods below.  A backend instance serves one sweep
    at a time (``begin_sweep``/``end_sweep`` bracket each sweep) but may
    serve many sweeps over its life; :meth:`close` releases long-lived
    resources such as worker pools.

    One-sweep-at-a-time is *enforced*, not assumed: ``begin_sweep``
    takes an internal mutex that ``end_sweep`` releases, so when several
    threads share one warm instance (the :mod:`repro.serve` daemon's
    request workers, a caller-owned pool handed to concurrent solves)
    their sweeps serialize instead of silently overwriting each other's
    context mid-layer.  A *nested* sweep on the thread that already owns
    the instance raises :class:`~repro.errors.OrderingError` — that is a
    programming error, and blocking on it would deadlock.
    """

    name: str = "custom"

    def __init__(self) -> None:
        self._context: Optional[SweepContext] = None
        self._kernel: Optional[KernelFn] = None
        self._sweep_lock = threading.Lock()
        self._sweep_owner: Optional[int] = None

    def begin_sweep(self, context: SweepContext) -> None:
        """Adopt a sweep (blocking while another thread's sweep runs).
        Resolves the kernel once so inline execution and worker dispatch
        agree on the implementation."""
        from .engine import get_kernel  # deferred: engine imports this module

        kernel = get_kernel(context.kernel)  # validate before locking
        if self._sweep_owner == threading.get_ident():
            raise OrderingError(
                f"backend {self.name!r} is already mid-sweep on this "
                "thread; a sweep cannot nest another sweep on the same "
                "backend instance — pass a separate backend (or a name, "
                "which creates a fresh one) for the inner run"
            )
        self._sweep_lock.acquire()
        self._sweep_owner = threading.get_ident()
        self._context = context
        self._kernel = kernel

    @abc.abstractmethod
    def run_layer(
        self,
        layer: int,
        chunks: Sequence[Sequence[int]],
        previous: PreviousLayer,
        retain_full: bool,
    ) -> List[ChunkResult]:
        """Execute one layer's chunks; return results in chunk order."""

    def end_sweep(self) -> None:
        """Release per-sweep resources (shared memory, watcher threads);
        the backend stays usable for the next ``begin_sweep``.  Safe to
        call without an open sweep (``close`` paths do): only the thread
        that owns the sweep releases the mutex."""
        self._context = None
        self._kernel = None
        if self._sweep_owner == threading.get_ident():
            self._sweep_owner = None
            self._sweep_lock.release()

    def close(self) -> None:
        """Release everything, worker pools included."""

    def healthy(self) -> bool:
        """Liveness probe for supervisors (the serve daemon's ``health``
        op): ``False`` when the backend's execution substrate is known
        broken — a dead process pool — and the next sweep would have to
        heal or fail.  In-process backends are always healthy, and so is
        a backend whose pool has not been created yet."""
        return True

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # Shared by serial execution and every backend's single-chunk
    # fast path: same fresh-counters-per-chunk structure as the pooled
    # paths, so where a chunk ran never shows in the numbers.
    def _run_inline(
        self,
        chunks: Sequence[Sequence[int]],
        previous: PreviousLayer,
        retain_full: bool,
    ) -> List[ChunkResult]:
        context, kernel = self._context, self._kernel
        assert context is not None and kernel is not None, (
            "run_layer called outside begin_sweep/end_sweep"
        )
        results: List[ChunkResult] = []
        for index, chunk in enumerate(chunks):
            part = sweep_chunk(
                chunk, previous, context.base, kernel, context.rule,
                retain_full, OperationCounters(),
                kernel_name=context.kernel,
            )
            part.index = index
            results.append(part)
        return results


_BACKENDS: Dict[str, Type[ExecutorBackend]] = {}


def register_backend(name: str) -> Callable[[Type[ExecutorBackend]], Type[ExecutorBackend]]:
    """Class decorator registering a backend under ``name``.

    Registered names become valid for ``EngineConfig(backend=...)`` and
    the CLI ``--backend`` flag, mirroring the kernel registry."""

    def decorate(cls: Type[ExecutorBackend]) -> Type[ExecutorBackend]:
        _BACKENDS[name] = cls
        return cls

    return decorate


def get_backend(name: str) -> Type[ExecutorBackend]:
    """Resolve a registered backend class; ``ValueError`` on unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    """Registered backend names, sorted (for CLI choices and errors)."""
    return sorted(_BACKENDS)


def create_backend(
    name: str,
    jobs: Optional[int] = None,
    max_pool_rebuilds: Optional[int] = None,
) -> ExecutorBackend:
    """Instantiate a registered backend (``jobs`` caps its pool width;
    defaults to each sweep's ``EngineConfig.jobs``).  ``max_pool_rebuilds``
    caps the process backend's self-healing budget; it is forwarded only
    when set, so registered backends that predate the knob keep working.
    """
    kwargs: Dict[str, Any] = {"jobs": jobs}
    if max_pool_rebuilds is not None:
        kwargs["max_pool_rebuilds"] = max_pool_rebuilds
    return get_backend(name)(**kwargs)


def resolve_backend(
    spec: Union[str, ExecutorBackend],
    max_pool_rebuilds: Optional[int] = None,
) -> Tuple[ExecutorBackend, bool]:
    """``(backend, engine_owned)`` for an ``EngineConfig.backend`` value.

    A string creates a fresh engine-owned backend (closed after the
    sweep); an instance stays caller-owned (only ``begin_sweep`` /
    ``end_sweep`` run), which is how one pool serves many sweeps — and
    how it keeps whatever ``max_pool_rebuilds`` its creator configured.
    """
    if isinstance(spec, ExecutorBackend):
        return spec, False
    return create_backend(spec, max_pool_rebuilds=max_pool_rebuilds), True


@contextmanager
def shared_backend(config: Any) -> Iterator[Any]:
    """Pin ``config.backend`` to one live instance for a whole block.

    Entry points that run *many* sweeps per call (a window sweep's inner
    FS* solves, a fallback ladder) use this so a string backend spec
    costs one pool, not one pool per sweep.  Yields ``config`` itself
    when it is ``None`` or already carries an instance.

    ``close()`` can itself fail when the pool died inside the block.
    When the body is already unwinding an exception, a close-time
    failure is swallowed so it can never mask the original error (the
    broken pool is being discarded either way); a close failure on a
    clean exit still propagates.
    """
    if config is None or isinstance(config.backend, ExecutorBackend):
        yield config
        return
    backend = create_backend(
        config.backend,
        max_pool_rebuilds=getattr(config, "max_pool_rebuilds", None),
    )
    try:
        yield replace(config, backend=backend)
    except BaseException:
        try:
            backend.close()
        except Exception:
            pass
        raise
    else:
        backend.close()


# ----------------------------------------------------------------------
# serial + thread backends
# ----------------------------------------------------------------------

@register_backend("serial")
class SerialBackend(ExecutorBackend):
    """Chunks run inline on the coordinator — the reference executor."""

    name = "serial"

    def __init__(
        self,
        jobs: Optional[int] = None,
        max_pool_rebuilds: Optional[int] = None,
    ) -> None:
        super().__init__()
        # Both accepted for interface symmetry; neither applies inline.
        self._jobs = jobs
        self._max_pool_rebuilds = max_pool_rebuilds

    def run_layer(
        self,
        layer: int,
        chunks: Sequence[Sequence[int]],
        previous: PreviousLayer,
        retain_full: bool,
    ) -> List[ChunkResult]:
        return self._run_inline(chunks, previous, retain_full)


@register_backend("thread")
class ThreadBackend(ExecutorBackend):
    """Chunks fan out over a lazily created thread pool.

    The pool is created on the first layer that has more than one chunk
    (``jobs=1`` sweeps never pay pool startup) and persists across
    sweeps until :meth:`close`.  Workers share the coordinator's memory,
    so nothing is shipped and no transport counters are tallied.
    """

    name = "thread"

    def __init__(
        self,
        jobs: Optional[int] = None,
        max_pool_rebuilds: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._jobs = jobs
        # Threads cannot be SIGKILLed out from under the pool; accepted
        # for interface symmetry only.
        self._max_pool_rebuilds = max_pool_rebuilds
        self._pool: Optional[Any] = None

    def run_layer(
        self,
        layer: int,
        chunks: Sequence[Sequence[int]],
        previous: PreviousLayer,
        retain_full: bool,
    ) -> List[ChunkResult]:
        if len(chunks) <= 1:
            return self._run_inline(chunks, previous, retain_full)
        context, kernel = self._context, self._kernel
        assert context is not None and kernel is not None
        pool = self._ensure_pool(context)
        futures = [
            pool.submit(
                sweep_chunk, chunk, previous, context.base, kernel,
                context.rule, retain_full, OperationCounters(),
                kernel_name=context.kernel,
            )
            for chunk in chunks
        ]
        results: List[ChunkResult] = []
        for index, future in enumerate(futures):
            part = future.result()
            part.index = index
            results.append(part)
        return results

    def _ensure_pool(self, context: SweepContext) -> Any:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self._jobs or context.jobs
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------

@dataclass
class ChunkTask:
    """Picklable envelope carrying one chunk to a worker process.

    The base table travels *once per sweep* through shared memory
    (``shm_name`` + ``base_spec`` let every worker rebuild the base
    state and cache it under ``token``); the task itself carries only
    the chunk's masks and the predecessor entries those masks actually
    read — full states under the FULL frontier policy, ``(pi, mincost)``
    skeletons under MINCOST_ONLY (workers replay them from the shared
    base exactly as the in-process backends do, so the ``recompute_*``
    counters stay bit-identical).

    With a packed frontier store the predecessors travel as one
    :class:`~repro.core.frontier.PackedSlice` (:attr:`packed`) instead of
    a pickled dict of dataclasses — flat byte columns at the layer's
    narrow table width — which is what shrinks the ``bytes_shipped``
    tally; :attr:`entries` is then empty.
    """

    token: str
    shm_name: str
    base_spec: Dict[str, Any]
    kernel: str
    rule_value: str
    layer: int
    index: int
    masks: Tuple[int, ...]
    entries: Dict[int, Entry]
    retain_full: bool
    payload_bytes: int = 0
    packed: Optional[PackedSlice] = None

    kill_self: Optional[str] = None
    """Injected process-level fault (tests/CI only): ``"before"`` makes
    the executing worker SIGKILL itself as the task starts, ``"during"``
    about halfway through the chunk's masks.  Set by the coordinator
    from :class:`~repro.core.checkpoint.FaultInjector.take_worker_kill`,
    which consumes the kill *before* shipping — the healed pool's
    re-submission of the same chunk carries ``None``."""


# Worker-process globals (populated by the pool initializer and the
# first task of each sweep; one sweep's base is cached per worker).
_WORKER_CANCEL: Optional[Any] = None
_WORKER_SWEEP: Optional[Tuple[str, Any, FSState, KernelFn, ReductionRule]] = None


def _worker_initializer(cancel_event: Any) -> None:
    """Runs once in every spawned worker: keep Ctrl-C cooperative.

    SIGINT is ignored so a terminal interrupt hits only the coordinator,
    whose :func:`~repro.core.budget.handle_signals` turns it into the
    cancellation event the workers actually poll."""
    global _WORKER_CANCEL
    _WORKER_CANCEL = cancel_event
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


def _worker_bind_sweep(task: ChunkTask) -> Tuple[str, Any, FSState, KernelFn, ReductionRule]:
    """Attach this worker to the task's sweep (cached per token).

    The previous sweep's shared-memory attachment is closed when a new
    token arrives, so long-lived pools (batch mode) hold at most one
    base mapping per worker.
    """
    global _WORKER_SWEEP
    if _WORKER_SWEEP is not None and _WORKER_SWEEP[0] == task.token:
        return _WORKER_SWEEP
    if _WORKER_SWEEP is not None:
        try:
            _WORKER_SWEEP[1].close()
        except OSError:  # pragma: no cover - already gone
            pass
        _WORKER_SWEEP = None
    from multiprocessing import shared_memory

    # The coordinator owns the segment's lifetime; a worker attachment
    # must not register it with the (shared) resource tracker, whose
    # name cache is a set — duplicate registrations collapse, so any
    # worker-side entry would unbalance the coordinator's own
    # register/unregister pair and spew KeyErrors at unlink time.
    try:
        shm = shared_memory.SharedMemory(name=task.shm_name, track=False)
    except TypeError:  # Python < 3.13: no track=; suppress registration
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            shm = shared_memory.SharedMemory(name=task.shm_name)
        finally:
            resource_tracker.register = original_register
    spec = task.base_spec
    cells = np.ndarray(
        (int(spec["cells"]),), dtype=np.dtype(spec["dtype"]), buffer=shm.buf
    )
    cells.flags.writeable = False
    base = FSState(
        n=int(spec["n"]),
        mask=int(spec["mask"]),
        pi=tuple(int(v) for v in spec["pi"]),
        mincost=int(spec["mincost"]),
        table=cells,
        num_terminals=int(spec["num_terminals"]),
        num_roots=int(spec["num_roots"]),
    )
    from .engine import get_kernel

    _WORKER_SWEEP = (
        task.token, shm, base, get_kernel(task.kernel),
        ReductionRule(task.rule_value),
    )
    return _WORKER_SWEEP


def _suicide_midway(
    total: int, inner: Optional[Callable[[], bool]]
) -> Callable[[], bool]:
    """``should_stop`` wrapper realizing the ``"during"`` kill phase.

    Both the scalar loop and the packed batch path poll ``should_stop``
    once per mask, so counting polls places the SIGKILL about halfway
    through the chunk's masks under either path — after real work has
    been done and really lost, which is the point of the phase.  A
    single-mask chunk has no halfway; there the kill fires on the first
    poll (degenerating to ``"before"``) rather than silently not at
    all."""
    seen = 0
    trigger = total // 2

    def poll() -> bool:
        nonlocal seen
        seen += 1
        if seen > trigger:
            os.kill(os.getpid(), signal.SIGKILL)
        return inner() if inner is not None else False

    return poll


def _run_chunk_task(task: ChunkTask) -> ChunkResult:
    """Worker entry point: execute one shipped chunk."""
    if task.kill_self == "before":
        # SIGKILL, not an exception: uncatchable, no cleanup, exactly
        # what the OOM killer delivers.  The pool goes BrokenProcessPool.
        os.kill(os.getpid(), signal.SIGKILL)
    _, _, base, kernel, rule = _worker_bind_sweep(task)
    previous: PreviousLayer
    if task.packed is not None:
        # The base entry never ships; it lives in shm.  Overlaying it on
        # the unpacked slice preserves the batch fast path worker-side.
        previous = BaseOverlay(base, PackedFrontier.from_slice(task.packed))
    else:
        previous = dict(task.entries)
        previous[0] = base
    cancel = _WORKER_CANCEL
    should_stop = cancel.is_set if cancel is not None else None
    if task.kill_self == "during":
        should_stop = _suicide_midway(len(task.masks), should_stop)
    out = sweep_chunk(
        task.masks, previous, base, kernel, rule, task.retain_full,
        OperationCounters(),
        should_stop=should_stop,
        kernel_name=task.kernel,
    )
    out.index = task.index
    return out


# Coordinator-side ledger of live shared-memory segments.  end_sweep is
# the normal unlink path (the engine reaches it through try/finally even
# when run_layer raises), but a coordinator that dies *between* creating
# the segment and that finally — or an embedder that never calls close()
# — would leak a /dev/shm file until reboot.  The atexit hook sweeps up
# whatever is still registered at interpreter shutdown.
_LIVE_SEGMENTS: Dict[str, Any] = {}
_LIVE_SEGMENTS_LOCK = threading.Lock()


def _register_segment(shm: Any) -> None:
    with _LIVE_SEGMENTS_LOCK:
        _LIVE_SEGMENTS[shm.name] = shm


def _forget_segment(shm: Any) -> None:
    with _LIVE_SEGMENTS_LOCK:
        _LIVE_SEGMENTS.pop(shm.name, None)


@atexit.register
def _unlink_leaked_segments() -> None:
    with _LIVE_SEGMENTS_LOCK:
        leaked = list(_LIVE_SEGMENTS.values())
        _LIVE_SEGMENTS.clear()
    for shm in leaked:
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - racing
            pass


@register_backend("process")
class ProcessBackend(ExecutorBackend):
    """Chunks fan out over a spawn-context process pool.

    Per sweep, the base table is copied once into a
    :class:`multiprocessing.shared_memory.SharedMemory` segment; per
    layer, each chunk ships only its masks plus the predecessor entries
    it reads (see :class:`ChunkTask`).  Shipping volume is tallied in
    the ``tasks_shipped`` / ``bytes_shipped`` extra counters and the
    submit/collect wall-clock under the ``ipc_submit`` / ``ipc_merge``
    profiler phases.

    The coordinator's budget is mirrored into the workers by a watcher
    thread that sets a shared :class:`multiprocessing.Event` when the
    budget is cancelled or its deadline expires; workers poll it between
    masks.  Single-chunk layers run inline — no pool, no shipping — so
    ``jobs=1`` process runs are exactly serial runs.

    Worker-side kernels resolve by *name*, so only kernels registered at
    import time (the built-ins, or plugins registered by an imported
    module) are reachable; in-process custom kernels need the ``thread``
    or ``serial`` backend.
    """

    name = "process"

    #: Default self-healing budget: two pool rebuilds per layer covers a
    #: transient kill plus one recurrence before the run is declared
    #: unrecoverable (``max_pool_rebuilds=0`` disables healing).
    DEFAULT_MAX_POOL_REBUILDS = 2
    #: First-rebuild backoff; doubles per rebuild (RetryPolicy semantics).
    REBUILD_BASE_DELAY = 0.05
    REBUILD_MAX_DELAY = 2.0

    def __init__(
        self,
        jobs: Optional[int] = None,
        max_pool_rebuilds: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._jobs = jobs
        self._max_pool_rebuilds = (
            self.DEFAULT_MAX_POOL_REBUILDS
            if max_pool_rebuilds is None
            else max_pool_rebuilds
        )
        self._pool: Optional[Any] = None
        self._cancel_event: Optional[Any] = None
        self._token_seq = 0
        self._sweep_token: Optional[str] = None
        self._shm: Optional[Any] = None
        self._base_spec: Optional[Dict[str, Any]] = None
        self._watcher: Optional[Tuple[threading.Thread, threading.Event]] = None

    # -- lifecycle -----------------------------------------------------

    def begin_sweep(self, context: SweepContext) -> None:
        super().begin_sweep(context)
        if self._cancel_event is not None:
            budget = context.budget
            if budget is None or not budget.cancelled():
                # A previous sweep's abort must not poison this one.
                self._cancel_event.clear()

    def end_sweep(self) -> None:
        # Nested finally, not straight-line code: whatever the watcher
        # join or the segment unlink throws, the shared memory must be
        # released and the sweep mutex must come back — the crash paths
        # are exactly where leaking either would hurt most.
        try:
            try:
                self._stop_watcher()
            finally:
                self._release_segment()
        finally:
            self._sweep_token = None
            self._base_spec = None
            super().end_sweep()

    def close(self) -> None:
        try:
            self.end_sweep()
        finally:
            self._teardown_pool(wait=True)
            self._cancel_event = None

    def healthy(self) -> bool:
        pool = self._pool
        if pool is None:
            return True  # lazily created; nothing to be broken yet
        return not bool(getattr(pool, "_broken", False))

    # -- execution -----------------------------------------------------

    def run_layer(
        self,
        layer: int,
        chunks: Sequence[Sequence[int]],
        previous: PreviousLayer,
        retain_full: bool,
    ) -> List[ChunkResult]:
        if len(chunks) <= 1:
            return self._run_inline(chunks, previous, retain_full)
        context = self._context
        assert context is not None
        # Results slot in by chunk index; a pool death between attempts
        # only ever refills the None slots, so the merged layer is the
        # same fixed-chunk-order list an uncrashed run produces.
        results: List[Optional[ChunkResult]] = [None] * len(chunks)
        policy = RetryPolicy(
            max_retries=self._max_pool_rebuilds,
            base_delay=self.REBUILD_BASE_DELAY,
            max_delay=self.REBUILD_MAX_DELAY,
            retryable=(BrokenExecutor,),
        )

        def heal(attempt: int, exc: BaseException) -> None:
            context.counters.add_extra("pool_rebuilds")
            context.counters.add_extra(
                "chunks_retried", sum(1 for part in results if part is None)
            )
            self._heal_pool()

        try:
            policy.run(
                lambda: self._attempt_layer(
                    layer, chunks, previous, retain_full, results
                ),
                describe=f"layer {layer} chunk fan-out",
                on_retry=heal,
            )
        except BrokenExecutor as exc:
            # Healing budget exhausted; drop the dead pool so a caller
            # holding this instance is not left pinning corpses, and
            # surface where the run stood.  The engine stamps the last
            # committed checkpoint path onto the error on its way out.
            self._teardown_pool(wait=True)
            raise ExecutorBrokenError(
                f"process pool died executing layer {layer} and stayed "
                f"broken after {policy.retries_used} rebuild(s); resume "
                "from the last committed checkpoint, or raise "
                "max_pool_rebuilds if the deaths are transient",
                layer=layer,
                pool_rebuilds=policy.retries_used,
            ) from exc
        assert all(part is not None for part in results)
        return results  # type: ignore[return-value]

    def _attempt_layer(
        self,
        layer: int,
        chunks: Sequence[Sequence[int]],
        previous: PreviousLayer,
        retain_full: bool,
        results: List[Optional[ChunkResult]],
    ) -> None:
        """One submit/collect pass over the chunks still missing results.

        Raises ``BrokenExecutor`` (letting the retry policy heal and
        call back) after harvesting every future that *did* complete —
        a dead worker invalidates only work the pool never finished, so
        completed chunks merge exactly once and are never re-run.
        """
        context = self._context
        assert context is not None
        self._ensure_pool(context)
        self._ensure_sweep_shipped(context)
        profiler = context.profiler
        pending = [i for i, part in enumerate(results) if part is None]
        futures: Dict[int, Any] = {}
        try:
            with _phase(profiler, "ipc_submit"):
                tasks = [
                    self._make_task(
                        layer, index, chunks[index], previous, retain_full
                    )
                    for index in pending
                ]
                for index, task in zip(pending, tasks):
                    futures[index] = self._pool.submit(_run_chunk_task, task)
                context.counters.add_extra("tasks_shipped", len(tasks))
                context.counters.add_extra(
                    "bytes_shipped", sum(t.payload_bytes for t in tasks)
                )
            with _phase(profiler, "ipc_merge"):
                for index in pending:
                    results[index] = futures[index].result()
        except BrokenExecutor:
            for index, future in futures.items():
                if results[index] is not None or not future.done():
                    continue
                try:
                    results[index] = future.result()
                except BaseException:
                    pass  # this chunk died with the pool; retry covers it
            raise

    def _make_task(
        self,
        layer: int,
        index: int,
        chunk: Sequence[int],
        previous: PreviousLayer,
        retain_full: bool,
    ) -> ChunkTask:
        context = self._context
        assert context is not None and self._base_spec is not None
        assert self._sweep_token is not None and self._shm is not None
        # Predecessor masks this chunk actually reads, in first-use order
        # (mask 0 never ships; the base lives in shared memory).
        order: List[int] = []
        seen = set()
        for mask in chunk:
            for i in bits_of(mask):
                pmask = mask & ~(1 << i)
                if pmask == 0 or pmask in seen or pmask not in previous:
                    continue
                seen.add(pmask)
                order.append(pmask)
        packed: Optional[PackedSlice] = None
        needed: Dict[int, Entry] = {}
        payload = len(chunk) * 8
        ship = getattr(previous, "ship_slice", None)
        if ship is not None:
            packed = ship(order)
        if packed is not None:
            # Packed shipping: the payload is the slice's exact byte
            # size — this is the bytes_shipped reduction.
            payload += packed.nbytes
        else:
            for pmask in order:
                entry = previous.get(pmask)
                needed[pmask] = entry
                if isinstance(entry, FSState):
                    payload += int(entry.table.nbytes) + _ENTRY_OVERHEAD_BYTES
                else:
                    payload += _SKELETON_BYTES
        kill_self: Optional[str] = None
        if context.fault_injector is not None:
            kill_self = context.fault_injector.take_worker_kill(layer, index)
        return ChunkTask(
            token=self._sweep_token,
            shm_name=self._shm.name,
            base_spec=self._base_spec,
            kernel=context.kernel,
            rule_value=context.rule.value,
            layer=layer,
            index=index,
            masks=tuple(chunk),
            entries=needed,
            retain_full=retain_full,
            payload_bytes=payload,
            packed=packed,
            kill_self=kill_self,
        )

    # -- plumbing ------------------------------------------------------

    def _ensure_pool(self, context: SweepContext) -> None:
        if self._pool is not None:
            return
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        mp = multiprocessing.get_context("spawn")
        if self._cancel_event is None:
            # Survives pool rebuilds: the budget watcher thread holds a
            # reference to this event, and a healed pool's workers must
            # see the same cancellation state the broken pool's did.
            self._cancel_event = mp.Event()
        self._pool = ProcessPoolExecutor(
            max_workers=self._jobs or context.jobs,
            mp_context=mp,
            initializer=_worker_initializer,
            initargs=(self._cancel_event,),
        )

    def _teardown_pool(self, wait: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def _heal_pool(self) -> None:
        """Replace a broken pool (and its shipped sweep) in place.

        The fresh pool's workers know nothing, so the base table ships
        again under a *new* token — the old token's worker-side cache
        entries die with the old workers, and a straggler from the old
        pool could never cross-talk with the new sweep state.  The
        budget watcher (if any) keeps running: it only touches the
        cancellation event, which survives the rebuild.
        """
        self._teardown_pool(wait=True)
        self._release_segment()
        self._sweep_token = None
        self._base_spec = None

    def _release_segment(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        _forget_segment(shm)
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass

    def _ensure_sweep_shipped(self, context: SweepContext) -> None:
        if self._sweep_token is not None:
            return
        from multiprocessing import shared_memory

        self._token_seq += 1
        self._sweep_token = f"{os.getpid()}-{id(self):x}-{self._token_seq}"
        table = np.ascontiguousarray(context.base.table)
        shm = shared_memory.SharedMemory(create=True, size=max(1, table.nbytes))
        _register_segment(shm)
        view = np.ndarray(table.shape, dtype=table.dtype, buffer=shm.buf)
        np.copyto(view, table)
        self._shm = shm
        base = context.base
        self._base_spec = {
            "n": base.n,
            "mask": base.mask,
            "pi": [int(v) for v in base.pi],
            "mincost": base.mincost,
            "num_terminals": base.num_terminals,
            "num_roots": base.num_roots,
            "cells": int(table.shape[0]),
            "dtype": str(table.dtype),
        }
        context.counters.add_extra("bytes_shipped", int(table.nbytes))
        if context.budget is not None:
            self._start_watcher(context.budget)

    def _start_watcher(self, budget: "Budget") -> None:
        if self._watcher is not None or self._cancel_event is None:
            return
        stop = threading.Event()
        cancel_event = self._cancel_event

        def watch() -> None:
            while not stop.wait(_WATCHER_POLL_SECONDS):
                if budget.cancelled():
                    cancel_event.set()
                    return
                remaining = budget.remaining()
                if remaining is not None and remaining <= 0:
                    cancel_event.set()
                    return

        thread = threading.Thread(
            target=watch, name="repro-budget-mirror", daemon=True
        )
        thread.start()
        self._watcher = (thread, stop)

    def _stop_watcher(self) -> None:
        if self._watcher is None:
            return
        thread, stop = self._watcher
        stop.set()
        thread.join(timeout=1.0)
        self._watcher = None
