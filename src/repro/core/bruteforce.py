"""Brute-force optimal ordering search: the paper's ``O*(n! 2^n)`` baseline.

Evaluates every one of the ``n!`` orderings with an exact per-ordering size
computation.  This is the trivial algorithm the FS dynamic program improves
on; it doubles as ground truth for the test suite on small ``n``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.counters import OperationCounters
from ..truth_table import TruthTable
from .compaction import compact
from .fs import initial_state
from .spec import ReductionRule


@dataclass
class BruteForceResult:
    """Outcome of the exhaustive ordering search."""

    order: Tuple[int, ...]
    """A minimizing ordering (read-first to read-last; lexicographically
    first among the optima)."""

    mincost: int
    """Internal node count of the minimum diagram."""

    num_terminals: int
    orderings_evaluated: int
    counters: OperationCounters

    all_optimal: List[Tuple[int, ...]]
    """Every ordering achieving the minimum."""

    @property
    def size(self) -> int:
        return self.mincost + self.num_terminals


def brute_force_optimal(
    table: TruthTable,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    collect_all: bool = True,
) -> BruteForceResult:
    """Try all ``n!`` orderings; return the best (and optionally all ties).

    Each ordering is costed with the compaction chain (``O*(2^n)`` cells),
    reproducing the trivial ``O*(n! 2^n)`` bound the paper quotes.
    """
    n = table.n
    if counters is None:
        counters = OperationCounters()
    state0 = initial_state(table, rule)

    best_cost: Optional[int] = None
    best_order: Optional[Tuple[int, ...]] = None
    optima: List[Tuple[int, ...]] = []
    evaluated = 0

    for perm in itertools.permutations(range(n)):
        state = state0
        for var in reversed(perm):  # chain consumes read-last first
            state = compact(state, var, rule, counters)
        evaluated += 1
        cost = state.mincost
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_order = perm
            optima = [perm]
        elif collect_all and cost == best_cost:
            optima.append(perm)

    assert best_order is not None and best_cost is not None
    return BruteForceResult(
        order=best_order,
        mincost=best_cost,
        num_terminals=state0.num_terminals,
        orderings_evaluated=evaluated,
        counters=counters,
        all_optimal=optima if collect_all else [best_order],
    )


def brute_force_operation_bound(n: int) -> int:
    """The paper's trivial operation bound ``n! * 2^n`` (up to polynomials)."""
    return math.factorial(n) * (1 << n)
