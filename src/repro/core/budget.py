"""Resource-governed execution: budgets, cancellation, degradation.

The FS dynamic program is ``O*(3^n)`` in both time and space (Theorem 5),
so a production deployment *will* meet inputs that cannot finish exactly
inside a request's time or memory envelope.  Before this module such a
run either ground on forever or died with a raw ``MemoryError``.  Now
every engine-backed entry point can be handed a :class:`Budget`:

* **Wall-clock deadline** — seconds allowed from the moment the budget
  is :meth:`armed <Budget.arm>` (the first governed operation arms it
  automatically).
* **Frontier caps** — maximum retained DP-frontier entries and/or bytes,
  the quantity that actually exhausts memory (``C(n, n/2)`` states of
  ``2^{n/2}`` cells at the waist).
* **Cooperative cancellation** — a shared :class:`threading.Event`; set
  it from a signal handler (see :func:`handle_signals`) or another
  thread and the run stops at its next boundary.

The engine (:func:`repro.core.engine.run_layered_sweep`) checks the
budget at every **layer boundary** — never mid-kernel — so the abort
point is deterministic for any ``jobs`` value and the state at the raise
is exactly a finished layer.  With ``checkpoint_dir`` set, that layer is
already durably checkpointed when :class:`~repro.errors.BudgetExceeded`
propagates, and the exception names the file: a later resume with a
larger (or no) budget continues **bit-identically** in results and
counters, reusing the crash-safety machinery unchanged.

On top of the budget sits a **degradation ladder**,
:func:`run_ladder` (the deprecated :func:`optimize_with_fallback` shim
delegates here): try the exact DP, and when its share of
the budget is exhausted step down to the Lemma-8 exact-window sweep,
then to Rudell sifting — each rung cheaper and less exact than the one
above, the last rung always completing (it honors cancellation but no
deadline) so a governed call always yields *an* ordering.  The returned
:class:`FallbackResult` is explicitly tagged with ``exact`` and the
``rung`` that produced it; sifting-style reordering and cheap heuristics
as the fallback tier follow the hybrid-reordering literature (Popel's
information-measure reordering, Grumberg et al.'s learned orderings).

Observability: budget checks run under the ``budget_check`` profiler
phase, an abort tallies the ``budget_aborts`` extra counter, a rung
step-down tallies ``fallback_used``, and durable-I/O retries (see
:class:`~repro.core.checkpoint.RetryPolicy`) tally ``retries``.
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union,
)

from ..analysis.counters import OperationCounters
from ..errors import BudgetExceeded, OrderingError
from ..observability import Profiler
from .checkpoint import RetryPolicy  # re-exported: the governance toolkit
from .spec import ReductionRule

__all__ = [
    "Budget",
    "BudgetExceeded",
    "DEFAULT_LADDER",
    "FallbackResult",
    "RetryPolicy",
    "RungAttempt",
    "handle_signals",
    "optimize_with_fallback",
    "parse_ladder",
    "run_ladder",
]


class Budget:
    """Resource envelope for one governed run (or a whole batch item).

    All limits are optional; a default-constructed budget never trips on
    its own and only reacts to :attr:`cancel`.  One budget may span many
    sweeps (a window sweep runs dozens of FS* solves; a ladder runs
    several rungs): the deadline clock starts at the first :meth:`arm`
    and is shared by everything downstream.

    Parameters
    ----------
    deadline:
        Wall-clock seconds allowed from :meth:`arm`; ``None`` = no limit.
    max_frontier_entries / max_frontier_bytes:
        Caps on the retained DP frontier, checked after each layer
        commits (so the offending layer is already checkpointed and a
        resume under a bigger budget loses nothing).  The byte figure is
        whatever the configured frontier store reports
        (:meth:`~repro.core.frontier.FrontierStore.nbytes`): exact
        column-payload bytes under ``frontier_store="packed"``, the
        documented flat-overhead estimate under ``"dict"`` — so the same
        cap may abort at different layers under different stores, each
        deterministically.
    cancel:
        Cooperative cancellation event; shared between a parent budget
        and every :meth:`subbudget`, and with :func:`handle_signals`.
    clock:
        Monotonic-seconds callable, injectable for deterministic tests.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_frontier_entries: Optional[int] = None,
        max_frontier_bytes: Optional[int] = None,
        cancel: Optional[threading.Event] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        if max_frontier_entries is not None and max_frontier_entries < 1:
            raise ValueError(
                f"max_frontier_entries must be >= 1, got {max_frontier_entries}"
            )
        if max_frontier_bytes is not None and max_frontier_bytes < 1:
            raise ValueError(
                f"max_frontier_bytes must be >= 1, got {max_frontier_bytes}"
            )
        self.deadline = deadline
        self.max_frontier_entries = max_frontier_entries
        self.max_frontier_bytes = max_frontier_bytes
        self.cancel = cancel if cancel is not None else threading.Event()
        self.clock = clock
        self._started_at: Optional[float] = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def arm(self) -> "Budget":
        """Start the deadline clock (idempotent); returns ``self``.

        Re-arming is a no-op by design (one budget legitimately spans
        many sweeps), but re-arming a budget whose deadline is *already
        exhausted* is almost always the daemon-reuse footgun: a budget
        object recycled across requests inherits the first request's
        clock, so every later request is born over budget.  That case
        emits a :class:`RuntimeWarning` — derive a fresh
        :meth:`subbudget` per request instead (``repro.serve`` does).
        """
        with self._lock:
            if self._started_at is None:
                self._started_at = self.clock()
                return self
        if (
            self.deadline is not None
            and self.elapsed() > self.deadline
        ):
            warnings.warn(
                f"re-arming an exhausted Budget (deadline {self.deadline:g}s, "
                f"elapsed {self.elapsed():.3f}s): the clock keeps its "
                "original start, so every run under this budget will abort "
                "immediately; derive a fresh subbudget() per request instead",
                RuntimeWarning,
                stacklevel=2,
            )
        return self

    def ensure_armed(self) -> "Budget":
        """Arm if not yet armed, silently.

        The engine and the multi-sweep entry points (window sweep, FS*)
        call this at every inner sweep purely to guarantee the clock is
        running; mid-run the deadline may legitimately already be
        exhausted (the very next :meth:`check` reports it), so this
        never warns.  External callers starting a *new* governed
        operation should call :meth:`arm`, which does.
        """
        with self._lock:
            if self._started_at is None:
                self._started_at = self.clock()
        return self

    @property
    def armed(self) -> bool:
        return self._started_at is not None

    def elapsed(self) -> float:
        """Seconds since :meth:`arm` (0.0 before arming)."""
        if self._started_at is None:
            return 0.0
        return self.clock() - self._started_at

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline (``None`` = unlimited, >= 0.0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def cancelled(self) -> bool:
        return self.cancel.is_set()

    def subbudget(self, deadline: Optional[float]) -> "Budget":
        """A child budget with its own deadline, sharing cancellation,
        the clock and the frontier caps (a ladder rung's share)."""
        return Budget(
            deadline=deadline,
            max_frontier_entries=self.max_frontier_entries,
            max_frontier_bytes=self.max_frontier_bytes,
            cancel=self.cancel,
            clock=self.clock,
        )

    # -- checks --------------------------------------------------------

    def exceeded_reason(
        self,
        frontier_entries: Optional[int] = None,
        frontier_bytes: Optional[int] = None,
    ) -> Optional[Tuple[str, str]]:
        """``(reason, detail)`` when a limit has tripped, else ``None``.

        Cancellation outranks the deadline, which outranks the frontier
        caps, so concurrent trips report deterministically.
        """
        if self.cancel.is_set():
            return "cancelled", "cancellation requested"
        if self.deadline is not None and self.elapsed() > self.deadline:
            return "deadline", (
                f"wall-clock budget of {self.deadline:g}s exhausted "
                f"after {self.elapsed():.3f}s"
            )
        if (
            self.max_frontier_entries is not None
            and frontier_entries is not None
            and frontier_entries > self.max_frontier_entries
        ):
            return "frontier_entries", (
                f"frontier holds {frontier_entries} states, cap "
                f"{self.max_frontier_entries}"
            )
        if (
            self.max_frontier_bytes is not None
            and frontier_bytes is not None
            and frontier_bytes > self.max_frontier_bytes
        ):
            return "frontier_bytes", (
                f"frontier holds {frontier_bytes} bytes, cap "
                f"{self.max_frontier_bytes}"
            )
        return None

    def check(
        self,
        counters: Optional[OperationCounters] = None,
        frontier_entries: Optional[int] = None,
        frontier_bytes: Optional[int] = None,
        layers_completed: Optional[int] = None,
        best_bound: Optional[int] = None,
        best_order: Optional[Tuple[int, ...]] = None,
        checkpoint_path: Optional[str] = None,
        where: str = "layer boundary",
    ) -> None:
        """Raise :class:`~repro.errors.BudgetExceeded` if a limit tripped.

        Callers pass whatever progress they can describe; it all lands on
        the exception so an operator (or the degradation ladder) can act
        on it — resume from ``checkpoint_path``, reuse ``best_order``,
        report ``best_bound``.  Tallies the ``budget_aborts`` extra
        counter exactly once per raise.
        """
        verdict = self.exceeded_reason(frontier_entries, frontier_bytes)
        if verdict is None:
            return
        reason, detail = verdict
        if counters is not None:
            counters.add_extra("budget_aborts")
        bits = [detail, f"at {where}"]
        if layers_completed is not None:
            bits.append(f"{layers_completed} layers completed")
        if best_bound is not None:
            bits.append(f"best-so-far bound {best_bound}")
        if checkpoint_path is not None:
            bits.append(f"last committed checkpoint {checkpoint_path}")
        raise BudgetExceeded(
            "; ".join(bits),
            reason=reason,
            elapsed_seconds=self.elapsed(),
            layers_completed=layers_completed,
            best_bound=best_bound,
            best_order=best_order,
            checkpoint_path=checkpoint_path,
            where=where,
        )


@contextmanager
def handle_signals(budget: Budget) -> Iterator[bool]:
    """Route SIGINT/SIGTERM into ``budget.cancel`` while the block runs.

    On the first signal the handler only sets the cancellation event:
    every governed sweep then stops at its next layer boundary — *after*
    that layer's checkpoint committed, so the final checkpoint is always
    flushed before the process winds down — and surfaces a
    :class:`~repro.errors.BudgetExceeded` with ``reason="cancelled"``
    instead of dying mid-write.  A second SIGINT falls back to Python's
    default ``KeyboardInterrupt`` so a hung run can still be killed.

    Yields ``True`` when the handlers were installed; ``False`` off the
    main thread, where CPython forbids ``signal.signal``.  The no-op
    path emits a :class:`RuntimeWarning` — an embedder calling this from
    a worker thread would otherwise run *ungoverned* without any sign of
    it.  Long-lived embeddings should route signals through
    ``loop.add_signal_handler`` into ``budget.cancel`` instead, which is
    what the :mod:`repro.serve` daemon does.
    """
    if threading.current_thread() is not threading.main_thread():
        warnings.warn(
            "handle_signals() is a no-op off the main thread: "
            "SIGINT/SIGTERM will NOT reach this budget's cancellation "
            "event; install from the main thread, or route signals via "
            "loop.add_signal_handler into budget.cancel (see repro.serve)",
            RuntimeWarning,
            stacklevel=3,
        )
        yield False
        return
    previous: Dict[int, Any] = {}

    def on_signal(signum: int, frame: Any) -> None:
        if budget.cancel.is_set() and signum == signal.SIGINT:
            raise KeyboardInterrupt
        budget.cancel.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, on_signal)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield True
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


# ----------------------------------------------------------------------
# the degradation ladder
# ----------------------------------------------------------------------

DEFAULT_LADDER: Tuple[str, ...] = ("fs", "window", "sift")
"""Exact DP -> exact-window sweep (Lemma 8) -> Rudell sifting."""


@dataclass
class RungAttempt:
    """One ladder rung's outcome (kept for postmortems/reporting)."""

    rung: str
    status: str
    """``"ok"`` or ``"budget_exceeded"``."""

    seconds: float
    detail: str = ""


@dataclass
class FallbackResult:
    """What :func:`run_ladder` returns: an ordering plus an honest
    statement of how good it is and what produced it."""

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    mincost: int
    """Internal nodes of the diagram under :attr:`order` — the true
    optimum iff :attr:`exact`, otherwise the achieved upper bound."""

    num_terminals: int
    exact: bool
    """True only when the exact DP rung finished inside its budget."""

    rung: str
    """Which ladder rung produced the ordering."""

    attempts: List[RungAttempt] = field(default_factory=list)
    """Every rung tried, in ladder order, with its outcome."""

    counters: OperationCounters = field(default_factory=OperationCounters)
    result: Any = None
    """The producing rung's native result object
    (:class:`~repro.core.fs.FSResult`,
    :class:`~repro.core.window.WindowResult` or
    :class:`~repro.portfolio.SearchResult` or
    :class:`~repro.portfolio.StrategyResult`)."""

    @property
    def size(self) -> int:
        """Total node count including terminals (Figure 1 convention)."""
        return self.mincost + self.num_terminals

    @property
    def from_cache(self) -> bool:
        return bool(getattr(self.result, "from_cache", False))


def _governed_size_fn(
    rule: ReductionRule,
    engine: str,
    counters: OperationCounters,
    budget: Budget,
):
    """Ordering-size oracle for the sifting rung: exact chain cost under
    ``rule`` (total nodes, terminals included, matching
    :func:`repro.truth_table.obdd_size`'s convention), with a budget
    check per evaluation so even the heuristic rung honors cancellation
    promptly."""
    from .engine import get_kernel
    from .fs import initial_state, terminal_values

    kernel = get_kernel(engine)

    def size_fn(table: Any, order: Sequence[int]) -> int:
        budget.check(counters=counters, where="sift evaluation")
        state = initial_state(table, rule)
        for var in reversed(list(order)):
            state = kernel(state, var, rule, counters)
        return state.mincost + len(terminal_values(table, rule))

    return size_fn


def run_ladder(
    table: Any,
    budget: Optional[Budget] = None,
    ladder: Sequence[str] = DEFAULT_LADDER,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    engine: str = "numpy",
    jobs: int = 1,
    backend: Any = "thread",
    cache: Optional[Any] = None,
    profiler: Optional[Profiler] = None,
    window_width: int = 3,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    frontier_store: Any = "dict",
    fallback_rungs: Union[str, Sequence[str], None] = None,
) -> FallbackResult:
    """Optimize under a budget, degrading through ``ladder`` as needed.

    Each rung receives an equal share of the *remaining* deadline (so a
    rung finishing early donates its slack to the rungs below); the
    **last** rung runs with no deadline — it still honors cancellation
    and can therefore always complete — which is what makes the ladder
    total: a governed call either returns an ordering or was explicitly
    cancelled.  Frontier caps apply to every rung (they bound memory, and
    a rung that cannot fit should step down, not thrash).

    Rungs:

    ``"fs"``
        The exact ``O*(3^n)`` DP (:func:`repro.core.fs.run_fs`); the only
        rung whose success tags the result ``exact=True``.  With
        ``checkpoint_dir`` its progress survives the abort, so a later
        retry under a bigger budget resumes rather than restarts.
    ``"window"``
        The Lemma-8 exact-window sweep
        (:func:`repro.core.window.window_sweep`) at ``window_width``:
        locally optimal, globally heuristic.
    ``"sift"``
        Rudell sifting (:func:`repro.bdd.reorder.sift`) scored by an
        exact chain-cost oracle under ``rule``.  Seeds from the best
        ordering a deeper rung found before its budget ran out (carried
        on ``BudgetExceeded.best_order``), so partial work is not lost.
    any registered strategy name
        Every strategy in the :mod:`repro.portfolio` registry (e.g.
        ``"sift_symmetric"``, ``"window4"``, ``"anneal"``, ``"entropy"``)
        is a valid rung: it runs under the rung's budget share and, if
        its share runs out, degrades to the next rung seeded with its
        best-so-far ordering.

    ``fallback_rungs`` is the new spelling of ``ladder`` (matching the
    ``repro.solve`` keyword): a comma-separated string or a sequence of
    rung names, parsed with :func:`parse_ladder`.  When given it takes
    precedence over ``ladder``.

    A rung below the first tallies the ``fallback_used`` extra counter.
    Raises :class:`~repro.errors.BudgetExceeded` only on cancellation
    (or if a caller-supplied ladder ends with a rung that itself runs
    out — e.g. a single-rung ladder).

    ``backend`` (a name or a live
    :class:`~repro.core.executor.ExecutorBackend`) selects where the
    ``fs`` and ``window`` rungs execute their layer chunks; it is
    resolved once so every rung shares a single worker pool.
    """
    if counters is None:
        counters = OperationCounters()
    if budget is None:
        budget = Budget()
    budget.arm()
    if fallback_rungs is not None:
        ladder = parse_ladder(fallback_rungs)
    ladder = tuple(ladder)
    if not ladder:
        raise ValueError("ladder must name at least one rung")
    known = set(_RUNG_RUNNERS) | set(_registered_strategy_names())
    unknown = [rung for rung in ladder if rung not in known]
    if unknown:
        raise ValueError(
            f"unknown ladder rung(s) {unknown}; expected a subset of "
            f"{sorted(known)}"
        )

    from .executor import resolve_backend  # deferred: engine-family import

    attempts: List[RungAttempt] = []
    seed_order: Optional[Tuple[int, ...]] = None
    last_error: Optional[BudgetExceeded] = None
    backend_obj, owns_backend = resolve_backend(backend)
    opts = {
        "rule": rule,
        "engine": engine,
        "jobs": jobs,
        "backend": backend_obj,
        "cache": cache,
        "profiler": profiler,
        "window_width": window_width,
        "checkpoint_dir": checkpoint_dir,
        "resume": resume,
        "frontier_store": frontier_store,
    }
    try:
        for index, rung in enumerate(ladder):
            # Only cancellation stops the ladder itself; an exhausted
            # deadline is precisely what the lower rungs exist for.
            if budget.cancelled():
                budget.check(counters=counters, where=f"ladder rung {rung!r}")
            rungs_left = len(ladder) - index
            remaining = budget.remaining()
            if index == len(ladder) - 1:
                share: Optional[float] = None  # the safety net always finishes
            elif remaining is None:
                share = None
            else:
                share = remaining / rungs_left
            sub = budget.subbudget(share)
            started = time.perf_counter()
            runner = _RUNG_RUNNERS.get(rung) or _make_strategy_rung(rung)
            try:
                result = runner(table, sub, counters, seed_order, opts)
            except BudgetExceeded as exc:
                attempts.append(RungAttempt(
                    rung=rung,
                    status="budget_exceeded",
                    seconds=time.perf_counter() - started,
                    detail=str(exc),
                ))
                if exc.reason == "cancelled":
                    exc.best_order = exc.best_order or seed_order
                    raise
                if exc.best_order is not None:
                    seed_order = tuple(exc.best_order)
                last_error = exc
                continue
            attempts.append(RungAttempt(
                rung=rung,
                status="ok",
                seconds=time.perf_counter() - started,
            ))
            if index > 0:
                counters.add_extra("fallback_used")
            result.attempts = attempts
            result.counters = counters
            return result
    finally:
        if owns_backend:
            backend_obj.close()
    assert last_error is not None
    last_error.best_order = last_error.best_order or seed_order
    raise last_error


def _run_rung_fs(
    table: Any,
    sub: Budget,
    counters: OperationCounters,
    seed_order: Optional[Tuple[int, ...]],
    opts: Dict[str, Any],
) -> FallbackResult:
    from .fs import run_fs

    result = run_fs(
        table,
        rule=opts["rule"],
        counters=counters,
        engine=opts["engine"],
        jobs=opts["jobs"],
        backend=opts["backend"],
        profiler=opts["profiler"],
        cache=opts["cache"],
        checkpoint_dir=opts["checkpoint_dir"],
        resume=opts["resume"],
        frontier_store=opts["frontier_store"],
        budget=sub,
    )
    return FallbackResult(
        n=result.n,
        rule=result.rule,
        order=result.order,
        mincost=result.mincost,
        num_terminals=result.num_terminals,
        exact=True,
        rung="fs",
        result=result,
    )


def _run_rung_window(
    table: Any,
    sub: Budget,
    counters: OperationCounters,
    seed_order: Optional[Tuple[int, ...]],
    opts: Dict[str, Any],
) -> FallbackResult:
    from .engine import EngineConfig
    from .fs import terminal_values
    from .window import window_sweep

    config = EngineConfig(
        kernel=opts["engine"],
        jobs=opts["jobs"],
        backend=opts["backend"],
        frontier_store=opts["frontier_store"],
        profiler=opts["profiler"],
        cache=opts["cache"],
        budget=sub,
    )
    result = window_sweep(
        table,
        initial_order=seed_order,
        width=min(opts["window_width"], table.n) if table.n >= 2 else 2,
        rule=opts["rule"],
        counters=counters,
        config=config,
    )
    return FallbackResult(
        n=table.n,
        rule=opts["rule"],
        order=result.order,
        mincost=result.size,
        num_terminals=len(terminal_values(table, opts["rule"])),
        exact=False,
        rung="window",
        result=result,
    )


def _run_rung_sift(
    table: Any,
    sub: Budget,
    counters: OperationCounters,
    seed_order: Optional[Tuple[int, ...]],
    opts: Dict[str, Any],
) -> FallbackResult:
    from ..portfolio import sift_search
    from .fs import terminal_values

    size_fn = _governed_size_fn(opts["rule"], opts["engine"], counters, sub)
    result = sift_search(table, initial_order=seed_order, size_fn=size_fn)
    num_terminals = len(terminal_values(table, opts["rule"]))
    return FallbackResult(
        n=table.n,
        rule=opts["rule"],
        order=result.order,
        mincost=result.size - num_terminals,
        num_terminals=num_terminals,
        exact=False,
        rung="sift",
        result=result,
    )


_RUNG_RUNNERS: Dict[str, Callable[..., FallbackResult]] = {
    "fs": _run_rung_fs,
    "window": _run_rung_window,
    "sift": _run_rung_sift,
}


def _registered_strategy_names() -> Tuple[str, ...]:
    from ..portfolio import available_strategies  # deferred: cycle

    return available_strategies()


def _make_strategy_rung(name: str) -> Callable[..., FallbackResult]:
    """Adapt a registered portfolio strategy into a ladder rung.

    A strategy that exhausts its budget share raises
    :class:`~repro.errors.BudgetExceeded` carrying its best-so-far
    ordering and size, so the ladder can seed the next rung with it —
    the same contract the built-in rungs honor."""

    def run(
        table: Any,
        sub: Budget,
        counters: OperationCounters,
        seed_order: Optional[Tuple[int, ...]],
        opts: Dict[str, Any],
    ) -> FallbackResult:
        from ..portfolio import run_strategy
        from .engine import EngineConfig

        config = EngineConfig(
            kernel=opts["engine"],
            jobs=opts["jobs"],
            backend=opts["backend"],
            frontier_store=opts["frontier_store"],
            profiler=opts["profiler"],
            cache=opts["cache"],
        )
        result = run_strategy(
            name,
            table,
            rule=opts["rule"],
            budget=sub,
            counters=counters,
            initial_order=seed_order,
            config=config,
        )
        if result.status != "ok":
            raise BudgetExceeded(
                f"strategy rung {name!r} exhausted its budget share",
                reason=result.budget_reason or "deadline",
                best_order=result.order,
                best_bound=result.size,
            )
        return FallbackResult(
            n=table.n,
            rule=opts["rule"],
            order=result.order,
            mincost=result.mincost,
            num_terminals=result.num_terminals,
            exact=False,
            rung=name,
            result=result,
        )

    return run


def parse_ladder(spec: Union[str, Sequence[str], None]) -> Tuple[str, ...]:
    """Parse a CLI-style ladder spec (``"fs,window,sift"``) or sequence.

    ``None`` yields :data:`DEFAULT_LADDER`; valid rungs are the built-in
    triple plus every registered :mod:`repro.portfolio` strategy name,
    and unknown names raise :class:`~repro.errors.OrderingError` naming
    the valid ones.
    """
    if spec is None:
        return DEFAULT_LADDER
    if isinstance(spec, str):
        rungs = tuple(part.strip() for part in spec.split(",") if part.strip())
    else:
        rungs = tuple(spec)
    if not rungs:
        raise OrderingError("fallback ladder must name at least one rung")
    known = set(_RUNG_RUNNERS) | set(_registered_strategy_names())
    unknown = [rung for rung in rungs if rung not in known]
    if unknown:
        raise OrderingError(
            f"unknown fallback rung(s) {', '.join(unknown)}; valid rungs: "
            f"{', '.join(sorted(known))}"
        )
    return rungs


def optimize_with_fallback(
    table: Any,
    budget: Optional[Budget] = None,
    ladder: Sequence[str] = DEFAULT_LADDER,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    engine: str = "numpy",
    jobs: int = 1,
    backend: Any = "thread",
    cache: Optional[Any] = None,
    profiler: Optional[Profiler] = None,
    window_width: int = 3,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    frontier_store: Any = "dict",
    fallback_rungs: Union[str, Sequence[str], None] = None,
) -> FallbackResult:
    """Deprecated alias for :func:`run_ladder`.

    Prefer ``repro.solve(problem, strategy="fallback", ...)`` for the
    high-level API, or :func:`run_ladder` for direct ladder control.
    Behavior is unchanged: this shim forwards every argument verbatim.
    """
    warnings.warn(
        "optimize_with_fallback is deprecated; use "
        "repro.solve(problem, strategy='fallback', ...) or "
        "repro.core.budget.run_ladder",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_ladder(
        table,
        budget=budget,
        ladder=ladder,
        rule=rule,
        counters=counters,
        engine=engine,
        jobs=jobs,
        backend=backend,
        cache=cache,
        profiler=profiler,
        window_width=window_width,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        frontier_store=frontier_store,
        fallback_rungs=fallback_rungs,
    )
