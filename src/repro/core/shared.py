"""Optimal shared ordering for multi-rooted diagrams (vector functions).

Real designs are multi-output: a circuit computes ``f_1, ..., f_m`` over
the same inputs, and all outputs live in one shared diagram under one
ordering.  The FS recurrence survives intact — Lemma 3/Lemma 4 are
statements about distinct subfunctions, and the shared-forest node count
at a level is the number of distinct dependent subfunctions *across all
outputs*.  Implementation-wise the state carries one table segment per
output and the per-step node dedup spans all segments (see
``FSState.num_roots``), so the whole algorithm family (FS, FS*, the
quantum divide-and-conquer) runs on shared states unchanged.

The multi-rooted setting is also where the NP-hardness result the paper
cites first appeared (Tani, Hamaguchi & Yajima [THY96]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.counters import OperationCounters
from ..errors import DimensionError, OrderingError
from ..observability import Profiler
from ..truth_table import TruthTable
from .cache import (
    ResultCache,
    chain_result_maps,
    chain_widths,
    lookup_ordering,
    store_ordering,
    table_key,
)
from .checkpoint import FaultInjector, RetryPolicy
from .compaction import compact
from .engine import EngineConfig, FrontierPolicy, run_layered_sweep
from .fs import FSResult
from .spec import FSState, ReductionRule

if TYPE_CHECKING:  # pragma: no cover - budget imports this package lazily
    from .budget import Budget
    from .executor import ExecutorBackend


def initial_state_shared(
    tables: Sequence[TruthTable],
    rule: ReductionRule = ReductionRule.BDD,
    track_nodes: bool = False,
) -> FSState:
    """The multi-rooted ``FS(emptyset)``: stacked truth tables."""
    if not tables:
        raise DimensionError("need at least one output function")
    n = tables[0].n
    if any(t.n != n for t in tables):
        raise DimensionError("all outputs must share the same variables")
    stacked = np.concatenate([t.values for t in tables]).astype(np.int64)
    if rule is ReductionRule.MTBDD:
        values, inverse = np.unique(stacked, return_inverse=True)
        cells = inverse.astype(np.int64)
        num_terminals = int(values.shape[0])
    elif rule is ReductionRule.CBDD:
        if any(not t.is_boolean() for t in tables):
            raise DimensionError(
                "cbdd rule requires Boolean tables; "
                "use ReductionRule.MTBDD for multi-valued outputs"
            )
        cells = (1 - stacked).astype(np.int64)  # edges over terminal node 0
        num_terminals = 1
    else:
        if any(not t.is_boolean() for t in tables):
            raise DimensionError(
                f"{rule.value} rule requires Boolean tables; "
                "use ReductionRule.MTBDD for multi-valued outputs"
            )
        cells = stacked
        num_terminals = 2
    return FSState(
        n=n,
        mask=0,
        pi=(),
        mincost=0,
        table=cells,
        num_terminals=num_terminals,
        nodes={} if track_nodes else None,
        num_roots=len(tables),
    )


def shared_terminal_values(
    tables: Sequence[TruthTable], rule: ReductionRule
) -> List[int]:
    if rule is ReductionRule.MTBDD:
        stacked = np.concatenate([t.values for t in tables])
        return [int(v) for v in np.unique(stacked)]
    if rule is ReductionRule.CBDD:
        return [1]
    return [0, 1]


def run_fs_shared(
    tables: Sequence[TruthTable],
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    engine: str = "numpy",
    jobs: int = 1,
    backend: "str | ExecutorBackend" = "thread",
    frontier: str | FrontierPolicy = FrontierPolicy.FULL,
    frontier_store: str = "dict",
    profiler: Optional[Profiler] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    fault_injector: Optional[FaultInjector] = None,
    cache: Optional[ResultCache] = None,
    budget: Optional["Budget"] = None,
    io_retry: Optional[RetryPolicy] = None,
    max_pool_rebuilds: Optional[int] = None,
) -> FSResult:
    """Exact optimal ordering for the shared diagram of several outputs.

    Same complexity as single-output FS up to the factor ``m`` in table
    sizes; returns an :class:`~repro.core.fs.FSResult` whose ``mincost``
    counts the *shared* internal nodes of the whole forest.  Execution
    options (``engine``/``jobs``/``backend``/``frontier``/``profiler``/
    ``checkpoint_dir``/``resume``/``cache``/``budget``/``io_retry``/
    ``max_pool_rebuilds``) match
    :func:`repro.core.fs.run_fs` — the same engine runs both DPs, and a
    single-output shared call shares cache entries with ``run_fs`` (the
    problems are identical).  Multi-output keys canonicalize under
    variable permutation only; output complement changes cross-output
    sharing, so it never competes for the canonical form here.
    """
    state0 = initial_state_shared(tables, rule)
    if counters is None:
        counters = OperationCounters()
    config = EngineConfig(
        kernel=engine, jobs=jobs, backend=backend, frontier=frontier,
        frontier_store=frontier_store,
        profiler=profiler, checkpoint_dir=checkpoint_dir, resume=resume,
        fault_injector=fault_injector, cache=cache,
        budget=budget, io_retry=io_retry,
        max_pool_rebuilds=max_pool_rebuilds,
    )
    key = None
    if cache is not None:
        key = table_key(list(tables), rule, spec="fs", profiler=profiler)
        hit = lookup_ordering(cache, key, counters, profiler)
        if hit is not None:
            mincost, order, widths = hit
            maps = chain_result_maps(order, widths)
            return FSResult(
                n=state0.n,
                rule=rule,
                order=tuple(order),
                pi=tuple(reversed(order)),
                mincost=mincost,
                num_terminals=state0.num_terminals,
                mincost_by_subset=maps[0],
                best_last=maps[1],
                level_cost_by_choice=maps[2],
                counters=counters,
                from_cache=True,
            )
    full = (1 << state0.n) - 1
    outcome = run_layered_sweep(
        state0, full, rule=rule, counters=counters, config=config
    )
    final = outcome.frontier[full]
    pi = final.pi
    if cache is not None and key is not None:
        order = tuple(reversed(pi))
        store_ordering(
            cache,
            key,
            order,
            chain_widths(order, outcome.level_cost_by_choice, state0.n),
            counters,
            profiler,
        )
    return FSResult(
        n=state0.n,
        rule=rule,
        order=tuple(reversed(pi)),
        pi=pi,
        mincost=final.mincost,
        num_terminals=final.num_terminals,
        mincost_by_subset=outcome.mincost_by_subset,
        best_last=outcome.best_last,
        level_cost_by_choice=outcome.level_cost_by_choice,
        counters=counters,
    )


@dataclass
class Forest:
    """A standalone multi-rooted reduced diagram (shared nodes)."""

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    roots: List[int]
    num_terminals: int
    terminal_values: List[int]
    nodes: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)

    @property
    def mincost(self) -> int:
        return len(self.nodes)

    def reachable(self) -> List[int]:
        seen = set()
        if self.rule is ReductionRule.CBDD:
            stack = [edge >> 1 for edge in self.roots]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                if node != 0:
                    _, lo, hi = self.nodes[node]
                    stack.extend((lo >> 1, hi >> 1))
            return sorted(seen)
        stack = list(self.roots)
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            if u >= self.num_terminals:
                _, lo, hi = self.nodes[u]
                stack.extend((lo, hi))
        return sorted(seen)

    @property
    def size(self) -> int:
        return len(self.reachable())

    def evaluate(self, root_index: int, assignment: Sequence[int]) -> int:
        if self.rule is ReductionRule.CBDD:
            edge = self.roots[root_index]
            complement = edge & 1
            node = edge >> 1
            while node != 0:
                var, lo, hi = self.nodes[node]
                nxt = hi if assignment[var] else lo
                complement ^= nxt & 1
                node = nxt >> 1
            return 0 if complement else 1
        position = {v: lv for lv, v in enumerate(self.order)}
        u = self.roots[root_index]
        level = 0
        while True:
            u_level = (
                position[self.nodes[u][0]] if u >= self.num_terminals else self.n
            )
            if self.rule is ReductionRule.ZDD:
                for lv in range(level, u_level):
                    if assignment[self.order[lv]]:
                        return 0
            if u < self.num_terminals:
                return self.terminal_values[u]
            var, lo, hi = self.nodes[u]
            u = hi if assignment[var] else lo
            level = u_level + 1

    def to_truth_tables(self) -> List[TruthTable]:
        out = []
        for index in range(len(self.roots)):
            values = [
                self.evaluate(index, [(a >> i) & 1 for i in range(self.n)])
                for a in range(1 << self.n)
            ]
            out.append(TruthTable(self.n, values))
        return out


def build_forest(
    tables: Sequence[TruthTable],
    order: Sequence[int],
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> Forest:
    """Build the shared reduced forest of ``tables`` under ``order``."""
    n = tables[0].n
    if sorted(order) != list(range(n)):
        raise OrderingError(f"{order!r} is not an ordering of range({n})")
    state = initial_state_shared(tables, rule, track_nodes=True)
    for var in reversed(list(order)):
        state = compact(state, var, rule, counters)
    assert state.table.shape == (len(tables),)
    return Forest(
        n=n,
        rule=rule,
        order=tuple(order),
        roots=[int(r) for r in state.table],
        num_terminals=state.num_terminals,
        terminal_values=shared_terminal_values(tables, rule),
        nodes=state.nodes or {},
    )


def count_shared_subfunctions(
    tables: Sequence[TruthTable], order: Sequence[int]
) -> List[int]:
    """Independent width oracle for the shared forest.

    Width at level ``k`` = distinct dependent subfunctions over the
    remaining variables, pooled across all outputs and all assignments to
    the already-read variables.
    """
    n = tables[0].n
    if sorted(order) != list(range(n)):
        raise OrderingError(f"{order!r} is not an ordering of range({n})")
    perm = list(order)[::-1]
    permuted = [t.permute(perm).values for t in tables]
    widths: List[int] = []
    for k in range(n):
        rows = np.concatenate(
            [g.reshape(1 << k, 1 << (n - k)) for g in permuted], axis=0
        )
        half = 1 << (n - k - 1)
        depends = ~np.all(rows[:, :half] == rows[:, half:], axis=1)
        dependent_rows = rows[depends]
        if dependent_rows.shape[0] == 0:
            widths.append(0)
            continue
        widths.append(int(np.unique(dependent_rows, axis=0).shape[0]))
    return widths


def brute_force_shared(
    tables: Sequence[TruthTable],
    rule: ReductionRule = ReductionRule.BDD,
) -> Tuple[Tuple[int, ...], int]:
    """Exhaustive shared-ordering search (test baseline)."""
    import itertools

    n = tables[0].n
    state0 = initial_state_shared(tables, rule)
    best_order: Optional[Tuple[int, ...]] = None
    best_cost: Optional[int] = None
    for perm in itertools.permutations(range(n)):
        state = state0
        for var in reversed(perm):
            state = compact(state, var, rule)
        if best_cost is None or state.mincost < best_cost:
            best_cost = state.mincost
            best_order = perm
    assert best_order is not None and best_cost is not None
    return best_order, best_cost
