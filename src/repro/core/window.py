"""Exact window optimization: FS* applied to a slice of the ordering.

The paper notes that theoretically-sound exact methods are worth having
"to be able to apply such methods at least to parts of the OBDDs within a
heuristics procedure" [MT98, Sec. 9.22].  This module is that hybrid: the
composable FS* (Lemma 8) run over a window of ``w`` consecutive levels
with everything outside the window frozen.  By Lemma 3 the widths outside
the window cannot change, so each window solve is an exact local
optimization in ``O*(2^{n-w} 3^w)`` — versus the ``w!`` arrangements a
permutation-window heuristic enumerates.

:func:`exact_window` optimizes one window; :func:`window_sweep` slides it
across the ordering to a fixpoint, yielding a heuristic that is strictly
stronger than classic window permutation at equal window size (identical
local optima, found with exponentially fewer arrangement evaluations for
large windows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .._bitops import mask_of
from ..analysis.counters import OperationCounters
from ..errors import BudgetExceeded, CacheError, OrderingError
from ..truth_table import TruthTable
from .cache import raw_table_key
from .engine import EngineConfig, get_kernel
from .executor import shared_backend
from .fs import initial_state
from .fs_star import run_fs_star
from .spec import ReductionRule


@dataclass
class WindowResult:
    """Outcome of one exact window solve (or a full sweep)."""

    order: Tuple[int, ...]
    size: int
    """Total internal nodes of the diagram under ``order``."""

    improved: bool
    windows_solved: int
    counters: OperationCounters

    from_cache: bool = False
    """True when a full sweep was served by a
    :class:`~repro.core.cache.ResultCache` hit (zero kernel work)."""


def _chain_cost(
    table: TruthTable,
    order: Sequence[int],
    rule: ReductionRule,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
) -> int:
    kernel = get_kernel(config.kernel if config is not None else "numpy")
    state = initial_state(table, rule)
    for var in reversed(list(order)):
        state = kernel(state, var, rule, counters)
    return state.mincost


def exact_window(
    table: TruthTable,
    order: Sequence[int],
    start: int,
    width: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
    known_size: Optional[int] = None,
) -> WindowResult:
    """Optimally rearrange ``order[start:start+width]``, rest frozen.

    Returns the improved ordering (identical outside the window) and the
    new total internal-node count.  ``config`` selects the execution
    engine options (kernel, jobs, profiler, cache) for the FS* solve and
    the frozen-chain costing alike.

    Costing is incremental: the current window block is replayed on the
    frozen bottom chain (its cost read off the same base state the FS*
    solve extends), and by Lemma 3 every level outside the window keeps
    its width, so the new total is ``old_total - old_block + new_block``.
    Pass ``known_size`` (the current order's total, e.g. from a previous
    window in a sweep) to skip the one remaining full-chain costing of
    the levels above the window.
    """
    n = table.n
    order = list(order)
    if sorted(order) != list(range(n)):
        raise OrderingError(f"{order!r} is not an ordering of range({n})")
    if width < 1 or start < 0 or start + width > n:
        raise OrderingError(
            f"window [{start}, {start + width}) invalid for n={n}"
        )
    if counters is None:
        counters = OperationCounters()

    below = order[start + width:]  # read later = placed at the bottom
    window = order[start:start + width]

    # Build the frozen bottom chain once; both the current block's cost
    # and the FS* solve extend this same state.
    kernel = get_kernel(config.kernel if config is not None else "numpy")
    state = initial_state(table, rule)
    for var in reversed(below):
        state = kernel(state, var, rule, counters)
    base_below = state

    current = base_below
    for var in reversed(window):
        current = kernel(current, var, rule, counters)
    old_block = current.mincost - base_below.mincost

    final = run_fs_star(
        base_below, mask_of(window), rule, counters, config=config
    )
    new_block = final.mincost - base_below.mincost
    optimized_window = list(reversed(final.pi[len(below):]))

    # The FS* block is optimal over all arrangements of the window
    # (Lemma 8), the current arrangement included.  A regression here
    # means a broken kernel or a corrupted state, and silently keeping
    # the "optimized" order would propagate it — so this is a real
    # runtime check, not an assert stripped under ``python -O``.
    if new_block > old_block:
        raise OrderingError(
            f"exact window [{start}, {start + width}) regressed: optimized "
            f"block costs {new_block} nodes vs {old_block} for the current "
            "arrangement, violating the Lemma 8 optimality invariant"
        )

    if known_size is None:
        # Cost the levels above the window by continuing the current
        # chain (Lemma 3: those widths are the same for both orders).
        top = current
        for var in reversed(order[:start]):
            top = kernel(top, var, rule, counters)
        known_size = top.mincost
    new_size = known_size - old_block + new_block

    new_order = order[:start] + optimized_window + order[start + width:]
    return WindowResult(
        order=tuple(new_order),
        size=new_size,
        improved=new_block < old_block,
        windows_solved=1,
        counters=counters,
    )


def window_sweep(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    width: int = 3,
    rule: ReductionRule = ReductionRule.BDD,
    max_rounds: int = 10,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
) -> WindowResult:
    """Slide the exact window across all positions until no improvement.

    The initial order's size is measured once, and every window solve is
    costed incrementally against it (``known_size`` threading into
    :func:`exact_window`), so the sweep never re-costs a full chain it
    already knows.  A :class:`~repro.core.cache.ResultCache` on
    ``config`` short-circuits whole repeated sweeps — keyed on the raw
    table, rule, width, round budget and initial order, since a window
    sweep's trajectory is tied to concrete variable positions — and also
    accelerates the inner FS* solves via their own chain entries.

    A :class:`~repro.core.budget.Budget` on ``config`` is checked before
    every window solve (and at the layer boundaries of each inner FS*
    sweep); the resulting :class:`~repro.errors.BudgetExceeded` carries
    the best full ordering and size reached so far on ``best_order`` /
    ``best_bound``, so a degradation ladder can seed a cheaper method
    with the partial progress.
    """
    n = table.n
    if width < 2:
        raise OrderingError("window width must be at least 2")
    width = min(width, n)
    order = list(initial_order) if initial_order is not None else list(range(n))
    if counters is None:
        counters = OperationCounters()

    budget = config.budget if config is not None else None
    if budget is not None:
        budget.ensure_armed()
    cache = config.cache if config is not None else None
    fingerprint = None
    if cache is not None:
        fingerprint = raw_table_key(
            [table], rule, spec="window_sweep",
            extra={
                "width": width,
                "max_rounds": max_rounds,
                "initial_order": list(order),
            },
        )
        entry = cache.lookup(fingerprint)
        counters.add_extra("cache_hits" if entry is not None
                           else "cache_misses")
        if entry is not None:
            cached_order = tuple(int(v) for v in entry.get("order", ()))
            if (
                entry.get("kind") != "window_sweep"
                or sorted(cached_order) != list(range(n))
            ):
                raise CacheError(
                    f"cache entry {fingerprint} holds a malformed "
                    "window-sweep payload"
                )
            return WindowResult(
                order=cached_order,
                size=int(entry["size"]),
                improved=bool(entry["improved"]),
                windows_solved=int(entry["windows_solved"]),
                counters=counters,
                from_cache=True,
            )

    initial_size = _chain_cost(table, order, rule, counters, config)
    size = initial_size
    solved = 0

    # A sweep runs O(n * rounds) inner FS* solves; pin the configured
    # backend to one live instance so a pool-bearing backend spec costs
    # one pool for the whole sweep, not one per window.
    with shared_backend(config) as config:
        for _ in range(max_rounds):
            round_improved = False
            for start in range(n - width + 1):
                if budget is not None:
                    budget.check(
                        counters=counters,
                        best_bound=size,
                        best_order=tuple(order),
                        where=f"window boundary (start={start})",
                    )
                try:
                    result = exact_window(
                        table, order, start, width, rule, counters, config,
                        known_size=size,
                    )
                except BudgetExceeded as exc:
                    # The inner FS* raise describes a sub-lattice state;
                    # the sweep-level progress is what a caller can use.
                    exc.best_order = tuple(order)
                    exc.best_bound = size
                    raise
                solved += 1
                if result.size < size:
                    size = result.size
                    order = list(result.order)
                    round_improved = True
            if not round_improved:
                break
    if cache is not None and fingerprint is not None:
        cache.store(fingerprint, {
            "kind": "window_sweep",
            "order": list(order),
            "size": size,
            "improved": size < initial_size,
            "windows_solved": solved,
        })
        counters.add_extra("cache_stores")
    return WindowResult(
        order=tuple(order),
        size=size,
        improved=size < initial_size,
        windows_solved=solved,
        counters=counters,
    )
