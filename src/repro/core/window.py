"""Exact window optimization: FS* applied to a slice of the ordering.

The paper notes that theoretically-sound exact methods are worth having
"to be able to apply such methods at least to parts of the OBDDs within a
heuristics procedure" [MT98, Sec. 9.22].  This module is that hybrid: the
composable FS* (Lemma 8) run over a window of ``w`` consecutive levels
with everything outside the window frozen.  By Lemma 3 the widths outside
the window cannot change, so each window solve is an exact local
optimization in ``O*(2^{n-w} 3^w)`` — versus the ``w!`` arrangements a
permutation-window heuristic enumerates.

:func:`exact_window` optimizes one window; :func:`window_sweep` slides it
across the ordering to a fixpoint, yielding a heuristic that is strictly
stronger than classic window permutation at equal window size (identical
local optima, found with exponentially fewer arrangement evaluations for
large windows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .._bitops import mask_of
from ..analysis.counters import OperationCounters
from ..errors import OrderingError
from ..truth_table import TruthTable
from .engine import EngineConfig, get_kernel
from .fs import initial_state
from .fs_star import run_fs_star
from .spec import ReductionRule


@dataclass
class WindowResult:
    """Outcome of one exact window solve (or a full sweep)."""

    order: Tuple[int, ...]
    size: int
    """Total internal nodes of the diagram under ``order``."""

    improved: bool
    windows_solved: int
    counters: OperationCounters


def _chain_cost(
    table: TruthTable,
    order: Sequence[int],
    rule: ReductionRule,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
) -> int:
    kernel = get_kernel(config.kernel if config is not None else "numpy")
    state = initial_state(table, rule)
    for var in reversed(list(order)):
        state = kernel(state, var, rule, counters)
    return state.mincost


def exact_window(
    table: TruthTable,
    order: Sequence[int],
    start: int,
    width: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
) -> WindowResult:
    """Optimally rearrange ``order[start:start+width]``, rest frozen.

    Returns the improved ordering (identical outside the window) and the
    new total internal-node count.  ``config`` selects the execution
    engine options (kernel, jobs, profiler) for the FS* solve and the
    frozen-chain costing alike.
    """
    n = table.n
    order = list(order)
    if sorted(order) != list(range(n)):
        raise OrderingError(f"{order!r} is not an ordering of range({n})")
    if width < 1 or start < 0 or start + width > n:
        raise OrderingError(
            f"window [{start}, {start + width}) invalid for n={n}"
        )
    if counters is None:
        counters = OperationCounters()

    below = order[start + width:]  # read later = placed at the bottom
    window = order[start:start + width]

    # Build the frozen bottom chain, then optimize the window with FS*.
    kernel = get_kernel(config.kernel if config is not None else "numpy")
    state = initial_state(table, rule)
    for var in reversed(below):
        state = kernel(state, var, rule, counters)
    cost_below = state.mincost
    final = run_fs_star(state, mask_of(window), rule, counters, config=config)
    optimized_window = list(reversed(final.pi[len(below):]))

    new_order = order[:start] + optimized_window + order[start + width:]
    # Widths above the window depend only on the variable sets (Lemma 3),
    # so re-costing the full chain is exact; the window block itself is
    # guaranteed optimal by Lemma 8.
    old_size = _chain_cost(table, order, rule, counters, config)
    new_size = _chain_cost(table, new_order, rule, counters, config)
    assert new_size <= old_size, "exact window must never regress"
    return WindowResult(
        order=tuple(new_order),
        size=new_size,
        improved=new_size < old_size,
        windows_solved=1,
        counters=counters,
    )


def window_sweep(
    table: TruthTable,
    initial_order: Optional[Sequence[int]] = None,
    width: int = 3,
    rule: ReductionRule = ReductionRule.BDD,
    max_rounds: int = 10,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
) -> WindowResult:
    """Slide the exact window across all positions until no improvement."""
    n = table.n
    if width < 2:
        raise OrderingError("window width must be at least 2")
    width = min(width, n)
    order = list(initial_order) if initial_order is not None else list(range(n))
    if counters is None:
        counters = OperationCounters()
    size = _chain_cost(table, order, rule, counters, config)
    solved = 0

    for _ in range(max_rounds):
        improved = False
        for start in range(n - width + 1):
            result = exact_window(
                table, order, start, width, rule, counters, config
            )
            solved += 1
            if result.size < size:
                size = result.size
                order = list(result.order)
                improved = True
        if not improved:
            break
    return WindowResult(
        order=tuple(order),
        size=size,
        improved=solved > 0
        and size < _chain_cost(table, initial_order or list(range(n)), rule,
                               None, config),
        windows_solved=solved,
        counters=counters,
    )
