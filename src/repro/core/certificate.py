"""Machine-checkable optimality certificates.

``run_fs`` is a certifying algorithm in disguise: its ``MINCOST_I`` table
*is* a proof of optimality — the claimed optimum is achievable (upper
bound) and the table's Lemma 4 consistency, with widths recomputed by an
independent oracle, forces every ordering to cost at least as much (lower
bound).  This module extracts that proof as a standalone object and
verifies it without trusting any of the DP code:

* the **achievability check** re-costs the claimed ordering with the
  subfunction-counting oracle (cheap: ``O(n^2 2^n)``);
* the **lower-bound check** re-derives every ``Cost_i`` with the same
  oracle and confirms ``MINCOST_I = min_i (MINCOST_{I\\i} + Cost_i)`` for
  all ``2^n`` subsets (exhaustive: ``O(4^n poly(n))`` — meant for audit
  runs at small ``n``, exactly like re-checking a proof).

Only the plain-BDD rule is supported (the oracle counts plain-OBDD
subfunctions); certificates also serialize to JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .._bitops import bits_of, popcount
from ..errors import ParseError
from ..truth_table import TruthTable, count_subfunctions
from .fs import FSResult
from .spec import ReductionRule

_FORMAT = "repro-certificate-v1"


@dataclass
class OptimalityCertificate:
    """A self-contained optimality proof for one ordering."""

    n: int
    order: Tuple[int, ...]
    mincost: int
    mincost_by_subset: Dict[int, int]

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "format": _FORMAT,
                "n": self.n,
                "order": list(self.order),
                "mincost": self.mincost,
                "mincost_by_subset": {
                    str(mask): cost
                    for mask, cost in sorted(self.mincost_by_subset.items())
                },
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "OptimalityCertificate":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ParseError(f"not valid JSON: {error}") from None
        if payload.get("format") != _FORMAT:
            raise ParseError(f"unknown certificate format {payload.get('format')!r}")
        try:
            return cls(
                n=int(payload["n"]),
                order=tuple(int(v) for v in payload["order"]),
                mincost=int(payload["mincost"]),
                mincost_by_subset={
                    int(mask): int(cost)
                    for mask, cost in payload["mincost_by_subset"].items()
                },
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ParseError(f"malformed certificate: {error}") from None


def extract_certificate(result: FSResult) -> OptimalityCertificate:
    """Package an :class:`~repro.core.fs.FSResult` as a certificate."""
    if result.rule is not ReductionRule.BDD:
        raise ValueError(
            "certificates are implemented for the plain BDD rule only"
        )
    return OptimalityCertificate(
        n=result.n,
        order=result.order,
        mincost=result.mincost,
        mincost_by_subset=dict(result.mincost_by_subset),
    )


def _oracle_width(table: TruthTable, below_mask: int, var: int) -> int:
    """``Cost_var`` when placed directly above ``below_mask``, computed
    with the independent subfunction-counting oracle (well-defined by
    Lemma 3, so any concrete arrangement will do)."""
    below = bits_of(below_mask)
    above = [v for v in range(table.n) if v != var and not (below_mask >> v) & 1]
    order = above + [var] + below
    return count_subfunctions(table, order)[len(above)]


def verify_achievability(table: TruthTable, certificate: OptimalityCertificate) -> bool:
    """Check that the claimed ordering really costs ``mincost``."""
    if sorted(certificate.order) != list(range(table.n)):
        return False
    widths = count_subfunctions(table, list(certificate.order))
    return sum(widths) == certificate.mincost


def verify_lower_bound(table: TruthTable, certificate: OptimalityCertificate) -> bool:
    """Re-derive the whole DP table with the independent oracle.

    Accepts iff the certificate's table satisfies ``MINCOST_0 = 0``, the
    Lemma 4 recurrence at every subset, and ``MINCOST_[n] == mincost``.
    A correct table proves no ordering beats ``mincost`` (each ordering
    traces a chain through the table whose edge costs telescope).
    """
    n = table.n
    full = (1 << n) - 1
    subset_costs = certificate.mincost_by_subset
    if set(subset_costs) != set(range(1 << n)):
        return False
    if subset_costs[0] != 0:
        return False
    if subset_costs[full] != certificate.mincost:
        return False
    for mask in range(1, 1 << n):
        best = min(
            subset_costs[mask & ~(1 << i)]
            + _oracle_width(table, mask & ~(1 << i), i)
            for i in bits_of(mask)
        )
        if subset_costs[mask] != best:
            return False
    return True


def verify_certificate(table: TruthTable, certificate: OptimalityCertificate) -> bool:
    """Full audit: achievability plus the exhaustive lower-bound check."""
    return verify_achievability(table, certificate) and verify_lower_bound(
        table, certificate
    )
