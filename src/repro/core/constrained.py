"""Exact ordering under precedence constraints.

Synthesis flows often fix part of the ordering: control signals before
data, register fields kept contiguous, an interface's order imposed from
outside.  The FS lattice handles "x must be read before y" constraints
for free: a bottom set ``I`` is feasible iff it is closed under the
precedence's successors (if the earlier-read variable is already in the
bottom block, the later-read one must be too), and Lemma 4 restricted to
the feasible sub-lattice still yields the constrained optimum — every
feasible ordering's chain stays inside the feasible sets.

Complexity interpolates between ``O*(3^n)`` (no constraints) and
``O*(2^n)``-ish (a full chain forces a single path); the bench measures
exactly that shrinkage.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from .._bitops import bits_of
from ..analysis.counters import OperationCounters
from ..errors import CacheError, DimensionError, OrderingError
from ..observability import Profiler
from ..truth_table import TruthTable
from .cache import ResultCache, chain_widths, raw_table_key
from .checkpoint import FaultInjector, RetryPolicy
from .engine import EngineConfig, FrontierPolicy, run_layered_sweep
from .fs import initial_state
from .spec import ReductionRule

if TYPE_CHECKING:  # pragma: no cover - budget imports this package lazily
    from .budget import Budget
    from .executor import ExecutorBackend

Precedence = Sequence[Tuple[int, int]]  # (earlier, later) pairs


def _closure_masks(n: int, precedence: Precedence) -> List[int]:
    """``after_mask[v]`` = variables that must be read after ``v``
    (transitively), as bitmasks; raises on cycles."""
    successors: Dict[int, List[int]] = {v: [] for v in range(n)}
    for earlier, later in precedence:
        if not (0 <= earlier < n and 0 <= later < n):
            raise DimensionError(f"precedence ({earlier}, {later}) out of range")
        if earlier == later:
            raise OrderingError(f"variable {earlier} cannot precede itself")
        successors[earlier].append(later)

    after = [0] * n
    state = [0] * n  # 0 unvisited, 1 in progress, 2 done

    def visit(v: int) -> None:
        if state[v] == 1:
            raise OrderingError("precedence constraints contain a cycle")
        if state[v] == 2:
            return
        state[v] = 1
        mask = 0
        for w in successors[v]:
            visit(w)
            mask |= (1 << w) | after[w]
        after[v] = mask
        state[v] = 2

    for v in range(n):
        visit(v)
    return after


def _feasible(mask: int, after: List[int]) -> bool:
    # If v is in the bottom block, everything read after v must be too.
    for v in bits_of(mask):
        if after[v] & ~mask:
            return False
    return True


@dataclass
class ConstrainedResult:
    """Outcome of the precedence-constrained exact search."""

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    pi: Tuple[int, ...]
    mincost: int
    num_terminals: int
    feasible_subsets: int
    """Subset states the constrained DP actually evaluated (vs ``2^n``)."""

    counters: OperationCounters = field(default_factory=OperationCounters)

    from_cache: bool = False
    """True when served by a :class:`~repro.core.cache.ResultCache` hit."""

    @property
    def size(self) -> int:
        return self.mincost + self.num_terminals


def run_fs_constrained(
    table: TruthTable,
    precedence: Precedence,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    engine: str = "numpy",
    jobs: int = 1,
    backend: "str | ExecutorBackend" = "thread",
    frontier: str | FrontierPolicy = FrontierPolicy.FULL,
    frontier_store: str = "dict",
    profiler: Optional[Profiler] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    fault_injector: Optional[FaultInjector] = None,
    cache: Optional[ResultCache] = None,
    budget: Optional["Budget"] = None,
    io_retry: Optional[RetryPolicy] = None,
    max_pool_rebuilds: Optional[int] = None,
) -> ConstrainedResult:
    """Optimal ordering among those honoring every ``(earlier, later)``
    pair (``earlier`` is read closer to the root).

    With an empty precedence this is exactly :func:`repro.core.fs.run_fs`;
    with a total order it just costs the single feasible chain.  The
    shared execution engine restricts the sweep to the feasible
    sub-lattice via a subset filter, so constrained runs get the same
    kernel selection, layer parallelism, profiling and checkpoint/resume
    support for free.
    """
    if counters is None:
        counters = OperationCounters()
    n = table.n
    after = _closure_masks(n, precedence)
    full = (1 << n) - 1

    # The engine only sees the precedence as an opaque subset filter, so
    # fold its transitive closure into the checkpoint fingerprint: runs
    # with different constraints must never resume from each other.
    tag = "constrained:" + ",".join(f"{m:x}" for m in after)
    config = EngineConfig(
        kernel=engine, jobs=jobs, backend=backend, frontier=frontier,
        frontier_store=frontier_store,
        profiler=profiler, checkpoint_dir=checkpoint_dir, resume=resume,
        fault_injector=fault_injector, checkpoint_tag=tag, cache=cache,
        budget=budget, io_retry=io_retry,
        max_pool_rebuilds=max_pool_rebuilds,
    )
    # Precedence constraints are tied to concrete variable names, so the
    # key hashes the raw table plus the closure — no canonicalization.
    fingerprint = None
    if cache is not None:
        fingerprint = raw_table_key(
            [table], rule, spec="constrained",
            extra={"after": [f"{m:x}" for m in after]},
        )
        with (profiler.phase("cache_lookup") if profiler is not None
              else nullcontext()):
            entry = cache.lookup(fingerprint)
        counters.add_extra("cache_hits" if entry is not None
                           else "cache_misses")
        if entry is not None:
            order = tuple(int(v) for v in entry.get("order", ()))
            if (
                entry.get("kind") != "constrained"
                or sorted(order) != list(range(n))
            ):
                raise CacheError(
                    f"cache entry {fingerprint} holds a malformed "
                    "constrained-ordering payload"
                )
            return ConstrainedResult(
                n=n,
                rule=rule,
                order=order,
                pi=tuple(reversed(order)),
                mincost=int(entry["mincost"]),
                num_terminals=int(entry["num_terminals"]),
                feasible_subsets=int(entry["feasible_subsets"]),
                counters=counters,
                from_cache=True,
            )
    outcome = run_layered_sweep(
        initial_state(table, rule),
        full,
        rule=rule,
        counters=counters,
        config=config,
        subset_filter=lambda mask: _feasible(mask, after),
    )
    final = outcome.frontier[full]
    pi = final.pi
    order = tuple(reversed(pi))
    if cache is not None and fingerprint is not None:
        with (profiler.phase("cache_store") if profiler is not None
              else nullcontext()):
            cache.store(fingerprint, {
                "kind": "constrained",
                "order": list(order),
                "widths": chain_widths(
                    order, outcome.level_cost_by_choice, n
                ),
                "mincost": final.mincost,
                "num_terminals": final.num_terminals,
                "feasible_subsets": outcome.subsets_processed,
            })
        counters.add_extra("cache_stores")
    return ConstrainedResult(
        n=n,
        rule=rule,
        order=order,
        pi=pi,
        mincost=final.mincost,
        num_terminals=final.num_terminals,
        feasible_subsets=outcome.subsets_processed,
        counters=counters,
    )


def order_satisfies(order: Sequence[int], precedence: Precedence) -> bool:
    """Check a read-first-to-read-last ordering against the constraints."""
    position = {v: i for i, v in enumerate(order)}
    return all(position[earlier] < position[later]
               for earlier, later in precedence)
