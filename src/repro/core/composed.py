"""Iterated quantum composition: the final algorithm of Section 4.

The quantum composition lemma (Lemmas 11 and 12) lets ``OptOBDD`` use *a
previously built OptOBDD* as its extension subroutine ``Gamma`` instead of
the classical FS*::

    Gamma_1     = OptOBDD*_{FS*}(k^(0), alpha^(0))
    Gamma_{i+1} = OptOBDD*_{Gamma_i}(k^(i), alpha^(i))

Each composition level tightens the exponent base: 3 -> 2.83728 ->
2.79364 -> ... -> 2.77286 after ten compositions (the paper's Table 2,
re-derived numerically in :mod:`repro.analysis.parameters`).  Theorem 13 is
the ten-fold composition.

Classically simulating the whole stack is exponentially *slower* than FS;
its role here is structural fidelity — the benches verify the recursion
shape and the modeled query ledger, and the tests verify it still returns
optimal orderings on real inputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis.counters import OperationCounters
from ..quantum.minimum_finding import ClassicalMinimumFinder, MinimumFinder
from ..truth_table import TruthTable
from .divide_conquer import (
    OptOBDDResult,
    THEOREM10_ALPHAS,
    effective_levels,
    opt_obdd_extend,
)
from .fs import initial_state
from .fs_star import ComposableSolver, make_fs_star_solver
from .spec import FSState, ReductionRule

#: Alpha vectors of the paper's Table 2, one per composition level (the
#: level-i solver is built with row i).  Reproduced numerically by
#: :func:`repro.analysis.parameters.solve_table2`.
TABLE2_ALPHAS: Tuple[Tuple[float, ...], ...] = (
    (0.183792, 0.183802, 0.183974, 0.186132, 0.206480, 0.343573),
    (0.165753, 0.165759, 0.165857, 0.167339, 0.183883, 0.312741),
    (0.160487, 0.160491, 0.160574, 0.161890, 0.177376, 0.303603),
    (0.158777, 0.158780, 0.158859, 0.160124, 0.175273, 0.300622),
    (0.158203, 0.158207, 0.158284, 0.159532, 0.174568, 0.299621),
    (0.158009, 0.158013, 0.158089, 0.159332, 0.174330, 0.299282),
    (0.157943, 0.157947, 0.158023, 0.159264, 0.174249, 0.299166),
    (0.157920, 0.157924, 0.158000, 0.159241, 0.174221, 0.299127),
    (0.157913, 0.157916, 0.157992, 0.159233, 0.174212, 0.299114),
    (0.157910, 0.157914, 0.157990, 0.159230, 0.174208, 0.299109),
)

#: The paper's Table 2 beta column: exponent base after each composition.
TABLE2_BETAS: Tuple[float, ...] = (
    2.83728,
    2.79364,
    2.77981,
    2.77521,
    2.77366,
    2.77313,
    2.77295,
    2.77289,
    2.77287,
    2.77286,
)


def make_composed_solver(
    depth: int,
    rule: ReductionRule = ReductionRule.BDD,
    finder: Optional[MinimumFinder] = None,
    counters: Optional[OperationCounters] = None,
    alpha_schedule: Optional[Sequence[Sequence[float]]] = None,
) -> ComposableSolver:
    """Build ``Gamma_depth``: ``depth`` nested OptOBDD levels over FS*.

    ``depth = 0`` returns plain FS*; ``depth = 1`` is the Theorem 10
    algorithm as a composable solver; ``depth = 10`` with the default
    schedule is the Theorem 13 algorithm.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if alpha_schedule is None:
        alpha_schedule = TABLE2_ALPHAS
    if depth > len(alpha_schedule):
        raise ValueError(
            f"depth {depth} exceeds the alpha schedule length "
            f"{len(alpha_schedule)}"
        )
    if finder is None:
        finder = ClassicalMinimumFinder(counters)

    solver: ComposableSolver = make_fs_star_solver(rule, counters)
    for level in range(depth):
        solver = _wrap(
            tuple(alpha_schedule[level]), rule, finder, counters, solver
        )
    return solver


def _wrap(
    alphas: Tuple[float, ...],
    rule: ReductionRule,
    finder: MinimumFinder,
    counters: Optional[OperationCounters],
    inner: ComposableSolver,
) -> ComposableSolver:
    def solver(base: FSState, j_mask: int) -> FSState:
        return opt_obdd_extend(
            base,
            j_mask,
            alphas,
            rule=rule,
            finder=finder,
            counters=counters,
            subroutine=inner,
        )

    return solver


def opt_obdd_composed(
    table: TruthTable,
    depth: int = 2,
    rule: ReductionRule = ReductionRule.BDD,
    finder: Optional[MinimumFinder] = None,
    counters: Optional[OperationCounters] = None,
    alpha_schedule: Optional[Sequence[Sequence[float]]] = None,
) -> OptOBDDResult:
    """Run the composed algorithm end to end (Theorem 13 at depth 10).

    ``depth`` is the number of OptOBDD levels stacked on FS*.  Depths
    beyond 2 are exponentially expensive to simulate classically; the tests
    exercise depths 1-3 on small ``n``.
    """
    if counters is None:
        counters = OperationCounters()
    solver = make_composed_solver(depth, rule, finder, counters, alpha_schedule)
    base = initial_state(table, rule)
    n = table.n
    final = solver(base, (1 << n) - 1)
    outer_alphas = (
        tuple((alpha_schedule or TABLE2_ALPHAS)[depth - 1])
        if depth >= 1
        else THEOREM10_ALPHAS
    )
    return OptOBDDResult(
        n=n,
        rule=rule,
        order=tuple(reversed(final.pi)),
        pi=final.pi,
        mincost=final.mincost,
        num_terminals=final.num_terminals,
        levels=tuple(effective_levels(n, outer_alphas)),
        counters=counters,
    )
