"""Algorithm FS*: the composable generalization of FS (Lemma 8).

Where FS always starts from ``FS(emptyset)`` and places *all* variables,
FS* starts from an arbitrary already-computed quadruple
``FS(<I_1, ..., I_m>)`` and optimally places only the variables of a
further set ``J`` on top of it, justified by Lemma 7::

    MINCOST_(I.., J) = min_{k in J} MINCOST_(I.., J\\k, k)

Its cost is ``O*(2^{n - |I| - |J|} * 3^{|J|})`` table cells — the paper's
Classical Composition Lemma — which the counters measure exactly.  Stopping
the DP at prefix size ``k`` yields ``{FS(<I.., K>) : K subset of J, |K| = k}``,
the preprocessing step of the quantum algorithms.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .._bitops import bits_of, popcount
from ..analysis.counters import OperationCounters
from ..errors import CacheError, DimensionError
from .engine import EngineConfig, get_kernel, run_layered_sweep
from .spec import FSState, ReductionRule


def fs_star_levels(
    base: FSState,
    j_mask: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    upto: Optional[int] = None,
    config: Optional[EngineConfig] = None,
) -> Dict[int, FSState]:
    """Run the FS* dynamic program over subsets of ``j_mask``.

    Parameters
    ----------
    base:
        The starting quadruple ``FS(<I_1, ..., I_m>)``.
    j_mask:
        Bitmask of the set ``J``; must be disjoint from ``base.mask``.
    upto:
        Stop after prefix size ``upto`` (defaults to ``|J|``).
    config:
        Optional :class:`~repro.core.engine.EngineConfig` selecting the
        compaction kernel, layer parallelism, frontier policy and
        profiler; the sweep itself runs on the shared execution engine.

    Returns
    -------
    dict
        Mapping each ``K`` sub-mask with ``|K| == upto`` to its optimal
        state ``FS(<I.., K>)``.  (States for smaller prefixes are internal
        and released as the DP advances, matching the paper's Remark 1 on
        space.)
    """
    if j_mask & base.mask:
        raise DimensionError(
            f"J mask {j_mask:#x} overlaps already-placed variables "
            f"{base.mask:#x}"
        )
    if j_mask & ~base.free_mask:
        raise DimensionError(f"J mask {j_mask:#x} mentions out-of-range variables")
    size_j = popcount(j_mask)
    if upto is None:
        upto = size_j
    if not 0 <= upto <= size_j:
        raise ValueError(f"upto={upto} out of range for |J|={size_j}")
    if upto == 0:
        return {0: base}
    # Preserve the historical contract that a ``None`` counters argument
    # leaves the caller's instrumentation untouched.
    outcome = run_layered_sweep(
        base,
        j_mask,
        rule=rule,
        counters=counters if counters is not None else OperationCounters(),
        config=config,
        upto=upto,
    )
    return outcome.frontier


def run_fs_star(
    base: FSState,
    j_mask: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
) -> FSState:
    """Produce the single quadruple ``FS(<I_1, ..., I_m, J>)`` (Lemma 8).

    With a :class:`~repro.core.cache.ResultCache` on ``config``, solved
    ``(base table, J)`` pairs store their optimal placement chain; a hit
    rematerializes the state by replaying that chain — ``O(|J|)``
    compactions instead of an ``O*(3^{|J|})`` sweep, bit-identical by the
    same Lemma 3 argument as the engine's mincost-only frontier.  Replay
    work is tallied under the ``cache_replay_*`` extra counters so the
    paper-facing totals stay exact.
    """
    if j_mask == 0:
        return base
    budget = config.budget if config is not None else None
    if budget is not None:
        # The layered sweep re-checks at every layer boundary; this entry
        # check additionally covers the cache-replay short-circuit, which
        # never enters the engine.
        budget.ensure_armed()
        budget.check(counters=counters, where="fs_star entry")
    cache = config.cache if config is not None else None
    fingerprint = None
    if cache is not None:
        from .cache import state_key  # deferred: cache imports .spec only

        fingerprint = state_key(base, j_mask, rule)
        entry = cache.lookup(fingerprint)
        if counters is not None:
            counters.add_extra(
                "cache_hits" if entry is not None else "cache_misses"
            )
        if entry is not None:
            suffix = [int(v) for v in entry.get("suffix", ())]
            if (
                entry.get("kind") != "fs_star"
                or sorted(suffix) != sorted(bits_of(j_mask))
            ):
                raise CacheError(
                    f"cache entry {fingerprint} holds a malformed FS* "
                    f"chain for J mask {j_mask:#x}"
                )
            kernel = get_kernel(config.kernel)
            scratch = OperationCounters()
            state = base
            for var in suffix:
                state = kernel(state, var, rule, scratch)
            if state.mincost != int(entry["mincost"]):
                raise CacheError(
                    f"cache entry {fingerprint}: replayed FS* chain yields "
                    f"mincost {state.mincost}, stored {entry['mincost']}"
                )
            if counters is not None:
                counters.add_extra("cache_replay_compactions",
                                   scratch.compactions)
                counters.add_extra("cache_replay_cells", scratch.table_cells)
            return state
    levels = fs_star_levels(base, j_mask, rule, counters, config=config)
    final = levels[j_mask]
    if cache is not None and fingerprint is not None:
        cache.store(fingerprint, {
            "kind": "fs_star",
            "suffix": [int(v) for v in final.pi[len(base.pi):]],
            "mincost": final.mincost,
        })
        if counters is not None:
            counters.add_extra("cache_stores")
    return final


# Type of "composable solvers": anything that extends a state over a mask.
# FS* is the base instance; the quantum OptOBDD wrappers in
# :mod:`repro.core.composed` share this signature (the paper's Gamma).
ComposableSolver = Callable[[FSState, int], FSState]


def make_fs_star_solver(
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> ComposableSolver:
    """FS* packaged with fixed rule/counters as a :data:`ComposableSolver`."""

    def solver(base: FSState, j_mask: int) -> FSState:
        return run_fs_star(base, j_mask, rule, counters)

    return solver
