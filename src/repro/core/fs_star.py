"""Algorithm FS*: the composable generalization of FS (Lemma 8).

Where FS always starts from ``FS(emptyset)`` and places *all* variables,
FS* starts from an arbitrary already-computed quadruple
``FS(<I_1, ..., I_m>)`` and optimally places only the variables of a
further set ``J`` on top of it, justified by Lemma 7::

    MINCOST_(I.., J) = min_{k in J} MINCOST_(I.., J\\k, k)

Its cost is ``O*(2^{n - |I| - |J|} * 3^{|J|})`` table cells — the paper's
Classical Composition Lemma — which the counters measure exactly.  Stopping
the DP at prefix size ``k`` yields ``{FS(<I.., K>) : K subset of J, |K| = k}``,
the preprocessing step of the quantum algorithms.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .._bitops import bits_of, popcount, subsets_of_size
from ..analysis.counters import OperationCounters
from ..errors import DimensionError
from .compaction import compact
from .spec import FSState, ReductionRule


def fs_star_levels(
    base: FSState,
    j_mask: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    upto: Optional[int] = None,
) -> Dict[int, FSState]:
    """Run the FS* dynamic program over subsets of ``j_mask``.

    Parameters
    ----------
    base:
        The starting quadruple ``FS(<I_1, ..., I_m>)``.
    j_mask:
        Bitmask of the set ``J``; must be disjoint from ``base.mask``.
    upto:
        Stop after prefix size ``upto`` (defaults to ``|J|``).

    Returns
    -------
    dict
        Mapping each ``K`` sub-mask with ``|K| == upto`` to its optimal
        state ``FS(<I.., K>)``.  (States for smaller prefixes are internal
        and released as the DP advances, matching the paper's Remark 1 on
        space.)
    """
    if j_mask & base.mask:
        raise DimensionError(
            f"J mask {j_mask:#x} overlaps already-placed variables "
            f"{base.mask:#x}"
        )
    if j_mask & ~base.free_mask:
        raise DimensionError(f"J mask {j_mask:#x} mentions out-of-range variables")
    size_j = popcount(j_mask)
    if upto is None:
        upto = size_j
    if not 0 <= upto <= size_j:
        raise ValueError(f"upto={upto} out of range for |J|={size_j}")

    previous: Dict[int, FSState] = {0: base}
    if upto == 0:
        return {0: base}
    for k in range(1, upto + 1):
        current: Dict[int, FSState] = {}
        for kmask in subsets_of_size(j_mask, k):
            best: Optional[FSState] = None
            for i in bits_of(kmask):
                candidate = compact(previous[kmask & ~(1 << i)], i, rule, counters)
                if best is None or candidate.mincost < best.mincost:
                    best = candidate
            assert best is not None
            current[kmask] = best
            if counters is not None:
                counters.subsets_processed += 1
        previous = current
    return previous


def run_fs_star(
    base: FSState,
    j_mask: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> FSState:
    """Produce the single quadruple ``FS(<I_1, ..., I_m, J>)`` (Lemma 8)."""
    if j_mask == 0:
        return base
    levels = fs_star_levels(base, j_mask, rule, counters)
    return levels[j_mask]


# Type of "composable solvers": anything that extends a state over a mask.
# FS* is the base instance; the quantum OptOBDD wrappers in
# :mod:`repro.core.composed` share this signature (the paper's Gamma).
ComposableSolver = Callable[[FSState, int], FSState]


def make_fs_star_solver(
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
) -> ComposableSolver:
    """FS* packaged with fixed rule/counters as a :data:`ComposableSolver`."""

    def solver(base: FSState, j_mask: int) -> FSState:
        return run_fs_star(base, j_mask, rule, counters)

    return solver
