"""The paper's core contribution: exact optimal variable ordering.

* :func:`~repro.core.fs.run_fs` / :func:`~repro.core.fs.find_optimal_ordering`
  — the Friedman-Supowit ``O*(3^n)`` dynamic program (the DAC'87 result).
* :func:`~repro.core.fs_star.run_fs_star` — the composable FS* (Lemma 8).
* :func:`~repro.core.divide_conquer.opt_obdd` — ``OptOBDD(k, alpha)``
  (Theorem 10) with pluggable (simulated-quantum) minimum finding.
* :func:`~repro.core.composed.opt_obdd_composed` — the iterated composition
  of Section 4 (Theorem 13).
* :func:`~repro.core.bruteforce.brute_force_optimal` — the trivial
  ``O*(n! 2^n)`` baseline.
* :func:`~repro.core.reconstruct.build_diagram` /
  :func:`~repro.core.reconstruct.reconstruct_minimum_diagram` — emit the
  minimum diagram itself.
"""

from .astar import AStarResult, astar_optimal_ordering
from .bruteforce import BruteForceResult, brute_force_operation_bound, brute_force_optimal
from .budget import (
    DEFAULT_LADDER,
    Budget,
    BudgetExceeded,
    FallbackResult,
    RungAttempt,
    handle_signals,
    optimize_with_fallback,
    parse_ladder,
    run_ladder,
)
from .cache import (
    BatchError,
    BatchItem,
    BatchOutcome,
    CacheStats,
    ResultCache,
    TableKey,
    optimize_many,
    raw_table_key,
    state_key,
    table_key,
)
from .checkpoint import (
    CheckpointStore,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    corrupt_checkpoint,
    sweep_fingerprint,
)
from .certificate import (
    OptimalityCertificate,
    extract_certificate,
    verify_achievability,
    verify_certificate,
    verify_lower_bound,
)
from .compaction import compact, compact_python
from .constrained import (
    ConstrainedResult,
    order_satisfies,
    run_fs_constrained,
)
from .composed import (
    TABLE2_ALPHAS,
    TABLE2_BETAS,
    make_composed_solver,
    opt_obdd_composed,
)
from .engine import (
    EngineConfig,
    FrontierPolicy,
    SweepOutcome,
    available_kernels,
    get_kernel,
    register_kernel,
    run_layered_sweep,
)
from .executor import (
    ChunkResult,
    ChunkTask,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    SweepContext,
    ThreadBackend,
    available_backends,
    create_backend,
    get_backend,
    register_backend,
    shared_backend,
)
from .divide_conquer import (
    OptOBDDResult,
    SplitCheck,
    THEOREM10_ALPHAS,
    effective_levels,
    mincost_by_split,
    opt_obdd,
    opt_obdd_extend,
)
from .frontier import (
    DictFrontier,
    FrontierStore,
    PackedFrontier,
    PackedSlice,
    available_frontier_stores,
    create_frontier_store,
    get_frontier_store,
    register_frontier_store,
)
from .fs import FSResult, find_optimal_ordering, initial_state, run_fs, terminal_values
from .fs_star import fs_star_levels, make_fs_star_solver, run_fs_star
from .window import WindowResult, exact_window, window_sweep
from .reconstruct import Diagram, build_diagram, reconstruct_minimum_diagram
from .shared import (
    Forest,
    brute_force_shared,
    build_forest,
    count_shared_subfunctions,
    initial_state_shared,
    run_fs_shared,
)
from .spec import FSState, ReductionRule

__all__ = [
    "astar_optimal_ordering",
    "AStarResult",
    "Budget",
    "BudgetExceeded",
    "DEFAULT_LADDER",
    "FallbackResult",
    "RetryPolicy",
    "RungAttempt",
    "handle_signals",
    "optimize_with_fallback",
    "parse_ladder",
    "run_ladder",
    "BatchError",
    "BatchItem",
    "BatchOutcome",
    "CacheStats",
    "ResultCache",
    "TableKey",
    "optimize_many",
    "raw_table_key",
    "state_key",
    "table_key",
    "exact_window",
    "window_sweep",
    "WindowResult",
    "run_fs_shared",
    "Forest",
    "build_forest",
    "count_shared_subfunctions",
    "initial_state_shared",
    "brute_force_shared",
    "OptimalityCertificate",
    "extract_certificate",
    "verify_certificate",
    "verify_achievability",
    "verify_lower_bound",
    "run_fs_constrained",
    "ConstrainedResult",
    "order_satisfies",
    "ReductionRule",
    "FSState",
    "FSResult",
    "run_fs",
    "find_optimal_ordering",
    "initial_state",
    "terminal_values",
    "compact",
    "compact_python",
    "EngineConfig",
    "FrontierPolicy",
    "SweepOutcome",
    "CheckpointStore",
    "FaultInjector",
    "InjectedFault",
    "corrupt_checkpoint",
    "sweep_fingerprint",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "run_layered_sweep",
    "DictFrontier",
    "FrontierStore",
    "PackedFrontier",
    "PackedSlice",
    "available_frontier_stores",
    "create_frontier_store",
    "get_frontier_store",
    "register_frontier_store",
    "ChunkResult",
    "ChunkTask",
    "ExecutorBackend",
    "ProcessBackend",
    "SerialBackend",
    "SweepContext",
    "ThreadBackend",
    "available_backends",
    "create_backend",
    "get_backend",
    "register_backend",
    "shared_backend",
    "run_fs_star",
    "fs_star_levels",
    "make_fs_star_solver",
    "mincost_by_split",
    "SplitCheck",
    "opt_obdd",
    "opt_obdd_extend",
    "OptOBDDResult",
    "THEOREM10_ALPHAS",
    "effective_levels",
    "opt_obdd_composed",
    "make_composed_solver",
    "TABLE2_ALPHAS",
    "TABLE2_BETAS",
    "brute_force_optimal",
    "brute_force_operation_bound",
    "BruteForceResult",
    "Diagram",
    "build_diagram",
    "reconstruct_minimum_diagram",
]
