"""Algorithm FS: the exact ``O*(3^n)`` optimal-variable-ordering DP.

This is the paper's primary classical contribution (Friedman & Supowit,
DAC 1987; Theorem 5 in the supplied text).  For every subset ``I`` of the
``n`` variables, in order of cardinality, it computes the quadruple
``FS(I)`` — in particular ``MINCOST_I``, the minimum possible number of
nodes in the bottom ``|I|`` levels over all orderings that place exactly
the variables of ``I`` there — using the recurrence of Lemma 4::

    MINCOST_I = min_{k in I} ( MINCOST_{I \\ k} + Cost_k(f, pi_{(I\\k, k)}) )

The total work is ``sum_k C(n,k) * k * 2^{n-k} = O*(3^n)`` table cells,
which the :class:`~repro.analysis.counters.OperationCounters` instrument
measures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from .._bitops import bits_of
from ..analysis.counters import OperationCounters
from ..errors import DimensionError
from ..observability import Profiler
from ..truth_table import TruthTable
from .cache import (
    ResultCache,
    chain_result_maps,
    chain_widths,
    lookup_ordering,
    store_ordering,
    table_key,
)
from .checkpoint import FaultInjector, RetryPolicy
from .engine import EngineConfig, FrontierPolicy, run_layered_sweep
from .spec import FSState, ReductionRule

if TYPE_CHECKING:  # pragma: no cover - budget imports fs lazily
    from .budget import Budget
    from .executor import ExecutorBackend

CompactFn = Callable[..., FSState]


def initial_state(
    table: TruthTable,
    rule: ReductionRule = ReductionRule.BDD,
    track_nodes: bool = False,
) -> FSState:
    """The paper's ``FS(emptyset)``: ``TABLE_0`` is the truth table itself.

    For Boolean rules the table values are the terminal ids 0/1 directly.
    For :attr:`ReductionRule.MTBDD` each distinct function value gets its
    own terminal id (0, 1, 2, ... in increasing value order); the mapping
    is returned on the state via ``num_terminals`` and is reconstructed by
    callers through :func:`terminal_values`.
    """
    if rule is ReductionRule.MTBDD:
        values, inverse = np.unique(table.values, return_inverse=True)
        cells = inverse.astype(np.int64)
        num_terminals = int(values.shape[0])
    elif rule is ReductionRule.CBDD:
        if not table.is_boolean():
            raise DimensionError(
                "cbdd rule requires a Boolean table; "
                "use ReductionRule.MTBDD for multi-valued functions"
            )
        # Cells hold edges over the single TRUE terminal (node 0):
        # value 1 -> regular edge 0, value 0 -> complemented edge 1.
        cells = (1 - table.values).astype(np.int64)
        num_terminals = 1
    else:
        if not table.is_boolean():
            raise DimensionError(
                f"{rule.value} rule requires a Boolean table; "
                "use ReductionRule.MTBDD for multi-valued functions"
            )
        cells = table.values.astype(np.int64)
        num_terminals = 2
    return FSState(
        n=table.n,
        mask=0,
        pi=(),
        mincost=0,
        table=cells,
        num_terminals=num_terminals,
        nodes={} if track_nodes else None,
    )


def terminal_values(table: TruthTable, rule: ReductionRule) -> List[int]:
    """Function value carried by each terminal id under ``rule``.

    For :attr:`ReductionRule.CBDD` the single terminal node carries TRUE;
    FALSE is reached via a complemented edge.
    """
    if rule is ReductionRule.MTBDD:
        return [int(v) for v in np.unique(table.values)]
    if rule is ReductionRule.CBDD:
        return [1]
    return [0, 1]


@dataclass
class FSResult:
    """Output of :func:`run_fs` (the paper's ``FS([n])`` plus conveniences)."""

    n: int
    rule: ReductionRule
    order: Tuple[int, ...]
    """Optimal variable ordering, read-first to read-last."""

    pi: Tuple[int, ...]
    """The same ordering in the paper's convention (read-last first)."""

    mincost: int
    """``MINCOST_[n]``: internal nodes of the minimum diagram."""

    num_terminals: int
    """Terminals of the diagram (2 for BDD/ZDD; distinct values for MTBDD)."""

    mincost_by_subset: Dict[int, int]
    """``MINCOST_I`` for every subset mask ``I`` (the full DP table)."""

    best_last: Dict[int, int]
    """For each non-empty subset mask, the minimizing last variable ``i*``."""

    level_cost_by_choice: Dict[Tuple[int, int], int]
    """``Cost_i(f, pi_{(I, i)})`` for every pair ``(I_mask, i)`` with ``i``
    not in ``I`` — the width of variable ``i``'s level when placed directly
    above the bottom set ``I``.  Well-defined by Lemma 3; recorded for every
    candidate the DP evaluates."""

    counters: OperationCounters = field(default_factory=OperationCounters)

    from_cache: bool = False
    """True when this result was served by a :class:`ResultCache` hit.
    The ordering, ``mincost`` and width profile are exact, but the DP
    maps (``mincost_by_subset`` etc.) cover only the optimal chain's
    subsets — :meth:`optimal_orderings` needs an uncached run."""

    @property
    def size(self) -> int:
        """Total node count including terminals (Figure 1 convention)."""
        return self.mincost + self.num_terminals

    def width_profile(self) -> List[int]:
        """Level width at each position of :attr:`order` (top to bottom)."""
        return chain_widths(self.order, self.level_cost_by_choice, self.n)

    def optimal_orderings(self) -> List[Tuple[int, ...]]:
        """Enumerate *all* optimal orderings (read-first to read-last).

        Walks every minimizing choice of the DP, not just the recorded
        ``best_last`` chain.  The count can be exponential for highly
        symmetric functions; intended for analysis on small ``n``.
        Unavailable on cache-hit results, whose maps cover one chain only.
        """
        if self.from_cache:
            raise ValueError(
                "optimal_orderings() needs the full DP table; this result "
                "came from a cache hit — rerun with cache=None to enumerate"
            )
        full = (1 << self.n) - 1
        pis: List[Tuple[int, ...]] = []

        def walk(mask: int, suffix: Tuple[int, ...]) -> None:
            # `suffix` accumulates the paper's pi left-to-right: the first
            # variable chosen (for the full mask) is pi[n], read first.
            if mask == 0:
                pis.append(suffix)
                return
            target = self.mincost_by_subset[mask]
            for i in bits_of(mask):
                prev_mask = mask & ~(1 << i)
                width = self.level_cost(prev_mask, i)
                if self.mincost_by_subset[prev_mask] + width == target:
                    walk(prev_mask, (i,) + suffix)

        walk(full, ())
        return [tuple(reversed(pi)) for pi in pis]

    def level_cost(self, prev_mask: int, var: int) -> int:
        """``Cost_var(f, pi_{(prev, var)})``: the width of ``var``'s level
        when placed directly above the bottom set ``prev_mask``."""
        return self.level_cost_by_choice[(prev_mask, var)]


def run_fs(
    table: TruthTable,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    engine: str = "numpy",
    jobs: int = 1,
    backend: Union[str, "ExecutorBackend"] = "thread",
    frontier: Union[str, FrontierPolicy] = FrontierPolicy.FULL,
    frontier_store: str = "dict",
    profiler: Optional[Profiler] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    fault_injector: Optional["FaultInjector"] = None,
    cache: Optional[ResultCache] = None,
    budget: Optional["Budget"] = None,
    io_retry: Optional[RetryPolicy] = None,
    max_pool_rebuilds: Optional[int] = None,
) -> FSResult:
    """Run the full Friedman-Supowit dynamic program.

    Parameters
    ----------
    table:
        The function's truth table (the paper's input representation;
        use :func:`repro.expr.to_truth_table` for other representations).
    rule:
        Diagram variant to minimize (BDD, ZDD, or MTBDD).
    counters:
        Optional instrumentation sink.
    engine:
        Name of a registered compaction kernel — ``"numpy"`` (vectorized)
        or ``"python"`` (the executable specification; exponentially
        slower, for validation/ablation).  See
        :func:`repro.core.engine.available_kernels`.
    jobs:
        Fan each DP layer over this many workers (masks of equal
        cardinality are independent).  Results and counters are
        bit-identical for every value.
    backend:
        Where those workers run — ``"serial"``, ``"thread"`` (default)
        or ``"process"`` for real multicore throughput, or a live
        :class:`repro.core.executor.ExecutorBackend` instance to share
        one pool across several runs.  Results and counters are
        bit-identical across backends (see :mod:`repro.core.executor`).
    frontier:
        Layer-retention policy; ``"mincost"`` trades recompute time for
        an ``O(2^n)`` peak frontier (see
        :class:`repro.core.engine.FrontierPolicy`).
    frontier_store:
        Layer *representation* — ``"dict"`` (historical, default) or
        ``"packed"`` for contiguous narrow-width column storage with a
        several-fold smaller peak frontier and exact byte accounting
        (see :mod:`repro.core.frontier`).  Results and counters are
        bit-identical across stores.
    profiler:
        Optional :class:`repro.observability.Profiler` receiving the
        per-layer wall-clock/memory trajectory (including checkpoint
        write/load phase timings).
    checkpoint_dir:
        Snapshot every finished DP layer into this directory (see
        :mod:`repro.core.checkpoint`), making the run crash-safe.
    resume:
        With ``checkpoint_dir``, restart from the newest valid snapshot;
        the resumed run is bit-identical — results *and* counters — to
        an uninterrupted one.
    fault_injector:
        Test hook simulating crashes/corruption at layer boundaries.
    cache:
        Optional :class:`repro.core.cache.ResultCache`.  The table is
        canonicalized (support reduction, permutation, complement where
        sound for ``rule``) and the cache consulted before any kernel
        work; a hit returns in ``O*(2^n)`` with *zero* compactions, the
        stored ordering mapped back through the canonicalizing
        permutation.  A miss runs the DP and stores the answer.
    budget:
        Optional :class:`repro.core.budget.Budget` (deadline, frontier
        caps, cancellation).  Checked at every DP layer boundary; an
        exhausted budget raises :class:`~repro.errors.BudgetExceeded`
        recording the layers completed, the best-so-far bound and (with
        ``checkpoint_dir``) the last committed checkpoint, from which a
        later resume under a bigger budget continues bit-identically.
        For automatic degradation to cheaper heuristics instead of an
        exception, see :func:`repro.core.budget.optimize_with_fallback`.
    io_retry:
        Optional :class:`repro.core.checkpoint.RetryPolicy` retrying
        transient checkpoint-write failures with exponential backoff.
    max_pool_rebuilds:
        Self-healing budget of the ``"process"`` backend: how many times
        one layer may rebuild a SIGKILLed worker pool (retrying only the
        chunks whose results were not yet merged) before the sweep gives
        up with :class:`~repro.errors.ExecutorBrokenError` carrying the
        last committed checkpoint.  ``None`` keeps the backend default
        (2); ignored by the in-process backends.

    Returns
    -------
    FSResult
        With the optimal ordering, ``MINCOST_[n]``, and the full
        ``MINCOST_I`` table for downstream analysis (Lemma 9 checks,
        enumeration of all optima, ...).
    """
    n = table.n
    if counters is None:
        counters = OperationCounters()
    config = EngineConfig(
        kernel=engine, jobs=jobs, backend=backend, frontier=frontier,
        frontier_store=frontier_store, profiler=profiler,
        checkpoint_dir=checkpoint_dir, resume=resume,
        fault_injector=fault_injector, cache=cache,
        budget=budget, io_retry=io_retry,
        max_pool_rebuilds=max_pool_rebuilds,
    )
    key = None
    if cache is not None:
        key = table_key([table], rule, spec="fs", profiler=profiler)
        hit = lookup_ordering(cache, key, counters, profiler)
        if hit is not None:
            mincost, order, widths = hit
            maps = chain_result_maps(order, widths)
            return FSResult(
                n=n,
                rule=rule,
                order=tuple(order),
                pi=tuple(reversed(order)),
                mincost=mincost,
                num_terminals=len(terminal_values(table, rule)),
                mincost_by_subset=maps[0],
                best_last=maps[1],
                level_cost_by_choice=maps[2],
                counters=counters,
                from_cache=True,
            )
    if profiler is not None:
        with profiler.phase("prepare"):
            state0 = initial_state(table, rule)
        profiler.meta.setdefault("n", n)
        profiler.meta.setdefault("rule", rule.value)
        profiler.meta.setdefault("kernel", engine)
        profiler.meta.setdefault("jobs", jobs)
        profiler.meta.setdefault(
            "backend",
            backend if isinstance(backend, str)
            else getattr(backend, "name", type(backend).__name__),
        )
        profiler.meta.setdefault(
            "frontier", config.frontier.value
        )
        profiler.meta.setdefault(
            "frontier_store",
            frontier_store if isinstance(frontier_store, str)
            else getattr(frontier_store, "name", frontier_store.__name__),
        )
        if checkpoint_dir is not None:
            profiler.meta.setdefault("checkpoint_dir", checkpoint_dir)
            profiler.meta.setdefault("resume", resume)
    else:
        state0 = initial_state(table, rule)
    full = (1 << n) - 1
    outcome = run_layered_sweep(
        state0, full, rule=rule, counters=counters, config=config
    )
    final = outcome.frontier[full]
    pi = final.pi
    order = tuple(reversed(pi))
    if cache is not None and key is not None:
        store_ordering(
            cache,
            key,
            order,
            chain_widths(order, outcome.level_cost_by_choice, n),
            counters,
            profiler,
        )
    return FSResult(
        n=n,
        rule=rule,
        order=order,
        pi=pi,
        mincost=final.mincost,
        num_terminals=final.num_terminals,
        mincost_by_subset=outcome.mincost_by_subset,
        best_last=outcome.best_last,
        level_cost_by_choice=outcome.level_cost_by_choice,
        counters=counters,
    )


def dp_over_all_subsets(
    state0: FSState,
    compact_fn: Union[CompactFn, str],
    rule: ReductionRule,
    counters: OperationCounters,
) -> Tuple[FSState, Dict[int, int], Dict[int, int], Dict[Tuple[int, int], int]]:
    """The FS dynamic program over every subset of the free variables.

    Compatibility wrapper over :func:`repro.core.engine.run_layered_sweep`
    (which now owns the sweep); kept because the Lemma 4 recurrence is
    documented against this name.  ``compact_fn`` may be a registered
    kernel name or a raw kernel callable.
    """
    if callable(compact_fn):
        kernel_name = _kernel_name_of(compact_fn)
    else:
        kernel_name = compact_fn
    full = (1 << state0.n) - 1
    outcome = run_layered_sweep(
        state0,
        full & ~state0.mask,
        rule=rule,
        counters=counters,
        config=EngineConfig(kernel=kernel_name),
    )
    final = outcome.frontier[full & ~state0.mask]
    return (
        final,
        outcome.mincost_by_subset,
        outcome.best_last,
        outcome.level_cost_by_choice,
    )


def _kernel_name_of(fn: CompactFn) -> str:
    """Map a raw kernel callable back to its registered name."""
    from .engine import _KERNELS, available_kernels

    available_kernels()  # force built-in registration
    for name, registered in _KERNELS.items():
        if registered is fn:
            return name
    raise ValueError(f"{fn!r} is not a registered compaction kernel")


def find_optimal_ordering(
    source,
    n: Optional[int] = None,
    rule: ReductionRule = ReductionRule.BDD,
    engine: str = "numpy",
    jobs: int = 1,
    backend: Union[str, "ExecutorBackend"] = "thread",
) -> FSResult:
    """Convenience front end accepting any evaluable representation.

    ``source`` may be a :class:`~repro.truth_table.TruthTable`, a callable
    of ``n`` Boolean arguments (pass ``n``), or any object from
    :mod:`repro.expr` exposing ``num_vars``/``evaluate`` — this realizes
    the paper's Corollary 2 (truth-table preparation in ``O*(2^n)`` from a
    polynomial-time-evaluable representation).
    """
    from ..expr import to_truth_table  # deferred: expr imports this package

    if isinstance(source, TruthTable):
        table = source
    else:
        table = to_truth_table(source, n)
    return run_fs(table, rule=rule, engine=engine, jobs=jobs, backend=backend)
