"""The execution engine shared by every FS-family dynamic program.

All five DP entry points — :func:`repro.core.fs.run_fs`,
:func:`repro.core.shared.run_fs_shared`, the precedence-constrained DP,
the sliding-window reorderer and FS* — are instances of one computation:
sweep the subsets of a universe mask in order of cardinality, computing
each subset's best state from its one-smaller predecessors via a table
compaction, and retain the finished layer as the frontier for the next.
This module owns that sweep; the entry points only prepare a base state
and interpret the outcome.  Centralizing it buys three things at once:

* a **kernel registry** — compaction implementations register by name
  (:func:`register_kernel`) and are selectable uniformly everywhere,
  including the CLI, instead of the old hardcoded ``if engine ==``
  dispatch;
* **layer parallelism** — masks of equal cardinality are independent
  (Lemma 4's recurrence only reads the previous layer), so ``jobs=N``
  fans each layer over a pluggable
  :class:`~repro.core.executor.ExecutorBackend` (``serial``, ``thread``
  or ``process``, selected via ``EngineConfig(backend=...)``; see
  :mod:`repro.core.executor`).  Each chunk tallies into its own
  :class:`~repro.analysis.counters.OperationCounters` and the engine
  merges them in deterministic chunk order, so results *and counters*
  are bit-identical across backends and job counts;
* a **frontier policy** — the retained layer is the memory ceiling
  (``C(n, n/2)`` states of ``2^{n/2}`` cells each at the waist).
  :attr:`FrontierPolicy.MINCOST_ONLY` keeps only ``(pi, mincost)``
  skeletons and rematerializes predecessor tables on demand by replaying
  the recorded chain, trading ``O(k)`` extra compactions per candidate
  for an ``O(2^n)`` peak frontier.  Lemma 3 guarantees the replayed
  chain yields the same level costs as any other chain through the same
  subsets, so every result — including the full ``MINCOST_I`` table and
  the enumeration of all optimal orderings — is unchanged.

A :class:`~repro.observability.Profiler` attached to the
:class:`EngineConfig` records per-layer wall-clock, subset throughput,
frontier footprint, counter snapshots and checkpoint write/load timings.

Crash safety: with ``checkpoint_dir`` set on the :class:`EngineConfig`,
every finished layer is snapshotted through
:mod:`repro.core.checkpoint`, and ``resume=True`` restarts the sweep
from the last valid snapshot — results and counters bit-identical to an
uninterrupted run.  Because every DP entry point routes through
:func:`run_layered_sweep`, all of them inherit this for free.

Resource governance: a :class:`~repro.core.budget.Budget` on the config
is checked at every layer boundary — before a layer starts and after it
(and its checkpoint) commits, never mid-kernel — so a deadline, a
frontier-size cap or a cooperative cancellation aborts the sweep
promptly and deterministically with a
:class:`~repro.errors.BudgetExceeded` that names the layers completed,
the best-so-far bound and the last durable checkpoint.  All five DP
entry points inherit this the same way they inherit crash safety.
"""

from __future__ import annotations

import enum
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union,
)

from .._bitops import popcount, subsets_of_size
from ..analysis.counters import OperationCounters
from ..errors import BudgetExceeded, DimensionError, ExecutorBrokenError
from ..observability import Profiler
from .checkpoint import (
    CheckpointStore, FaultInjector, RetryPolicy, Skeleton, sweep_fingerprint,
)
from .executor import (
    ExecutorBackend, SweepContext, available_backends, get_backend,
    materialize_entry, resolve_backend, split_chunks,
)
from .frontier import (
    FrontierStore, available_frontier_stores, create_frontier_store,
    get_frontier_store,
)
from .spec import FSState, ReductionRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache imports spec)
    from .budget import Budget
    from .cache import ResultCache

KernelFn = Callable[..., FSState]
"""Signature of a compaction kernel:
``kernel(state, var, rule, counters) -> FSState``."""

_KERNELS: Dict[str, KernelFn] = {}
_BUILTINS_LOADED = False


def register_kernel(name: str) -> Callable[[KernelFn], KernelFn]:
    """Class decorator registering a compaction kernel under ``name``.

    Kernels self-register at import time (see
    :mod:`repro.core.compaction` for the built-in ``numpy`` and
    ``python`` kernels); registered names become valid for every
    ``engine=`` parameter and the CLI ``--engine`` flag.
    """

    def decorate(fn: KernelFn) -> KernelFn:
        _KERNELS[name] = fn
        return fn

    return decorate


def _ensure_builtins() -> None:
    # The built-in kernels live in repro.core.compaction, which imports
    # this module for the decorator; defer the reverse import until a
    # kernel is actually looked up to keep the modules acyclic.
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        from . import compaction  # noqa: F401  (import triggers registration)

        _BUILTINS_LOADED = True


def get_kernel(name: str) -> KernelFn:
    """Resolve a registered kernel; raises ``ValueError`` on unknown names."""
    _ensure_builtins()
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {available_kernels()}"
        ) from None


def available_kernels() -> List[str]:
    """Registered kernel names, sorted (for CLI choices and errors)."""
    _ensure_builtins()
    return sorted(_KERNELS)


class FrontierPolicy(enum.Enum):
    """What each finished DP layer retains."""

    FULL = "full"
    """Keep complete :class:`FSState` objects, tables included (the
    fastest option and the historical behavior)."""

    MINCOST_ONLY = "mincost"
    """Keep only ``(pi, mincost)`` per subset; predecessor tables are
    rematerialized on demand by replaying the recorded chain.  Peak
    frontier memory drops from ``C(n,k) * 2^{n-k}`` cells to ``O(2^n)``
    at the cost of ``O(k)`` extra compactions per candidate (tallied
    under the ``recompute_compactions`` / ``recompute_cells`` extra
    counters, never in the paper-facing totals)."""


def coerce_policy(policy: Union[str, "FrontierPolicy"]) -> "FrontierPolicy":
    if isinstance(policy, FrontierPolicy):
        return policy
    try:
        return FrontierPolicy(policy)
    except ValueError:
        raise ValueError(
            f"unknown frontier policy {policy!r}; expected one of "
            f"{[p.value for p in FrontierPolicy]}"
        ) from None


@dataclass(kw_only=True)
class EngineConfig:
    """How the engine executes a sweep (orthogonal to *what* it computes).

    Construction is keyword-only: every field names an orthogonal
    execution knob, and positional construction silently broke whenever
    a knob was added between releases.
    """

    kernel: str = "numpy"
    jobs: int = 1

    backend: Union[str, ExecutorBackend] = "thread"
    """Where layer chunks execute (see :mod:`repro.core.executor`):
    ``"serial"``, ``"thread"`` (the historical default), ``"process"``
    for real multicore throughput, or a live
    :class:`~repro.core.executor.ExecutorBackend` instance whose pool the
    caller owns and wants shared across several sweeps.  Results and
    counters are bit-identical across backends; only the process
    backend's ``tasks_shipped`` / ``bytes_shipped`` transport extras
    differ."""

    frontier: FrontierPolicy = FrontierPolicy.FULL

    frontier_store: Union[str, type] = "dict"
    """How retained layers are *represented* (orthogonal to the
    :class:`FrontierPolicy`, which decides *what* is retained): a name
    from the frontier-store registry (see :mod:`repro.core.frontier`) —
    ``"dict"`` for the historical ``mask -> FSState`` mapping, ``"packed"``
    for contiguous narrow-width column storage — or a
    :class:`~repro.core.frontier.FrontierStore` subclass.  Results and
    operation counters are bit-identical across stores; only memory
    footprint (and the process backend's ``bytes_shipped`` transport
    extra) changes.  Checkpoints are store-agnostic: a sweep may resume
    under a different store than the one that wrote the snapshot."""

    profiler: Optional[Profiler] = None

    checkpoint_dir: Optional[str] = None
    """Directory receiving one snapshot per finished layer (see
    :mod:`repro.core.checkpoint`).  ``None`` disables checkpointing."""

    resume: bool = False
    """Restart from the newest valid checkpoint in ``checkpoint_dir``
    matching this sweep's fingerprint; a cold start if none exists, a
    :class:`~repro.errors.CheckpointError` if the newest one is damaged."""

    fault_injector: Optional[FaultInjector] = None
    """Test hook: notified after each layer commits; may crash the sweep,
    corrupt the just-written checkpoint, or — through the process
    backend — SIGKILL the worker executing a chosen chunk (see
    :class:`repro.core.checkpoint.FaultInjector`)."""

    max_pool_rebuilds: Optional[int] = None
    """Self-healing budget of the process backend: how many times one
    layer may rebuild a broken worker pool (re-creating the workers and
    re-shipping the shared base table, retrying only unmerged chunks)
    before the sweep raises
    :class:`~repro.errors.ExecutorBrokenError`.  ``None`` keeps the
    backend default (2); ``0`` disables healing.  Only consulted when
    ``backend`` is a *name* — a caller-owned instance keeps whatever its
    creator configured."""

    checkpoint_tag: str = ""
    """Extra entry-point state folded into the checkpoint fingerprint
    (e.g. the constrained DP's precedence closure, which the engine only
    sees as an opaque ``subset_filter`` callable)."""

    cache: Optional["ResultCache"] = None
    """Canonical result cache (see :mod:`repro.core.cache`).  The engine
    itself never reads it — caching happens at the DP entry points, which
    know how to key their problem — but carrying it here lets entry
    points that only receive a config (``window_sweep``, ``fs_star``)
    consult the same cache as their callers."""

    budget: Optional["Budget"] = None
    """Resource envelope (see :mod:`repro.core.budget`).  Checked at
    every layer boundary of the sweep: before a layer starts (deadline /
    cancellation) and after it commits (deadline / cancellation /
    frontier caps, evaluated *after* the layer's checkpoint is durably
    written, so the :class:`~repro.errors.BudgetExceeded` it raises
    always names a resumable state)."""

    io_retry: Optional[RetryPolicy] = None
    """Retry-with-backoff policy for checkpoint writes (transient
    ``OSError`` only — validation failures never retry); retries tally
    the ``retries`` extra counter."""

    strategy: str = "exact"
    """Which solve strategy this config selects (the ``repro.solve``
    ``strategy=`` axis): ``"exact"`` for the FS dynamic program,
    ``"fallback"`` for the degradation ladder
    (:func:`repro.core.budget.run_ladder`), ``"portfolio"`` to race every
    registered heuristic (:func:`repro.portfolio.run_portfolio`), or any
    single registered strategy name (:func:`repro.portfolio
    .available_strategies`).  The engine itself only ever executes exact
    sweeps; this field is carried so config-driven entry points dispatch
    consistently."""

    def __post_init__(self) -> None:
        self.frontier = coerce_policy(self.frontier)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        # Resolve eagerly so configuration errors surface at call sites.
        get_kernel(self.kernel)
        if isinstance(self.frontier_store, str):
            get_frontier_store(self.frontier_store)
        elif not (isinstance(self.frontier_store, type)
                  and issubclass(self.frontier_store, FrontierStore)):
            raise ValueError(
                f"frontier_store must be a registered name "
                f"{available_frontier_stores()} or a FrontierStore "
                f"subclass, got {self.frontier_store!r}"
            )
        if isinstance(self.backend, str):
            get_backend(self.backend)
        elif not isinstance(self.backend, ExecutorBackend):
            raise ValueError(
                f"backend must be a registered name {available_backends()} "
                f"or an ExecutorBackend instance, got {self.backend!r}"
            )
        if self.strategy not in ("exact", "fallback", "portfolio"):
            # Deferred: repro.portfolio imports this module at top level.
            from ..portfolio import get_strategy

            get_strategy(self.strategy)  # raises OrderingError if unknown


_Entry = Union[FSState, Skeleton]


@dataclass
class SweepOutcome:
    """Everything a DP entry point may need from a finished sweep.

    Masks are *relative* to the swept universe: for the full-function
    DPs (``base.mask == 0``) they coincide with absolute variable masks;
    for FS* they are sub-masks of ``J`` exactly as
    :func:`repro.core.fs_star.fs_star_levels` has always returned them.
    """

    frontier: Dict[int, FSState]
    """States of the final layer (``|K| == upto``), fully materialized."""

    mincost_by_subset: Dict[int, int]
    """``MINCOST`` for every finalized subset, including the base (mask 0)."""

    best_last: Dict[int, int]
    """For each finalized non-empty subset, the minimizing last variable."""

    level_cost_by_choice: Dict[Tuple[int, int], int]
    """``Cost_i`` for every evaluated candidate, keyed by the predecessor
    state's *absolute* mask and the placed variable."""

    subsets_processed: int = 0
    """Subsets finalized across all layers (== feasible subsets when a
    filter was active)."""


def run_layered_sweep(
    base: FSState,
    universe_mask: int,
    rule: ReductionRule = ReductionRule.BDD,
    counters: Optional[OperationCounters] = None,
    config: Optional[EngineConfig] = None,
    upto: Optional[int] = None,
    subset_filter: Optional[Callable[[int], bool]] = None,
) -> SweepOutcome:
    """Sweep all sub-masks of ``universe_mask`` in cardinality order.

    Parameters
    ----------
    base:
        Starting state; ``universe_mask`` must be disjoint from
        ``base.mask`` and within ``base.free_mask``.
    upto:
        Stop after layer ``upto`` (defaults to ``popcount(universe_mask)``);
        the returned frontier is that layer.
    subset_filter:
        Optional feasibility predicate over relative masks; filtered
        subsets are never computed and never serve as predecessors (the
        precedence-constrained DP).  A feasible subset none of whose
        predecessors were feasible raises
        :class:`~repro.errors.OrderingError`.
    """
    if config is None:
        config = EngineConfig()
    if counters is None:
        counters = OperationCounters()
    kernel = get_kernel(config.kernel)
    profiler = config.profiler

    if universe_mask & base.mask:
        raise DimensionError(
            f"universe mask {universe_mask:#x} overlaps already-placed "
            f"variables {base.mask:#x}"
        )
    if universe_mask & ~((1 << base.n) - 1):
        raise DimensionError(
            f"universe mask {universe_mask:#x} mentions out-of-range variables"
        )
    size_u = popcount(universe_mask)
    if upto is None:
        upto = size_u
    if not 0 <= upto <= size_u:
        raise ValueError(f"upto={upto} out of range for |universe|={size_u}")

    mincost_by_subset: Dict[int, int] = {0: base.mincost}
    best_last: Dict[int, int] = {}
    level_cost_by_choice: Dict[Tuple[int, int], int] = {}
    subsets_processed = 0

    previous: FrontierStore = create_frontier_store(config.frontier_store)
    previous.put(0, base)
    if upto == 0:
        return SweepOutcome(
            frontier={0: base},
            mincost_by_subset=mincost_by_subset,
            best_last=best_last,
            level_cost_by_choice=level_cost_by_choice,
        )

    budget = config.budget
    last_checkpoint_path: Optional[str] = None
    if budget is not None:
        budget.ensure_armed()

    store: Optional[CheckpointStore] = None
    counters_baseline: Optional[OperationCounters] = None
    start_k = 1
    if config.checkpoint_dir is not None:
        store = CheckpointStore(
            config.checkpoint_dir,
            sweep_fingerprint(
                base=base,
                universe_mask=universe_mask,
                rule=rule.value,
                upto=upto,
                kernel=config.kernel,
                frontier=config.frontier.value,
                tag=config.checkpoint_tag,
            ),
            retry=config.io_retry,
            on_retry=lambda attempt, exc: counters.add_extra("retries"),
        )
        # Counter deltas are checkpointed relative to the sweep's start,
        # so a caller-prepopulated counters object restores exactly.
        counters_baseline = counters.copy()
        if config.resume:
            with (profiler.phase("checkpoint_load") if profiler is not None
                  else nullcontext()):
                restored = store.load_latest(upto)
            if restored is not None:
                # Checkpoints hold entry dicts regardless of the store
                # that wrote them; repack under the configured store so a
                # resume may switch representations freely.
                previous = create_frontier_store(config.frontier_store)
                previous.extend(restored.entries)
                mincost_by_subset = restored.mincost_by_subset
                mincost_by_subset.setdefault(0, base.mincost)
                best_last = restored.best_last
                level_cost_by_choice = restored.level_cost_by_choice
                subsets_processed = restored.subsets_processed
                counters.merge(restored.counter_delta)
                start_k = restored.layer + 1
                last_checkpoint_path = restored.path

    backend, engine_owns_backend = resolve_backend(
        config.backend, max_pool_rebuilds=config.max_pool_rebuilds
    )
    backend.begin_sweep(
        SweepContext(
            base=base,
            kernel=config.kernel,
            rule=rule,
            jobs=config.jobs,
            counters=counters,
            budget=budget,
            profiler=profiler,
            fault_injector=config.fault_injector,
        )
    )
    try:
        for k in range(start_k, upto + 1):
            if budget is not None:
                # Pre-layer boundary check (deadline/cancellation only):
                # catches a resume that is already over budget and a
                # cancellation that arrived between layers.
                with (profiler.phase("budget_check") if profiler is not None
                      else nullcontext()):
                    budget.check(
                        counters=counters,
                        layers_completed=k - 1,
                        best_bound=previous.min_mincost(),
                        checkpoint_path=last_checkpoint_path,
                        where=f"layer boundary (before k={k})",
                    )
            layer_masks = [
                mask
                for mask in subsets_of_size(universe_mask, k)
                if subset_filter is None or subset_filter(mask)
            ]
            # The last layer is the caller-visible frontier and must carry
            # real tables; intermediate layers may keep skeletons.
            retain_full = (
                config.frontier is FrontierPolicy.FULL or k == upto
            )
            started = time.perf_counter()
            chunks = split_chunks(layer_masks, config.jobs)
            try:
                parts = backend.run_layer(k, chunks, previous, retain_full)
            except ExecutorBrokenError as exc:
                # The backend knows its pool died; only the engine knows
                # where the run can restart.  Layers below k are durably
                # committed, so a resume from this path re-runs exactly
                # the broken layer onward.
                if exc.checkpoint_path is None:
                    exc.checkpoint_path = last_checkpoint_path
                raise
            if any(part.cancelled for part in parts):
                # A process worker observed the mirrored cancellation
                # event and stopped mid-layer.  Discard the partial layer
                # wholesale (no merge, no checkpoint) so the abort always
                # describes the last *committed* boundary and a resume
                # with a bigger budget replays layer k from scratch,
                # bit-identically.
                best = previous.min_mincost()
                where = f"mid-layer cancellation (during k={k})"
                if budget is not None:
                    with (profiler.phase("budget_check") if profiler is not None
                          else nullcontext()):
                        budget.check(
                            counters=counters,
                            layers_completed=k - 1,
                            best_bound=best,
                            checkpoint_path=last_checkpoint_path,
                            where=where,
                        )
                raise BudgetExceeded(
                    f"sweep cancelled during layer k={k}; "
                    "partial results discarded",
                    reason="cancelled",
                    layers_completed=k - 1,
                    best_bound=best,
                    checkpoint_path=last_checkpoint_path,
                    where=where,
                )
            current = create_frontier_store(config.frontier_store)
            # Merge strictly in chunk order: results are keyed by
            # disjoint masks, and counter merge order is fixed, so the
            # outcome is independent of where the chunks ran.
            for part in parts:
                current.absorb(part.entries, part.packed)
                mincost_by_subset.update(part.mincost)
                best_last.update(part.best_last)
                level_cost_by_choice.update(part.level_cost)
                subsets_processed += part.processed
                counters.merge(part.counters)
            previous = current
            if profiler is not None:
                profiler.record_layer(
                    k=k,
                    subsets=len(current),
                    wall_seconds=time.perf_counter() - started,
                    frontier_states=len(current),
                    frontier_bytes=current.nbytes(),
                    counters=counters.snapshot(),
                )
            checkpoint_path: Optional[str] = None
            if store is not None:
                assert counters_baseline is not None
                with (profiler.phase("checkpoint_write")
                      if profiler is not None else nullcontext()):
                    checkpoint_path = store.save_layer(
                        k=k,
                        entries=current,
                        mincost_by_subset=mincost_by_subset,
                        best_last=best_last,
                        level_cost_by_choice=level_cost_by_choice,
                        subsets_processed=subsets_processed,
                        counter_delta=counters.diff(counters_baseline),
                    )
            if checkpoint_path is not None:
                last_checkpoint_path = checkpoint_path
            if config.fault_injector is not None:
                config.fault_injector.on_layer_committed(k, checkpoint_path)
            if budget is not None:
                # Post-layer boundary check: the layer (and its
                # checkpoint, when enabled) is fully committed, so the
                # raise leaves a resumable state and the frontier caps
                # see the layer that actually holds the memory.
                with (profiler.phase("budget_check") if profiler is not None
                      else nullcontext()):
                    budget.check(
                        counters=counters,
                        frontier_entries=(
                            len(current)
                            if budget.max_frontier_entries is not None
                            else None
                        ),
                        frontier_bytes=(
                            # The store's own accounting — exact column
                            # payload bytes for packed stores, the
                            # documented estimate for dict stores.
                            current.nbytes()
                            if budget.max_frontier_bytes is not None
                            else None
                        ),
                        layers_completed=k,
                        best_bound=current.min_mincost(),
                        checkpoint_path=last_checkpoint_path,
                        where=f"layer boundary (after k={k})",
                    )
    finally:
        backend.end_sweep()
        if engine_owns_backend:
            backend.close()

    frontier = {
        mask: materialize_entry(base, entry, kernel, rule, counters)
        for mask, entry in previous.items()
    }
    return SweepOutcome(
        frontier=frontier,
        mincost_by_subset=mincost_by_subset,
        best_last=best_last,
        level_cost_by_choice=level_cost_by_choice,
        subsets_processed=subsets_processed,
    )
