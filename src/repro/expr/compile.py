"""Symbolic compilation: representations -> BDD nodes via apply operators.

:func:`repro.expr.convert.to_truth_table` always pays ``O(2^n)``; when the
function's BDD is small under the chosen ordering, compiling the
representation *symbolically* (Bryant's apply) is exponentially cheaper.
This is how production tools actually build BDDs from circuits; it also
closes the loop for Corollary 2: tabulate-then-minimize and
compile-then-minimize must agree, which the tests assert.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..bdd.manager import BDD
from ..errors import EvaluationError
from .ast import And, Const, Expr, Not, Or, Var, Xor
from .circuit import Circuit, _GATES
from .normal_forms import CNF, DNF


def compile_expr(manager: BDD, expr: Expr) -> int:
    """Compile an AST into ``manager`` and return the root node id."""
    if isinstance(expr, Const):
        return manager.true if expr.value else manager.false
    if isinstance(expr, Var):
        return manager.var(expr.index)
    if isinstance(expr, Not):
        return manager.apply_not(compile_expr(manager, expr.operand))
    if isinstance(expr, And):
        result = manager.true
        for operand in expr.operands:
            result = manager.apply_and(result, compile_expr(manager, operand))
        return result
    if isinstance(expr, Or):
        result = manager.false
        for operand in expr.operands:
            result = manager.apply_or(result, compile_expr(manager, operand))
        return result
    if isinstance(expr, Xor):
        result = manager.false
        for operand in expr.operands:
            result = manager.apply_xor(result, compile_expr(manager, operand))
        return result
    raise TypeError(f"cannot compile {type(expr).__name__}")


def compile_dnf(manager: BDD, dnf: DNF) -> int:
    """Compile a DNF: OR over AND-terms of literals."""
    result = manager.false
    for term in dnf.terms:
        node = manager.true
        for index, polarity in term:
            literal = manager.var(index) if polarity else manager.nvar(index)
            node = manager.apply_and(node, literal)
        result = manager.apply_or(result, node)
    return result


def compile_cnf(manager: BDD, cnf: CNF) -> int:
    """Compile a CNF: AND over OR-clauses of literals."""
    result = manager.true
    for clause in cnf.clauses:
        node = manager.false
        for index, polarity in clause:
            literal = manager.var(index) if polarity else manager.nvar(index)
            node = manager.apply_or(node, literal)
        result = manager.apply_and(result, node)
    return result


def compile_circuit(
    manager: BDD, circuit: Circuit, output: Optional[str] = None
) -> int:
    """Compile a gate netlist with one apply per gate (the classic
    symbolic-simulation loop)."""
    wires: Dict[str, int] = {
        name: manager.var(i) for i, name in enumerate(circuit.inputs)
    }
    for gate in circuit.gates:
        try:
            inputs = [wires[w] for w in gate.inputs]
        except KeyError as missing:
            raise EvaluationError(
                f"gate {gate.output!r} reads undriven wire {missing}"
            ) from None
        wires[gate.output] = _apply_gate(manager, gate.kind, inputs)
    target = output if output is not None else circuit.output
    if target not in wires:
        raise EvaluationError(f"output wire {target!r} is undriven")
    return wires[target]


def _apply_gate(manager: BDD, kind: str, inputs) -> int:
    if kind == "not":
        return manager.apply_not(inputs[0])
    if kind == "buf":
        return inputs[0]
    binary = {
        "and": manager.apply_and,
        "or": manager.apply_or,
        "xor": manager.apply_xor,
        "nand": manager.apply_nand,
        "nor": manager.apply_nor,
        "xnor": manager.apply_xnor,
    }
    if kind not in binary:
        raise EvaluationError(f"unknown gate kind {kind!r}")
    positive = {"and": manager.apply_and, "or": manager.apply_or,
                "xor": manager.apply_xor}
    if kind in positive:
        result = inputs[0]
        for operand in inputs[1:]:
            result = positive[kind](result, operand)
        return result
    # Negated gates: fold the positive op, negate once.
    base = {"nand": "and", "nor": "or", "xnor": "xor"}[kind]
    result = inputs[0]
    for operand in inputs[1:]:
        result = positive[base](result, operand)
    return manager.apply_not(result)


def compile_to_bdd(manager: BDD, source, output: Optional[str] = None) -> int:
    """Dispatching front end over every compilable representation."""
    if isinstance(source, Expr):
        return compile_expr(manager, source)
    if isinstance(source, DNF):
        return compile_dnf(manager, source)
    if isinstance(source, CNF):
        return compile_cnf(manager, source)
    if isinstance(source, Circuit):
        return compile_circuit(manager, source, output)
    raise TypeError(f"cannot compile {type(source).__name__}")
