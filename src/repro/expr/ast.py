"""Boolean expression AST.

One of the evaluable representations of Corollary 2: any expression here
evaluates an assignment in time linear in its size, so its truth table —
and hence its minimum OBDD — is computable by the core algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple


class Expr:
    """Base class of Boolean expression nodes."""

    def evaluate(self, assignment: Sequence[int]) -> int:
        raise NotImplementedError

    def variables(self) -> FrozenSet[int]:
        """Indices of the variables occurring in the expression."""
        raise NotImplementedError

    @property
    def num_vars(self) -> int:
        """Smallest ``n`` such that the expression is over ``x_0..x_{n-1}``."""
        occurring = self.variables()
        return (max(occurring) + 1) if occurring else 0

    # Operator sugar so expressions compose naturally.
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Const(Expr):
    """The constant 0 or 1."""

    value: int

    def evaluate(self, assignment: Sequence[int]) -> int:
        return self.value

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class Var(Expr):
    """The projection ``x_index``."""

    index: int

    def evaluate(self, assignment: Sequence[int]) -> int:
        return int(assignment[self.index]) & 1

    def variables(self) -> FrozenSet[int]:
        return frozenset({self.index})

    def __repr__(self) -> str:
        return f"x{self.index}"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, assignment: Sequence[int]) -> int:
        return 1 - self.operand.evaluate(assignment)

    def variables(self) -> FrozenSet[int]:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


@dataclass(frozen=True)
class And(Expr):
    operands: Tuple[Expr, ...]

    def evaluate(self, assignment: Sequence[int]) -> int:
        for op in self.operands:
            if not op.evaluate(assignment):
                return 0
        return 1

    def variables(self) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for op in self.operands:
            out |= op.variables()
        return out

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expr):
    operands: Tuple[Expr, ...]

    def evaluate(self, assignment: Sequence[int]) -> int:
        for op in self.operands:
            if op.evaluate(assignment):
                return 1
        return 0

    def variables(self) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for op in self.operands:
            out |= op.variables()
        return out

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Xor(Expr):
    operands: Tuple[Expr, ...]

    def evaluate(self, assignment: Sequence[int]) -> int:
        acc = 0
        for op in self.operands:
            acc ^= op.evaluate(assignment)
        return acc

    def variables(self) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for op in self.operands:
            out |= op.variables()
        return out

    def __repr__(self) -> str:
        return "(" + " ^ ".join(repr(op) for op in self.operands) + ")"


TRUE = Const(1)
FALSE = Const(0)
