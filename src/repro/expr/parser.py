"""Recursive-descent parser for Boolean expressions.

Grammar (precedence low to high: ``|``, ``^``, ``&``, ``~``)::

    expr   := xor ( "|" xor )*
    xor    := term ( "^" term )*
    term   := factor ( "&" factor )*
    factor := "~" factor | "(" expr ")" | "0" | "1" | variable

Variables are written ``x<k>`` with 0-based index ``k`` (``x0``, ``x1``,
...); bare identifiers are also accepted and assigned indices in order of
first appearance.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from .ast import And, Const, Expr, Not, Or, Var, Xor

_TOKEN = re.compile(r"\s*(?:(?P<op>[|^&~()])|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<const>[01]))")


def tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            trailing = text[position:].strip()
            if not trailing:
                break
            raise ParseError(f"unexpected input at position {position}: {trailing!r}")
        if match.group("op"):
            tokens.append(("op", match.group("op")))
        elif match.group("name"):
            tokens.append(("name", match.group("name")))
        else:
            tokens.append(("const", match.group("const")))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.position = 0
        self.name_to_index: Dict[str, int] = {}

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self.position += 1
        return token

    def expect_op(self, op: str) -> None:
        token = self.take()
        if token != ("op", op):
            raise ParseError(f"expected {op!r}, got {token[1]!r}")

    # grammar rules -----------------------------------------------------
    def parse_expr(self) -> Expr:
        parts = [self.parse_xor()]
        while self.peek() == ("op", "|"):
            self.take()
            parts.append(self.parse_xor())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_xor(self) -> Expr:
        parts = [self.parse_term()]
        while self.peek() == ("op", "^"):
            self.take()
            parts.append(self.parse_term())
        return parts[0] if len(parts) == 1 else Xor(tuple(parts))

    def parse_term(self) -> Expr:
        parts = [self.parse_factor()]
        while self.peek() == ("op", "&"):
            self.take()
            parts.append(self.parse_factor())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_factor(self) -> Expr:
        kind, value = self.take()
        if (kind, value) == ("op", "~"):
            return Not(self.parse_factor())
        if (kind, value) == ("op", "("):
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if kind == "const":
            return Const(int(value))
        if kind == "name":
            return Var(self.variable_index(value))
        raise ParseError(f"unexpected token {value!r}")

    def variable_index(self, name: str) -> int:
        match = re.fullmatch(r"x(\d+)", name)
        if match:
            return int(match.group(1))
        if name not in self.name_to_index:
            self.name_to_index[name] = len(self.name_to_index)
        return self.name_to_index[name]


def parse(text: str) -> Expr:
    """Parse ``text`` into an :class:`~repro.expr.ast.Expr`.

    >>> parse("x0 & x1 | x2 & x3").num_vars
    4
    """
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    if parser.peek() is not None:
        raise ParseError(f"trailing input: {parser.tokens[parser.position:]}")
    return expr
