"""DNF and CNF representations (Corollary 2's polynomial-size normal forms).

A literal is an ``(index, polarity)`` pair: ``(3, True)`` means ``x3``,
``(3, False)`` means ``~x3``.  Both forms evaluate an assignment in time
linear in their size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from ..errors import DimensionError, ParseError

Literal = Tuple[int, bool]


def _check_clause(literals: Sequence[Literal]) -> Tuple[Literal, ...]:
    seen = set()
    for index, polarity in literals:
        if index < 0:
            raise DimensionError(f"negative variable index {index}")
        if (index, not polarity) in seen:
            raise ParseError(
                f"clause contains contradictory literals on x{index}"
            )
        seen.add((index, polarity))
    return tuple(dict.fromkeys(literals))


@dataclass(frozen=True)
class DNF:
    """Disjunctive normal form: OR of AND-terms."""

    terms: Tuple[Tuple[Literal, ...], ...]

    @classmethod
    def of(cls, terms: Sequence[Sequence[Literal]]) -> "DNF":
        return cls(tuple(_check_clause(t) for t in terms))

    def evaluate(self, assignment: Sequence[int]) -> int:
        for term in self.terms:
            if all(
                (int(assignment[i]) & 1) == int(polarity) for i, polarity in term
            ):
                return 1
        return 0

    def variables(self) -> FrozenSet[int]:
        return frozenset(i for term in self.terms for i, _ in term)

    @property
    def num_vars(self) -> int:
        occurring = self.variables()
        return (max(occurring) + 1) if occurring else 0

    def __repr__(self) -> str:
        if not self.terms:
            return "DNF(FALSE)"
        rendered = [
            " & ".join(("" if p else "~") + f"x{i}" for i, p in term) or "1"
            for term in self.terms
        ]
        return "DNF(" + " | ".join(rendered) + ")"


@dataclass(frozen=True)
class CNF:
    """Conjunctive normal form: AND of OR-clauses."""

    clauses: Tuple[Tuple[Literal, ...], ...]

    @classmethod
    def of(cls, clauses: Sequence[Sequence[Literal]]) -> "CNF":
        return cls(tuple(_check_clause(c) for c in clauses))

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF (1-indexed, sign = polarity; 0 terminates)."""
        clauses: List[List[Literal]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith(("c", "p", "%")):
                continue
            clause: List[Literal] = []
            for token in line.split():
                value = int(token)
                if value == 0:
                    break
                clause.append((abs(value) - 1, value > 0))
            if clause:
                clauses.append(clause)
        return cls.of(clauses)

    def evaluate(self, assignment: Sequence[int]) -> int:
        for clause in self.clauses:
            if not any(
                (int(assignment[i]) & 1) == int(polarity) for i, polarity in clause
            ):
                return 0
        return 1

    def variables(self) -> FrozenSet[int]:
        return frozenset(i for clause in self.clauses for i, _ in clause)

    @property
    def num_vars(self) -> int:
        occurring = self.variables()
        return (max(occurring) + 1) if occurring else 0

    def __repr__(self) -> str:
        if not self.clauses:
            return "CNF(TRUE)"
        rendered = [
            "(" + (" | ".join(("" if p else "~") + f"x{i}" for i, p in clause) or "0") + ")"
            for clause in self.clauses
        ]
        return "CNF(" + " & ".join(rendered) + ")"
