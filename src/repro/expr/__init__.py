"""Function representations beyond truth tables (Corollary 2).

Expressions, DNF/CNF, and gate-level circuits — each evaluable in time
polynomial in its size, hence each a valid input representation for the
optimal-ordering algorithms via :func:`to_truth_table`.
"""

from .ast import FALSE, TRUE, And, Const, Expr, Not, Or, Var, Xor
from .circuit import Circuit, Gate, ripple_carry_adder_circuit
from .compile import (
    compile_cnf,
    compile_circuit,
    compile_dnf,
    compile_expr,
    compile_to_bdd,
)
from .convert import to_truth_table
from .normal_forms import CNF, DNF
from .parser import parse

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "TRUE",
    "FALSE",
    "parse",
    "DNF",
    "CNF",
    "Circuit",
    "Gate",
    "ripple_carry_adder_circuit",
    "to_truth_table",
    "compile_expr",
    "compile_dnf",
    "compile_cnf",
    "compile_circuit",
    "compile_to_bdd",
]
