"""Gate-level combinational circuits (Corollary 2's circuit representation).

A :class:`Circuit` is a topologically-ordered netlist of gates over named
wires; evaluation is a single forward pass, so a polynomial-size circuit is
a polynomial-time-evaluable representation in the sense of Corollary 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import EvaluationError, ParseError

_GATES = {
    "and": lambda inputs: int(all(inputs)),
    "or": lambda inputs: int(any(inputs)),
    "not": lambda inputs: 1 - inputs[0],
    "xor": lambda inputs: sum(inputs) & 1,
    "nand": lambda inputs: 1 - int(all(inputs)),
    "nor": lambda inputs: 1 - int(any(inputs)),
    "xnor": lambda inputs: 1 - (sum(inputs) & 1),
    "buf": lambda inputs: inputs[0],
}


@dataclass
class Gate:
    """One gate: ``output = kind(inputs...)``."""

    kind: str
    output: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in _GATES:
            raise ParseError(f"unknown gate kind {self.kind!r}")
        if self.kind == "not" and len(self.inputs) != 1:
            raise ParseError("not-gate takes exactly one input")
        if not self.inputs:
            raise ParseError("gate needs at least one input")


@dataclass
class Circuit:
    """A combinational circuit with declared primary inputs and one output.

    ``inputs[i]`` is the wire bound to variable ``x_i``.
    """

    inputs: List[str]
    output: str
    gates: List[Gate] = field(default_factory=list)

    def add_gate(self, kind: str, output: str, inputs: Sequence[str]) -> "Circuit":
        """Append a gate (builder style; returns self)."""
        if output in self.inputs:
            raise ParseError(f"gate output {output!r} shadows a primary input")
        if any(gate.output == output for gate in self.gates):
            raise ParseError(f"wire {output!r} driven twice")
        self.gates.append(Gate(kind, output, tuple(inputs)))
        return self

    @property
    def num_vars(self) -> int:
        return len(self.inputs)

    def variables(self) -> FrozenSet[int]:
        return frozenset(range(len(self.inputs)))

    def evaluate(self, assignment: Sequence[int]) -> int:
        """Forward-evaluate; gates must appear in topological order."""
        if len(assignment) < len(self.inputs):
            raise EvaluationError(
                f"need {len(self.inputs)} input values, got {len(assignment)}"
            )
        wires: Dict[str, int] = {
            name: int(assignment[i]) & 1 for i, name in enumerate(self.inputs)
        }
        for gate in self.gates:
            try:
                values = [wires[w] for w in gate.inputs]
            except KeyError as missing:
                raise EvaluationError(
                    f"gate {gate.output!r} reads undriven wire {missing}"
                ) from None
            wires[gate.output] = _GATES[gate.kind](values)
        if self.output not in wires:
            raise EvaluationError(f"output wire {self.output!r} is undriven")
        return wires[self.output]


def ripple_carry_adder_circuit(bits: int, output_bit: int) -> Circuit:
    """Reference circuit: bit ``output_bit`` of an ``bits``-bit ripple-carry
    adder (operands at variables ``0..bits-1`` and ``bits..2bits-1``).

    Used by the examples to demonstrate Corollary 2 end to end against
    :func:`repro.functions.families.adder_bit`.
    """
    a = [f"a{i}" for i in range(bits)]
    b = [f"b{i}" for i in range(bits)]
    circuit = Circuit(inputs=a + b, output=f"s{output_bit}")
    carry: Optional[str] = None
    for i in range(bits):
        x, y = a[i], b[i]
        if carry is None:
            circuit.add_gate("xor", f"s{i}", [x, y])
            circuit.add_gate("and", f"c{i}", [x, y])
        else:
            circuit.add_gate("xor", f"p{i}", [x, y])
            circuit.add_gate("xor", f"s{i}", [f"p{i}", carry])
            circuit.add_gate("and", f"g{i}", [x, y])
            circuit.add_gate("and", f"t{i}", [f"p{i}", carry])
            circuit.add_gate("or", f"c{i}", [f"g{i}", f"t{i}"])
        carry = f"c{i}"
    if output_bit == bits:
        assert carry is not None
        circuit.add_gate("buf", f"s{bits}", [carry])
    elif not 0 <= output_bit < bits:
        raise ParseError(f"output bit {output_bit} out of range")
    return circuit
