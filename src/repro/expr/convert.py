"""Corollary 2: truth-table extraction from any evaluable representation.

"for a function f given as R(f) [any representation evaluable in poly
time], the truth table of f can be prepared in O*(2^n) time and the
minimum OBDD is computable from that truth table" — this module is that
preparation step, accepting every representation the library defines plus
plain callables and existing decision diagrams.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import DimensionError
from ..truth_table import TruthTable
from .ast import Expr
from .circuit import Circuit
from .normal_forms import CNF, DNF


def to_truth_table(source, n: Optional[int] = None) -> TruthTable:
    """Tabulate ``source`` over ``n`` variables.

    Accepted sources:

    * :class:`~repro.truth_table.TruthTable` — returned as-is (``n`` must
      agree if given);
    * :class:`~repro.expr.ast.Expr`, :class:`~repro.expr.normal_forms.DNF`,
      :class:`~repro.expr.normal_forms.CNF`,
      :class:`~repro.expr.circuit.Circuit` — anything with
      ``num_vars`` + ``evaluate(assignment)``; ``n`` may widen the domain
      beyond the occurring variables;
    * a BDD/ZDD/MTBDD manager node via a ``(manager, node)`` pair;
    * a plain callable of ``n`` Boolean arguments (``n`` required).
    """
    if isinstance(source, TruthTable):
        if n is not None and n != source.n:
            raise DimensionError(
                f"table has {source.n} variables but n={n} was requested"
            )
        return source

    if isinstance(source, tuple) and len(source) == 2:
        manager, node = source
        table = manager.to_truth_table(node)
        if n is not None and n != table.n:
            raise DimensionError(
                f"diagram is over {table.n} variables but n={n} was requested"
            )
        return table

    evaluate = getattr(source, "evaluate", None)
    num_vars = getattr(source, "num_vars", None)
    if callable(evaluate) and num_vars is not None:
        width = num_vars if n is None else n
        if width < num_vars:
            raise DimensionError(
                f"representation mentions x{num_vars - 1}; n={n} is too small"
            )
        return TruthTable.from_evaluator(
            width, lambda a: evaluate([(a >> i) & 1 for i in range(width)])
        )

    if callable(source):
        if n is None:
            raise DimensionError("n is required when tabulating a plain callable")
        return TruthTable.from_callable(n, source)

    raise TypeError(f"cannot tabulate {type(source).__name__}")
