"""Ordering-as-a-service: the ``repro serve`` daemon.

The library grew everything a long-lived reordering service needs — warm
:class:`~repro.core.executor.ExecutorBackend` pools, a fingerprint-deduped
:class:`~repro.core.cache.ResultCache`, :class:`~repro.core.budget.Budget`
admission with cooperative cancellation — but each caller still paid
process startup, pool spin-up and a cold cache per invocation.  This
module turns those five library entry points into a system that serves
traffic: a single-process stdlib-``asyncio`` front-end multiplexing many
concurrent clients over

* **one warm execution backend** (pinned for the server's lifetime via
  the :func:`~repro.core.executor.shared_backend` context manager, so a
  process pool is paid for once and reused by every request; concurrent
  sweeps serialize on the backend's sweep mutex while canonicalization,
  cache traffic and I/O overlap freely), and
* **one shared result cache** (in-memory LRU plus optional
  cross-process-safe disk store), so every request benefits from every
  previous answer — the accumulation point the learned-ordering
  literature presupposes (Grumberg et al., PAPERS.md).

Transport is newline-delimited JSON over TCP or a unix socket: one JSON
object per line in, one per line out, ``id`` echoed so clients may
pipeline.  Operations:

``{"op": "solve", "expr": "x0 & x1 | x2", "method": "fs", ...}``
    Find an ordering.  The function arrives as ``expr`` (expression
    string) or ``values`` (truth-table bits: a list of ints or a
    ``"0110..."`` string, plus optional ``n``); ``method`` is any of
    ``fs`` / ``shared`` (give ``tables``: a list of such specs) /
    ``constrained`` (give ``precedence`` pairs) / ``window`` (optional
    ``width`` / ``max_rounds`` / ``initial_order``).  Optional
    ``timeout`` (seconds, clamped to the server's ``default_timeout``)
    and ``priority`` (lower runs first).  ``fs`` requests additionally
    take ``strategy`` (``"exact"`` default / ``"fallback"`` /
    ``"portfolio"`` / a registered strategy name — see
    :mod:`repro.portfolio`), ``seed`` (stochastic members) and
    ``strategies`` (portfolio member subset); non-exact strategies are
    never coalesced and their per-strategy tallies surface in
    ``metrics`` (``strategy_solves`` / ``portfolio_wins``).  ``fs_star``
    is not servable — its problem is a live ``FSState``, which does not
    travel as JSON.
``{"op": "solve_many", "items": [{...}, {...}], ...}``
    Batch solve: a manifest of solve specs in one request.  Items are
    fingerprinted and deduplicated *before* queueing (the
    ``optimize_many`` economics, over the wire); the distinct misses fan
    through the priority queue under **one shared subbudget** (the
    batch-level ``timeout``), and the response carries per-item bodies
    bit-identical to N individual ``solve`` calls plus a parallel
    ``statuses`` list (``ok`` / ``cached`` / ``coalesced`` /
    ``fallback`` / ``error``) and a ``summary``.  Batch-level
    ``method`` / ``rule`` / ``fallback`` / ``strategy`` / ``seed`` /
    ``strategies`` are inherited by items that do not set their own;
    item-level ``timeout`` is rejected (the batch shares one budget).
``{"op": "metrics"}``
    The observability counters (merged
    :class:`~repro.analysis.counters.OperationCounters` across every
    request), the shared cache's
    :class:`~repro.core.cache.CacheStats`, and server-level gauges
    (queue depth, in-flight, rejections, coalesced duplicates,
    backend restarts).
``{"op": "health"}``
    Probe document for load balancers and supervisors: ``healthy``
    verdict, queue depth, in-flight count, warm-backend pool liveness
    (:meth:`~repro.core.executor.ExecutorBackend.healthy`),
    ``backend_restarts`` and seconds since the last restart.  Answered
    even while draining (``healthy`` goes false), so probes see the
    drain instead of a timeout.
``{"op": "ping"}``
    Liveness probe.

Every response carries an HTTP-style ``status``: 200 served, 400
malformed request, 429 queue full (the bounded priority queue rejects
rather than buffers without bound), 503 draining / cancelled /
``backend_restarting``, 504 budget exhausted, 500 internal error.

The warm backend is *supervised*: the process backend already heals a
SIGKILLed worker in place (pool rebuild + chunk-level retry, see
:mod:`repro.core.executor`), but when a sweep still dies — healing
budget exhausted (:class:`~repro.errors.ExecutorBrokenError`) or a raw
``BrokenProcessPool`` from a non-healing path — the server swaps in a
freshly warmed backend under its backend mutex, fails *only* the
in-flight request with a retryable 503 ``BackendRestarting`` error, and
keeps serving: one broken pool never turns the daemon into a
500-forever zombie.  ``backend_restarts`` counts the swaps;
:class:`ServeClient` can retry through them automatically
(``retries=``/``backoff=``).

Resource governance is per request: each admitted request derives a
fresh :meth:`~repro.core.budget.Budget.subbudget` from one server-level
parent — never re-arming a shared budget (the stale-clock footgun
:meth:`Budget.arm <repro.core.budget.Budget.arm>` now warns about) —
so a request's deadline starts when *its* solve starts, while the
parent's frontier caps and cancellation event govern everything.

Duplicate-fingerprint requests are **single-flighted**: concurrent
requests for the same canonical function (same up to variable renaming
and output complement) elect one leader that runs the kernel; the rest
wait and then resolve through the cache — N answers, one sweep.

Shutdown is a graceful drain, routed through
``loop.add_signal_handler`` (the asyncio-correct path —
:func:`~repro.core.budget.handle_signals` cannot help a daemon, and now
warns when it would silently no-op): the first SIGTERM/SIGINT stops
accepting work, finishes everything already admitted (bit-identical to
library calls — nothing about the drain touches the solves), answers
late arrivals with 503, and exits 0.  A second signal sets the shared
cooperative-cancellation event, so in-flight sweeps abort at their next
layer boundary with checkpoints and cache writes already flushed.

``python -m repro serve --port 7421 --cache-dir /var/cache/repro`` runs
one; :class:`ServeClient` talks to it; :func:`running_server` embeds one
in-process (tests, benchmarks, notebooks).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import sys
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .analysis.counters import OperationCounters
from .api import OrderingSolution, solve
from .core.budget import Budget
from .core.cache import ResultCache, table_key
from .core.engine import EngineConfig
from .core.executor import ExecutorBackend, shared_backend
from .core.spec import ReductionRule
from .errors import (
    BudgetExceeded, ExecutorBrokenError, ReproError, ServeError,
)
from .truth_table import TruthTable

__all__ = [
    "OrderingServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "running_server",
    "serve_main",
]

PROTOCOL_VERSION = 1

SERVABLE_METHODS = ("fs", "shared", "constrained", "window")
"""``solve()`` methods reachable over the wire (``fs_star`` is not: its
problem is a live ``FSState``, which has no JSON form)."""

_DEDUP_METHODS = ("fs", "shared")
"""Methods whose problems are safely single-flighted by canonical
fingerprint (``constrained``/``window`` carry position-dependent extras
the canonical key deliberately ignores)."""


@dataclass
class ServeConfig:
    """Everything one :class:`OrderingServer` needs to stand up."""

    host: str = "127.0.0.1"
    port: int = 0
    """TCP port; 0 binds an ephemeral port (read it back off
    :attr:`OrderingServer.address`)."""

    unix_socket: Optional[str] = None
    """Serve on this unix-domain socket path instead of TCP."""

    backend: str = "process"
    """Execution backend warmed once for the server's lifetime."""

    jobs: int = field(default_factory=lambda: os.cpu_count() or 1)
    """Worker width of the warm pool (layer parallelism per sweep)."""

    engine: str = "numpy"
    frontier_store: str = "dict"

    cache_dir: Optional[str] = None
    """Optional on-disk store for the shared result cache
    (cross-process-safe; two daemons may share one directory)."""

    cache_size: int = 4096
    max_disk_entries: Optional[int] = None

    cache_shards: int = 16
    """Fingerprint-prefix shard count for the disk store (per-shard
    lockfiles instead of one directory-wide lock, so concurrent servers
    sharing a cache dir stop contending)."""

    max_batch_items: int = 1024
    """Upper bound on ``solve_many`` manifest size (one request line
    must also fit ``max_request_bytes``)."""

    queue_limit: int = 64
    """Bounded priority-queue depth; a request arriving when the queue
    is full is rejected with 429, never buffered without bound."""

    max_inflight: int = 2
    """Concurrent request executions (canonicalization/cache/IO overlap;
    kernel sweeps additionally serialize on the one warm backend)."""

    default_timeout: Optional[float] = None
    """Per-request wall-clock ceiling; a request's own ``timeout`` may
    only tighten it."""

    max_frontier_mb: Optional[float] = None
    """Frontier byte cap applied to every request's subbudget."""

    max_pool_rebuilds: Optional[int] = None
    """Self-healing budget of the warm process backend (how many pool
    rebuilds one DP layer may consume before its request fails; see
    :class:`~repro.core.engine.EngineConfig.max_pool_rebuilds`).
    ``None`` keeps the backend default (2); ``0`` disables in-sweep
    healing, leaving recovery entirely to the server-level backend swap."""

    max_request_bytes: int = 8 * 1024 * 1024
    """Per-line transport limit (a ``values`` table for n=16 as a bit
    string is 64 KiB; as a JSON list ~20x that)."""

    install_signal_handlers: bool = True
    """Route SIGTERM/SIGINT through ``loop.add_signal_handler`` into
    drain / cooperative cancellation.  Disable when embedding the server
    in a thread whose loop cannot own signals (:func:`running_server`
    does)."""


@dataclass
class ServerMetrics:
    """Server-level tallies (the gauges ``/metrics`` adds on top of the
    cache's :class:`~repro.core.cache.CacheStats` and the merged
    operation counters)."""

    received: int = 0
    completed: int = 0
    failed: int = 0
    rejected_queue_full: int = 0
    rejected_draining: int = 0
    bad_requests: int = 0
    coalesced: int = 0
    """Requests that waited on an identical in-flight leader instead of
    sweeping themselves."""

    coalesced_failures: int = 0
    """Coalesced followers whose leader terminated without a cacheable
    result (budget abort, internal error) and that therefore inherited
    the leader's terminal status instead of re-running the sweep — the
    thundering herd the single-flight path would otherwise unleash
    exactly when the server is under pressure."""

    kernel_sweeps: int = 0
    """Sweep attempts: solves that actually entered the kernel
    (``from_cache`` false), including ones a budget aborted mid-flight —
    with N duplicate requests this advances once, which is the
    single-flight acceptance check."""

    cache_hit_solves: int = 0

    batches: int = 0
    """``solve_many`` requests admitted."""

    batch_items: int = 0
    """Items across all admitted ``solve_many`` manifests."""

    batch_deduped: int = 0
    """Batch items that shared a canonical fingerprint with an earlier
    item in the same manifest and were resolved without queueing."""

    backend_restarts: int = 0
    """Times the supervisor replaced a broken warm backend with a
    freshly warmed one (each swap failed exactly one in-flight request
    with a retryable 503 ``BackendRestarting``)."""

    strategy_solves: Dict[str, int] = field(default_factory=dict)
    """Completed solves per non-exact ``strategy`` value (``fallback``,
    ``portfolio``, or a registered strategy name)."""

    portfolio_wins: Dict[str, int] = field(default_factory=dict)
    """For ``strategy="portfolio"`` solves: how often each registered
    member produced the winning ordering."""

    def snapshot(self) -> Dict[str, Any]:
        return {
            "received": self.received,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_draining": self.rejected_draining,
            "bad_requests": self.bad_requests,
            "coalesced": self.coalesced,
            "coalesced_failures": self.coalesced_failures,
            "kernel_sweeps": self.kernel_sweeps,
            "cache_hit_solves": self.cache_hit_solves,
            "batches": self.batches,
            "batch_items": self.batch_items,
            "batch_deduped": self.batch_deduped,
            "backend_restarts": self.backend_restarts,
            "strategy_solves": dict(sorted(self.strategy_solves.items())),
            "portfolio_wins": dict(sorted(self.portfolio_wins.items())),
        }


@dataclass(eq=False)
class _Connection:
    """One client connection; writes serialize on :attr:`lock` so
    pipelined responses never interleave.  Identity-hashed (``eq=False``)
    so the server can track live connections in a set."""

    writer: asyncio.StreamWriter
    lock: asyncio.Lock


@dataclass(order=True)
class _QueuedRequest:
    """One admitted solve request, ordered for the priority queue.

    Plain ``solve`` requests carry their raw ``payload`` (parsed in the
    pool when a worker picks them up) and answer on ``conn``.  Batch
    sub-items arrive already ``prepared`` and deliver into ``sink`` — an
    ``asyncio.Future`` the owning ``solve_many`` task awaits — instead
    of writing to the connection themselves.
    """

    priority: int
    seq: int
    payload: Dict[str, Any] = field(compare=False)
    conn: _Connection = field(compare=False)
    prepared: Optional["_Prepared"] = field(compare=False, default=None)
    sink: Optional[asyncio.Future] = field(compare=False, default=None)


@dataclass
class _Prepared:
    """A solve request parsed and fingerprinted (off-loop, in the pool)."""

    problem: Any
    method: str
    rule: ReductionRule
    timeout: Optional[float]
    fingerprint: Optional[str]
    solve_kwargs: Dict[str, Any] = field(default_factory=dict)
    fallback: Optional[Tuple[str, ...]] = None
    """Parsed ``fallback`` ladder (``fs`` only): run through
    :func:`repro.core.budget.run_ladder` so a budget abort degrades to
    the next rung instead of failing the item."""

    budget: Optional[Budget] = None
    """Pre-made subbudget (batch items share one); ``None`` means
    ``_execute`` derives a fresh per-request subbudget."""

    strategy: str = "exact"
    """The request's ``strategy`` field (``fs`` only): ``"exact"``,
    ``"fallback"``, ``"portfolio"`` or a registered strategy name; a
    legacy ``fallback`` ladder with no explicit strategy maps to
    ``"fallback"``."""

    strategy_seed: int = 0
    """RNG seed for stochastic portfolio members."""

    strategies: Optional[Tuple[str, ...]] = None
    """Portfolio member subset (``strategy="portfolio"`` only)."""

    @property
    def dedup_key(self) -> Optional[str]:
        """Single-flight / batch-dedup identity.  Ladder'd and
        strategy'd items are not coalesced: their governed degradation
        path makes 'the same function' not 'the same outcome', so
        propagating a leader's terminal status across them would be
        wrong."""
        if self.fallback is not None or self.strategy != "exact":
            return None
        return self.fingerprint


def _parse_values(spec: Any, n: Optional[int]) -> TruthTable:
    if isinstance(spec, str):
        values = [int(ch) for ch in spec]
    elif isinstance(spec, (list, tuple)):
        values = [int(v) for v in spec]
    else:
        raise ReproError(
            f"'values' must be a 0/1 string or a list of ints, "
            f"got {type(spec).__name__}"
        )
    if n is None:
        size = len(values)
        n = max(size - 1, 0).bit_length()
        if size != 1 << n:
            raise ReproError(
                f"'values' length {size} is not a power of two; give 'n'"
            )
    return TruthTable(int(n), values)


def _parse_table(spec: Dict[str, Any]) -> TruthTable:
    """One table spec: ``{"expr": ...}`` or ``{"values": ..., "n"?: ...}``."""
    n = spec.get("n")
    if n is not None:
        n = int(n)
    if spec.get("expr") is not None:
        from .expr import parse, to_truth_table

        return to_truth_table(parse(str(spec["expr"])), n)
    if spec.get("values") is not None:
        return _parse_values(spec["values"], n)
    raise ReproError("each table needs 'expr' or 'values'")


def _parse_rule(payload: Dict[str, Any]) -> ReductionRule:
    raw = payload.get("rule", "bdd")
    try:
        return ReductionRule(str(raw))
    except ValueError:
        raise ReproError(
            f"unknown rule {raw!r}; expected one of "
            f"{[r.value for r in ReductionRule]}"
        ) from None


class OrderingServer:
    """The daemon: one warm backend, one shared cache, many clients.

    Lifecycle: :meth:`start` binds and begins serving; :meth:`shutdown`
    (or the first SIGTERM/SIGINT when signal handlers are installed)
    drains gracefully; :meth:`wait_closed` blocks until the drain
    finishes.  All three are coroutines on the server's event loop —
    :func:`running_server` wraps them for synchronous embedders.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        if self.config.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.config.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.metrics = ServerMetrics()
        self.cache = ResultCache(
            maxsize=self.config.cache_size,
            directory=self.config.cache_dir,
            max_disk_entries=self.config.max_disk_entries,
            shards=self.config.cache_shards,
        )
        cap = self.config.max_frontier_mb
        self.parent_budget = Budget(
            max_frontier_bytes=(
                int(cap * 1024 * 1024) if cap is not None else None
            ),
        )
        """Deadline-free parent; every request derives a fresh
        :meth:`~repro.core.budget.Budget.subbudget` sharing its
        cancellation event and frontier caps."""

        self.totals = OperationCounters()
        self._totals_lock = threading.Lock()
        self._backend: Optional[ExecutorBackend] = None
        self._backend_cm: Optional[Any] = None
        self._backend_lock = threading.Lock()
        """Serializes backend swaps against each other and against the
        drain path; a request thread whose backend just died takes it to
        install the replacement (or to discover a peer already did)."""

        self._last_restart: Optional[float] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._queue: "asyncio.PriorityQueue[_QueuedRequest]" = None  # type: ignore[assignment]
        self._workers: List[asyncio.Task] = []
        self._batch_tasks: "set[asyncio.Task]" = set()
        self._inflight_by_fp: Dict[str, asyncio.Future] = {}
        self._in_flight = 0
        self._seq = 0
        self._draining = False
        self._done: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[_Connection]" = set()
        self._started_at = time.monotonic()
        self._installed_signals: List[int] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind, warm the backend, and begin serving."""
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.PriorityQueue(maxsize=config.queue_limit)
        self._done = asyncio.Event()
        # Pin ONE live backend instance for the whole server lifetime
        # (until a supervisor swap); every request's sweep reuses its
        # warm pool.
        self._warm_backend()
        self._pool = ThreadPoolExecutor(
            max_workers=config.max_inflight,
            thread_name_prefix="repro-serve",
        )
        self._workers = [
            asyncio.ensure_future(self._worker())
            for _ in range(config.max_inflight)
        ]
        if config.unix_socket is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=config.unix_socket,
                limit=config.max_request_bytes,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=config.host, port=config.port,
                limit=config.max_request_bytes,
            )
        self._started_at = time.monotonic()
        if config.install_signal_handlers:
            self._install_signal_handlers()

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        """Where the server listens: ``(host, port)`` or the socket path."""
        if self.config.unix_socket is not None:
            return self.config.unix_socket
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._on_signal, sig)
            except (NotImplementedError, RuntimeError, ValueError) as exc:
                # Non-unix loop, or a loop that cannot own signals (not
                # the main thread).  The daemon path always can; warn so
                # an embedder knows drain-on-signal is off.
                warnings.warn(
                    f"repro.serve could not install a handler for signal "
                    f"{sig}: {exc}; graceful drain on signal is disabled",
                    RuntimeWarning,
                )
                return
            self._installed_signals.append(sig)

    def _on_signal(self, signum: int) -> None:
        if not self._draining:
            self._log(
                f"signal {signal.Signals(signum).name}: draining "
                f"({self._in_flight} in flight, {self._queue.qsize()} queued)"
            )
            asyncio.ensure_future(self.shutdown())
        else:
            # Second signal: stop being polite — cooperative-cancel every
            # in-flight sweep at its next layer boundary.
            self._log(
                f"signal {signal.Signals(signum).name} during drain: "
                "cancelling in-flight work"
            )
            self.parent_budget.cancel.set()

    async def shutdown(self) -> None:
        """Drain: stop accepting, finish admitted work, release the pool."""
        if self._draining:
            await self.wait_closed()
            return
        self._draining = True
        assert self._server is not None
        self._server.close()
        # Batch tasks feed the queue; let admitted manifests finish
        # enqueueing (and answering) before the queue is considered done.
        while self._batch_tasks:
            await asyncio.gather(
                *list(self._batch_tasks), return_exceptions=True
            )
        await self._queue.join()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for sig in self._installed_signals:
            asyncio.get_running_loop().remove_signal_handler(sig)
        self._installed_signals.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        with self._backend_lock:
            if self._backend_cm is not None:
                self._backend_cm.__exit__(None, None, None)
                self._backend_cm = None
                self._backend = None
        for conn in list(self._connections):
            conn.writer.close()
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=5)
        except asyncio.TimeoutError:  # pragma: no cover - stuck client
            pass
        if (
            self.config.unix_socket is not None
            and os.path.exists(self.config.unix_socket)
        ):
            os.unlink(self.config.unix_socket)
        assert self._done is not None
        self._done.set()

    async def wait_closed(self) -> None:
        """Block until a drain (signal- or :meth:`shutdown`-initiated)
        completes."""
        assert self._done is not None, "server not started"
        await self._done.wait()

    def _log(self, message: str) -> None:
        print(f"repro serve: {message}", file=sys.stderr, flush=True)

    # -- backend supervision -------------------------------------------

    def _warm_backend(self) -> None:
        """Enter a fresh ``shared_backend`` block and pin its instance.
        Caller holds ``_backend_lock`` (or is single-threaded startup)."""
        config = self.config
        cm = shared_backend(
            EngineConfig(kernel=config.engine, jobs=config.jobs,
                         backend=config.backend,
                         frontier_store=config.frontier_store,
                         max_pool_rebuilds=config.max_pool_rebuilds)
        )
        self._backend = cm.__enter__().backend
        self._backend_cm = cm

    def _restart_backend(self, broken: Optional[ExecutorBackend]) -> None:
        """Swap a freshly warmed backend in for ``broken``.

        Runs on the request thread that caught the death.  The identity
        check makes concurrent failures converge on ONE swap: whichever
        thread takes the lock first replaces the instance, and peers
        that lost the race see ``self._backend is not broken`` and keep
        the replacement.  A drain that already released the backend
        (``_backend_cm is None``) suppresses the swap entirely.
        """
        with self._backend_lock:
            if self._backend is not broken or self._backend_cm is None:
                return
            old_cm = self._backend_cm
            self._backend = None
            self._backend_cm = None
            try:
                old_cm.__exit__(None, None, None)
            except Exception as exc:  # noqa: BLE001 - it is already broken
                self._log(f"closing broken backend failed: {exc!r}")
            self._warm_backend()
            self.metrics.backend_restarts += 1
            self._last_restart = time.monotonic()
            self._log(
                "execution backend died; a freshly warmed replacement is "
                f"serving (restart #{self.metrics.backend_restarts})"
            )

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer=writer, lock=asyncio.Lock())
        self._connections.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.metrics.bad_requests += 1
                    await self._respond(conn, {
                        "ok": False, "status": 400,
                        "error": {"type": "ProtocolError",
                                  "message": "request line too long"},
                    })
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    self.metrics.bad_requests += 1
                    await self._respond(conn, {
                        "ok": False, "status": 400,
                        "error": {"type": "ProtocolError",
                                  "message": f"invalid JSON: {exc}"},
                    })
                    continue
                await self._dispatch(payload, conn)
        except (ConnectionResetError, BrokenPipeError):  # client vanished
            pass
        finally:
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, conn: _Connection, body: Dict[str, Any]) -> None:
        data = json.dumps(body, separators=(",", ":")).encode() + b"\n"
        try:
            async with conn.lock:
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client gone; the work's cache entry still helps others

    async def _dispatch(self, payload: Any, conn: _Connection) -> None:
        if not isinstance(payload, dict):
            self.metrics.bad_requests += 1
            await self._respond(conn, {
                "ok": False, "status": 400,
                "error": {"type": "ProtocolError",
                          "message": "each request must be a JSON object"},
            })
            return
        request_id = payload.get("id")
        op = payload.get("op", "solve")
        if op == "ping":
            await self._respond(conn, {
                "id": request_id, "ok": True, "status": 200, "pong": True,
                "protocol": PROTOCOL_VERSION,
            })
            return
        if op == "metrics":
            await self._respond(conn, {
                "id": request_id, "ok": True, "status": 200,
                "metrics": self.metrics_snapshot(),
            })
            return
        if op == "health":
            # Answered even while draining: a probe that times out looks
            # like a hang, a probe that reports healthy=false explains it.
            await self._respond(conn, {
                "id": request_id, "ok": True, "status": 200,
                "health": self.health_snapshot(),
            })
            return
        if op not in ("solve", "solve_many"):
            self.metrics.bad_requests += 1
            await self._respond(conn, {
                "id": request_id, "ok": False, "status": 400,
                "error": {"type": "ProtocolError",
                          "message": f"unknown op {op!r}; expected "
                                     "solve/solve_many/metrics/health/"
                                     "ping"},
            })
            return
        if self._draining:
            self.metrics.rejected_draining += 1
            await self._respond(conn, {
                "id": request_id, "ok": False, "status": 503,
                "error": {"type": "Draining",
                          "message": "server is draining; resubmit "
                                     "elsewhere"},
            })
            return
        # A malformed priority must answer 400, not kill the connection
        # handler (bools are ints in Python; exclude them explicitly).
        raw_priority = payload.get("priority", 0)
        try:
            if isinstance(raw_priority, bool):
                raise TypeError
            priority = int(raw_priority)
        except (TypeError, ValueError):
            self.metrics.bad_requests += 1
            await self._respond(conn, {
                "id": request_id, "ok": False, "status": 400,
                "error": {"type": "ProtocolError",
                          "message": f"'priority' must be an integer "
                                     f"(lower runs first), got "
                                     f"{raw_priority!r}"},
            })
            return
        if op == "solve_many":
            items = payload.get("items")
            if not isinstance(items, list) or not items:
                self.metrics.bad_requests += 1
                await self._respond(conn, {
                    "id": request_id, "ok": False, "status": 400,
                    "error": {"type": "ProtocolError",
                              "message": "op 'solve_many' needs 'items': "
                                         "a non-empty list of solve "
                                         "specs"},
                })
                return
            if len(items) > self.config.max_batch_items:
                self.metrics.bad_requests += 1
                await self._respond(conn, {
                    "id": request_id, "ok": False, "status": 400,
                    "error": {"type": "ProtocolError",
                              "message": f"'items' has {len(items)} "
                                         f"entries; the server caps "
                                         f"manifests at "
                                         f"{self.config.max_batch_items}"},
                })
                return
            self.metrics.received += len(items)
            self.metrics.batches += 1
            self.metrics.batch_items += len(items)
            # Batches run on their own task: sub-items fan through the
            # worker queue, so a worker must never *be* the batch (it
            # would deadlock waiting for queue slots it occupies).
            task = asyncio.ensure_future(
                self._process_batch(payload, conn, priority)
            )
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)
            return
        self._seq += 1
        item = _QueuedRequest(
            priority=priority,
            seq=self._seq,
            payload=payload,
            conn=conn,
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.metrics.rejected_queue_full += 1
            await self._respond(conn, {
                "id": request_id, "ok": False, "status": 429,
                "error": {"type": "QueueFull",
                          "message": f"queue limit "
                                     f"{self.config.queue_limit} reached; "
                                     "retry with backoff"},
            })
            return
        self.metrics.received += 1

    # -- request execution ---------------------------------------------

    async def _worker(self) -> None:
        while True:
            try:
                item = await self._queue.get()
            except asyncio.CancelledError:
                return
            try:
                self._in_flight += 1
                await self._process(item)
            finally:
                self._in_flight -= 1
                self._queue.task_done()

    async def _deliver(
        self,
        item: _QueuedRequest,
        body: Dict[str, Any],
        *,
        coalesced: bool = False,
    ) -> None:
        """Hand a finished body to its consumer: the batch's sink future
        when the item is a ``solve_many`` sub-item, the wire otherwise."""
        if item.sink is not None:
            if not item.sink.done():
                item.sink.set_result({"body": body, "coalesced": coalesced})
            return
        body = dict(body)
        body["id"] = item.payload.get("id")
        await self._respond(item.conn, body)

    async def _process(self, item: _QueuedRequest) -> None:
        loop = asyncio.get_running_loop()
        prepared = item.prepared
        if prepared is None:
            try:
                prepared = await loop.run_in_executor(
                    self._pool, self._prepare, item.payload
                )
            except ReproError as exc:
                self.metrics.bad_requests += 1
                await self._deliver(item, {
                    "ok": False, "status": 400,
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                })
                return
            except Exception as exc:  # noqa: BLE001 - reported, never fatal
                self.metrics.failed += 1
                await self._deliver(item, {
                    "ok": False, "status": 500,
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)},
                })
                return

        # Single-flight: if an identical problem is already sweeping,
        # wait for its leader and then resolve through the shared cache.
        dedup_key = prepared.dedup_key
        leader = (
            self._inflight_by_fp.get(dedup_key)
            if dedup_key is not None else None
        )
        follower_future: Optional[asyncio.Future] = None
        coalesced = False
        body: Optional[Dict[str, Any]] = None
        if leader is not None:
            self.metrics.coalesced += 1
            coalesced = True
            leader_body = await asyncio.shield(leader)
            if leader_body is not None and not leader_body.get("ok"):
                # The leader's sweep terminated without writing a cache
                # entry (budget abort, internal error) — re-running the
                # identical problem once per follower is a thundering
                # herd exactly when the server is under pressure.
                # Inherit the leader's terminal status instead.
                self.metrics.coalesced_failures += 1
                body = dict(leader_body)
        elif dedup_key is not None:
            follower_future = loop.create_future()
            self._inflight_by_fp[dedup_key] = follower_future
        if body is None:
            executed: Optional[Dict[str, Any]] = None
            try:
                executed = await loop.run_in_executor(
                    self._pool, self._execute, prepared
                )
            finally:
                if follower_future is not None:
                    del self._inflight_by_fp[dedup_key]
                    follower_future.set_result(executed)
            body = executed
        if body.get("ok"):
            self.metrics.completed += 1
        else:
            self.metrics.failed += 1
        await self._deliver(item, body, coalesced=coalesced)

    @staticmethod
    def _classify(
        body: Dict[str, Any], prepared: _Prepared, coalesced: bool
    ) -> str:
        """Per-item ``solve_many`` status for one finished body."""
        if not body.get("ok"):
            return "error"
        if coalesced:
            return "coalesced"
        result = body.get("result", {})
        if result.get("from_cache"):
            return "cached"
        rung = result.get("rung")
        if (
            rung is not None
            and prepared.fallback
            and rung != prepared.fallback[0]
        ):
            return "fallback"
        if (
            prepared.strategy == "fallback"
            and not prepared.fallback
            and result.get("exact") is False
        ):
            # Default-ladder strategy solve that degraded below 'fs'.
            return "fallback"
        return "ok"

    async def _process_batch(
        self, payload: Dict[str, Any], conn: _Connection, priority: int
    ) -> None:
        """One ``solve_many`` manifest.

        Parse + fingerprint every item off-loop, dedup by canonical
        fingerprint *before* queueing (the ``optimize_many`` economics,
        over the wire), fan the representatives through the priority
        queue under ONE shared subbudget, resolve in-batch duplicates
        through the shared cache, and stream a single response whose
        per-item bodies are built by the same code path as individual
        ``solve`` responses (bit-identical by construction).
        """
        request_id = payload.get("id")
        loop = asyncio.get_running_loop()
        items = payload["items"]
        started = time.perf_counter()
        try:
            try:
                timeout = payload.get("timeout")
                if timeout is not None:
                    timeout = float(timeout)
                    if timeout <= 0:
                        raise ReproError(
                            f"timeout must be > 0, got {timeout}"
                        )
            except (TypeError, ValueError):
                raise ReproError(
                    f"'timeout' must be a number of seconds, got "
                    f"{payload.get('timeout')!r}"
                ) from None
        except ReproError as exc:
            self.metrics.bad_requests += 1
            await self._respond(conn, {
                "id": request_id, "ok": False, "status": 400,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            })
            return
        default = self.config.default_timeout
        if default is not None:
            timeout = default if timeout is None else min(timeout, default)
        try:
            # ONE budget for the whole manifest: items race each other
            # for the same wall clock, exactly like ``optimize_many``.
            shared_budget = self.parent_budget.subbudget(timeout)
            inherited = {
                key: payload[key]
                for key in ("method", "rule", "fallback", "strategy",
                            "seed", "strategies")
                if key in payload
            }
            bodies: List[Optional[Dict[str, Any]]] = [None] * len(items)
            statuses: List[Optional[str]] = [None] * len(items)
            prepared_list: List[Optional[_Prepared]] = [None] * len(items)
            for i, spec in enumerate(items):
                if not isinstance(spec, dict):
                    error_msg = "each 'items' entry must be a JSON object"
                elif "timeout" in spec:
                    error_msg = (
                        "batch items share the batch-level budget; give "
                        "'timeout' at the top level of the solve_many "
                        "request"
                    )
                else:
                    error_msg = None
                if error_msg is not None:
                    self.metrics.bad_requests += 1
                    bodies[i] = {
                        "ok": False, "status": 400,
                        "error": {"type": "ProtocolError",
                                  "message": error_msg},
                    }
                    statuses[i] = "error"
                    continue
                merged = {**inherited, **spec}
                try:
                    prepared = await loop.run_in_executor(
                        self._pool, self._prepare, merged
                    )
                except ReproError as exc:
                    self.metrics.bad_requests += 1
                    bodies[i] = {
                        "ok": False, "status": 400,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc)},
                    }
                    statuses[i] = "error"
                except Exception as exc:  # noqa: BLE001
                    self.metrics.failed += 1
                    bodies[i] = {
                        "ok": False, "status": 500,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc)},
                    }
                    statuses[i] = "error"
                else:
                    prepared.budget = shared_budget
                    prepared_list[i] = prepared

            # Fingerprint-first dedup BEFORE queueing: the first
            # occurrence of each canonical fingerprint is the
            # representative; later ones never enter the queue.
            rep_of: Dict[str, int] = {}
            reps: List[int] = []
            duplicates: List[Tuple[int, int]] = []
            for i, prepared in enumerate(prepared_list):
                if prepared is None:
                    continue
                key = prepared.dedup_key
                if key is not None and key in rep_of:
                    duplicates.append((i, rep_of[key]))
                    continue
                if key is not None:
                    rep_of[key] = i
                reps.append(i)
            self.metrics.batch_deduped += len(duplicates)

            # Enqueue every representative, then await their sinks.  A
            # blocking put is deliberate backpressure against the
            # bounded queue — a manifest is one admitted request, not
            # len(items) chances to be 429'd halfway through.
            sinks: Dict[int, asyncio.Future] = {}
            for i in reps:
                sink = loop.create_future()
                sinks[i] = sink
                self._seq += 1
                await self._queue.put(_QueuedRequest(
                    priority=priority, seq=self._seq, payload={},
                    conn=conn, prepared=prepared_list[i], sink=sink,
                ))
            for i in reps:
                outcome = await sinks[i]
                bodies[i] = outcome["body"]
                statuses[i] = self._classify(
                    outcome["body"], prepared_list[i], outcome["coalesced"]
                )

            # In-batch duplicates resolve through the shared cache (the
            # representative's success wrote the entry — N answers, one
            # sweep); a failed representative's terminal status
            # propagates instead of re-running the identical sweep.
            for i, rep in duplicates:
                rep_body = bodies[rep]
                if rep_body is not None and rep_body.get("ok"):
                    body = await loop.run_in_executor(
                        self._pool, self._execute, prepared_list[i]
                    )
                    bodies[i] = body
                    if body.get("ok"):
                        self.metrics.completed += 1
                        statuses[i] = (
                            "cached"
                            if body.get("result", {}).get("from_cache")
                            else self._classify(body, prepared_list[i],
                                                False)
                        )
                    else:
                        self.metrics.failed += 1
                        statuses[i] = "error"
                else:
                    self.metrics.failed += 1
                    bodies[i] = dict(rep_body or {
                        "ok": False, "status": 500,
                        "error": {"type": "InternalError",
                                  "message": "representative item "
                                             "produced no body"},
                    })
                    statuses[i] = "error"
        except Exception as exc:  # noqa: BLE001 - the client must hear back
            self.metrics.failed += 1
            await self._respond(conn, {
                "id": request_id, "ok": False, "status": 500,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            })
            return
        elapsed = time.perf_counter() - started
        summary = {
            "items": len(items),
            "unique": len(reps),
            "deduped": len(duplicates),
            "elapsed_seconds": round(elapsed, 6),
        }
        for status in ("ok", "cached", "coalesced", "fallback", "error"):
            summary[status] = statuses.count(status)
        await self._respond(conn, {
            "id": request_id, "ok": True, "status": 200,
            "results": bodies,
            "statuses": statuses,
            "summary": summary,
        })

    def _prepare(self, payload: Dict[str, Any]) -> _Prepared:
        """Parse + fingerprint one solve request (runs in the pool)."""
        method = str(payload.get("method", "fs"))
        if method not in SERVABLE_METHODS:
            raise ReproError(
                f"method {method!r} is not servable; expected one of "
                f"{list(SERVABLE_METHODS)}"
            )
        rule = _parse_rule(payload)
        solve_kwargs: Dict[str, Any] = {}
        if method == "shared":
            specs = payload.get("tables")
            if not isinstance(specs, list) or not specs:
                raise ReproError(
                    "method 'shared' needs 'tables': a non-empty list of "
                    "{expr|values} specs"
                )
            problem: Any = [_parse_table(spec) for spec in specs]
            tables = list(problem)
        else:
            problem = _parse_table(payload)
            tables = [problem]
        if method == "constrained":
            pairs = payload.get("precedence")
            if not isinstance(pairs, list):
                raise ReproError(
                    "method 'constrained' needs 'precedence': a list of "
                    "[earlier, later] variable pairs"
                )
            solve_kwargs["precedence"] = [
                (int(a), int(b)) for a, b in pairs
            ]
        if method == "window":
            if payload.get("width") is not None:
                solve_kwargs["width"] = int(payload["width"])
            if payload.get("max_rounds") is not None:
                solve_kwargs["max_rounds"] = int(payload["max_rounds"])
            if payload.get("initial_order") is not None:
                solve_kwargs["initial_order"] = tuple(
                    int(v) for v in payload["initial_order"]
                )
        fallback = payload.get("fallback")
        if fallback is not None:
            if method != "fs":
                raise ReproError(
                    "'fallback' (a degradation ladder) is only supported "
                    "for method 'fs'"
                )
            from .core.budget import parse_ladder

            try:
                fallback = parse_ladder(fallback)
            except (ReproError, ValueError, TypeError) as exc:
                raise ReproError(f"bad 'fallback' ladder: {exc}") from None
        strategy = str(payload.get("strategy", "exact"))
        if payload.get("strategy") is None and fallback is not None:
            # Legacy spelling: a bare ladder means strategy="fallback".
            strategy = "fallback"
        if strategy != "exact":
            if method != "fs":
                raise ReproError(
                    "'strategy' is only supported for method 'fs'"
                )
            if strategy not in ("fallback", "portfolio"):
                from .portfolio import get_strategy

                try:
                    get_strategy(strategy)
                except ReproError as exc:
                    raise ReproError(str(exc)) from None
        if fallback is not None and strategy != "fallback":
            raise ReproError(
                "'fallback' (a degradation ladder) only combines with "
                "strategy 'fallback'"
            )
        try:
            strategy_seed = int(payload.get("seed", 0))
        except (TypeError, ValueError):
            raise ReproError(
                f"'seed' must be an integer, got {payload.get('seed')!r}"
            ) from None
        strategies_field = payload.get("strategies")
        strategies: Optional[Tuple[str, ...]] = None
        if strategies_field is not None:
            if strategy != "portfolio":
                raise ReproError(
                    "'strategies' (a portfolio member subset) requires "
                    "strategy 'portfolio'"
                )
            if not isinstance(strategies_field, list) or not strategies_field:
                raise ReproError(
                    "'strategies' must be a non-empty list of registered "
                    "strategy names"
                )
            strategies = tuple(str(name) for name in strategies_field)
            from .portfolio import get_strategy

            for name in strategies:
                try:
                    get_strategy(name)
                except ReproError as exc:
                    raise ReproError(str(exc)) from None
        timeout = payload.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ReproError(f"timeout must be > 0, got {timeout}")
        default = self.config.default_timeout
        if default is not None:
            timeout = default if timeout is None else min(timeout, default)
        fingerprint = None
        if method in _DEDUP_METHODS:
            fingerprint = table_key(tables, rule, spec=method).fingerprint
        return _Prepared(
            problem=problem,
            method=method,
            rule=rule,
            timeout=timeout,
            fingerprint=fingerprint,
            solve_kwargs=solve_kwargs,
            fallback=fallback,
            strategy=strategy,
            strategy_seed=strategy_seed,
            strategies=strategies,
        )

    def _execute(self, prepared: _Prepared) -> Dict[str, Any]:
        """Run one governed solve (in the pool); returns the response body."""
        config = self.config
        # Pin the instance for this request: a concurrent supervisor
        # swap must not hand us half-warmed state, and on failure we
        # must name the exact instance we broke.
        backend = self._backend
        sub = (
            prepared.budget
            if prepared.budget is not None
            else self.parent_budget.subbudget(prepared.timeout)
        )
        started = time.perf_counter()
        rung: Optional[str] = None
        try:
            if prepared.strategy != "exact":
                solution = solve(
                    prepared.problem,
                    method=prepared.method,
                    strategy=prepared.strategy,
                    strategies=prepared.strategies,
                    fallback_rungs=(
                        prepared.fallback
                        if prepared.strategy == "fallback" else None
                    ),
                    seed=prepared.strategy_seed,
                    rule=prepared.rule,
                    engine=config.engine,
                    jobs=config.jobs,
                    backend=backend,
                    frontier_store=config.frontier_store,
                    cache=self.cache,
                    budget=sub,
                )
                rung = solution.rung
            else:
                solution = solve(
                    prepared.problem,
                    method=prepared.method,
                    rule=prepared.rule,
                    engine=config.engine,
                    jobs=config.jobs,
                    backend=backend,
                    frontier_store=config.frontier_store,
                    cache=self.cache,
                    budget=sub,
                    **prepared.solve_kwargs,
                )
        except (ExecutorBrokenError, BrokenProcessPool) as exc:
            # The backend's in-sweep healing gave up (or was disabled),
            # or a pool death escaped on a non-healing path: the warm
            # pool is dead either way.  Swap in a fresh backend and fail
            # only this request, retryably.
            self._restart_backend(backend)
            with self._totals_lock:
                self.metrics.kernel_sweeps += 1
            return {
                "ok": False, "status": 503,
                "error": {"type": "BackendRestarting",
                          "message": f"execution backend died "
                                     f"mid-request ({exc}); a fresh "
                                     "backend is warming — retry",
                          "retryable": True},
            }
        except BudgetExceeded as exc:
            status = 503 if exc.reason == "cancelled" else 504
            with self._totals_lock:
                # The kernel did enter this sweep before the budget
                # aborted it — count the attempt so a thundering herd of
                # retried duplicates stays visible in metrics.
                self.metrics.kernel_sweeps += 1
            return {
                "ok": False, "status": status,
                "error": {"type": "BudgetExceeded", "message": str(exc),
                          "reason": exc.reason},
            }
        except ReproError as exc:
            return {
                "ok": False, "status": 400,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        except Exception as exc:  # noqa: BLE001 - reported, never fatal
            return {
                "ok": False, "status": 500,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        elapsed = time.perf_counter() - started
        with self._totals_lock:
            self.totals.merge(solution.counters)
            if solution.from_cache:
                self.metrics.cache_hit_solves += 1
            else:
                self.metrics.kernel_sweeps += 1
            if prepared.strategy != "exact":
                tally = self.metrics.strategy_solves
                tally[prepared.strategy] = tally.get(prepared.strategy, 0) + 1
                if prepared.strategy == "portfolio" and rung is not None:
                    wins = self.metrics.portfolio_wins
                    wins[rung] = wins.get(rung, 0) + 1
        result = solution.to_wire()
        result["elapsed_seconds"] = round(elapsed, 6)
        if rung is not None:
            result["rung"] = rung
        return {"ok": True, "status": 200, "result": result}

    # -- observability -------------------------------------------------

    def health_snapshot(self) -> Dict[str, Any]:
        """The ``health`` op document: cheap, lock-light, probe-friendly.

        ``healthy`` is the one-bit verdict (accepting work AND the warm
        backend's pool is alive); the rest is the evidence a supervisor
        wants next to it.  ``backend_alive`` consults
        :meth:`~repro.core.executor.ExecutorBackend.healthy` — for the
        process backend, whether the pool object is marked broken —
        without touching the pool itself.
        """
        backend = self._backend
        now = time.monotonic()
        backend_alive = backend is not None and backend.healthy()
        return {
            "healthy": backend_alive and not self._draining,
            "draining": self._draining,
            "backend": self.config.backend,
            "backend_alive": backend_alive,
            "backend_restarts": self.metrics.backend_restarts,
            "last_restart_seconds_ago": (
                round(now - self._last_restart, 3)
                if self._last_restart is not None else None
            ),
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "in_flight": self._in_flight,
            "uptime_seconds": round(now - self._started_at, 3),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` document (also handy for embedders)."""
        stats = self.cache.stats
        with self._totals_lock:
            counters = self.totals.snapshot()
            server = self.metrics.snapshot()
        server.update(
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            in_flight=self._in_flight,
            draining=self._draining,
            uptime_seconds=round(time.monotonic() - self._started_at, 3),
        )
        return {
            "protocol": PROTOCOL_VERSION,
            "server": server,
            "cache": {**stats.snapshot(), "hit_rate": round(stats.hit_rate, 6)},
            "counters": counters,
            "config": {
                "backend": self.config.backend,
                "jobs": self.config.jobs,
                "engine": self.config.engine,
                "frontier_store": self.config.frontier_store,
                "queue_limit": self.config.queue_limit,
                "max_inflight": self.config.max_inflight,
                "default_timeout": self.config.default_timeout,
                "cache_dir": self.config.cache_dir,
                "cache_shards": self.config.cache_shards,
                "max_batch_items": self.config.max_batch_items,
                "max_pool_rebuilds": self.config.max_pool_rebuilds,
            },
        }


# ----------------------------------------------------------------------
# entry points: daemon main, in-process harness, client
# ----------------------------------------------------------------------

async def _amain(config: ServeConfig) -> int:
    server = OrderingServer(config)
    await server.start()
    address = server.address
    where = (
        address if isinstance(address, str) else f"{address[0]}:{address[1]}"
    )
    print(
        f"repro serve: listening on {where} "
        f"(backend={config.backend}, jobs={config.jobs}, "
        f"engine={config.engine}, queue_limit={config.queue_limit}, "
        f"max_inflight={config.max_inflight})",
        flush=True,
    )
    await server.wait_closed()
    print("repro serve: drained, exiting", flush=True)
    return 0


def serve_main(config: ServeConfig) -> int:
    """Run a daemon until it drains (the ``repro serve`` CLI body)."""
    return asyncio.run(_amain(config))


@contextmanager
def running_server(
    config: Optional[ServeConfig] = None, **overrides: Any
) -> Iterator[OrderingServer]:
    """An :class:`OrderingServer` on a background thread's event loop.

    For tests, benchmarks and notebook embedders: yields the started
    server (read :attr:`OrderingServer.address` to connect), drains it
    on exit.  Signal handlers are forced off — a thread's loop cannot
    own process signals; send the daemon form a real SIGTERM instead.
    """
    config = replace(
        config or ServeConfig(), install_signal_handlers=False, **overrides
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="repro-serve-loop", daemon=True
    )
    thread.start()
    server = OrderingServer(config)
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(30)
        yield server
    finally:
        try:
            asyncio.run_coroutine_threadsafe(
                server.shutdown(), loop
            ).result(60)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()


class ServeClient:
    """Minimal synchronous NDJSON client for one daemon connection.

    ``address`` is ``(host, port)`` or a unix-socket path.  One request
    is one line; :meth:`request` returns the raw response dict, the
    convenience wrappers raise :class:`~repro.errors.ServeError` when
    the server says ``ok: false``.

    ``retries`` (default 0: off) arms bounded reconnect-with-backoff
    for *idempotent* convenience ops — :meth:`ping`, :meth:`metrics`,
    :meth:`health` and :meth:`solve` (a pure function of its payload;
    resubmission reuses the same request ``id``).  Retried failures are
    the transient ones a healthy deployment produces: a connection the
    server dropped (``ConnectionResetError`` / ``BrokenPipeError`` /
    the "server closed the connection" 503) and a 503
    ``BackendRestarting`` answer while the daemon swaps in a fresh
    backend.  Anything else — 400s, 429 queue-full, 503 draining, 504
    budget — propagates on the first occurrence.  Sleeps
    ``backoff * 2**attempt`` seconds between tries.
    """

    def __init__(
        self,
        address: Union[Tuple[str, int], Sequence[Any], str],
        timeout: float = 120.0,
        retries: int = 0,
        backoff: float = 0.2,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self._address = address
        self._timeout = timeout
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self._next_id = 0
        self._pending: Dict[Any, Dict[str, Any]] = {}
        self._connect()

    def _connect(self) -> None:
        address = self._address
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(address)
        else:
            host, port = address
            sock = socket.create_connection(
                (host, int(port)), timeout=self._timeout
            )
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _reconnect(self) -> None:
        """Drop the dead connection and dial again.  Buffered responses
        for other ids died with the old socket; pipelined callers should
        not mix manual ``submit``/``collect`` with retrying ops."""
        try:
            self.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self._pending.clear()
        self._connect()

    def submit(self, payload: Dict[str, Any]) -> Any:
        """Send one request object without waiting; returns its ``id``.

        Pair with :meth:`collect` to pipeline several requests on one
        connection.
        """
        if "id" not in payload:
            self._next_id += 1
            payload = {**payload, "id": self._next_id}
        self._file.write(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        self._file.flush()
        return payload["id"]

    def collect(self, request_id: Any) -> Dict[str, Any]:
        """Block until the response whose ``id`` matches arrives.

        The server may answer pipelined requests out of submission order
        (the priority queue reorders them), so lines read off the socket
        that belong to *other* requests are buffered by id and returned
        by their own ``collect`` calls — never handed to the wrong
        caller.
        """
        if request_id in self._pending:
            return self._pending.pop(request_id)
        while True:
            line = self._file.readline()
            if not line:
                raise ServeError("server closed the connection", status=503)
            response = json.loads(line)
            response_id = response.get("id")
            if response_id == request_id:
                return response
            self._pending[response_id] = response

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, block for *its* response (matched by
        ``id``, not merely the next line off the socket)."""
        return self.collect(self.submit(payload))

    @staticmethod
    def _is_backend_restarting(response: Dict[str, Any]) -> bool:
        error = response.get("error", {})
        return (
            int(response.get("status", 500)) == 503
            and error.get("type") == "BackendRestarting"
        )

    def _checked(
        self, payload: Dict[str, Any], *, retryable: bool = False
    ) -> Dict[str, Any]:
        attempts = self._retries + 1 if retryable else 1
        if retryable and "id" not in payload:
            # Pre-assign the id so every resubmission of this request is
            # recognizably the *same* request, not a new one.
            self._next_id += 1
            payload = {**payload, "id": self._next_id}
        for attempt in range(attempts):
            if attempt:
                time.sleep(self._backoff * (2 ** (attempt - 1)))
            try:
                response = self.request(payload)
            except (ConnectionResetError, BrokenPipeError, ServeError) as exc:
                # collect() raises a 503 ServeError when the server drops
                # the connection mid-read; same remedy as a raw reset.
                dropped = isinstance(
                    exc, (ConnectionResetError, BrokenPipeError)
                ) or exc.status == 503
                if not (retryable and dropped and attempt + 1 < attempts):
                    raise
                self._reconnect()
                continue
            if not response.get("ok"):
                if (
                    retryable
                    and attempt + 1 < attempts
                    and self._is_backend_restarting(response)
                ):
                    # Daemon is swapping in a fresh backend; the
                    # connection stays valid — wait and resubmit.
                    continue
                error = response.get("error", {})
                raise ServeError(
                    f"{error.get('type', 'Error')}: "
                    f"{error.get('message', 'request failed')}",
                    status=int(response.get("status", 500)),
                )
            return response
        raise AssertionError("unreachable: final attempt returns or raises")

    def solve(self, **payload: Any) -> Dict[str, Any]:
        """``solve`` op; returns the ``result`` dict.  Keyword args are
        the wire fields (``expr=``/``values=``/``method=``/...).
        Idempotent, so eligible for client ``retries=``."""
        response = self._checked({**payload, "op": "solve"}, retryable=True)
        return response["result"]

    def solve_many(
        self, items: Sequence[Dict[str, Any]], **payload: Any
    ) -> Dict[str, Any]:
        """``solve_many`` op; returns the full batch response —
        ``results`` (per-item bodies, each shaped like a single ``solve``
        response), ``statuses`` and ``summary``.  Keyword args are
        batch-level wire fields (``method=``/``rule=``/``timeout=``/
        ``fallback=``/``priority=``).  Never auto-retried: a partially
        completed batch is not safely resubmittable."""
        return self._checked(
            {**payload, "op": "solve_many", "items": list(items)}
        )

    def metrics(self) -> Dict[str, Any]:
        return self._checked({"op": "metrics"}, retryable=True)["metrics"]

    def health(self) -> Dict[str, Any]:
        """``health`` op; the daemon's liveness report (backend
        aliveness, restart count, queue depth)."""
        return self._checked({"op": "health"}, retryable=True)["health"]

    def ping(self) -> bool:
        return bool(
            self._checked({"op": "ping"}, retryable=True).get("pong")
        )

    def close(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        finally:
            self._file = None
            if self._sock is not None:
                self._sock.close()
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
