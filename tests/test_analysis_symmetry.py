"""Unit tests for variable-symmetry detection and pruned search."""

import math

import pytest

from repro.analysis.symmetry import (
    are_interchangeable,
    brute_force_up_to_symmetry,
    canonical_orderings,
    search_space_reduction,
    symmetry_classes,
)
from repro.core import run_fs
from repro.errors import DimensionError
from repro.functions import (
    achilles_heel,
    majority,
    multiplexer,
    parity,
    threshold,
)
from repro.truth_table import TruthTable


class TestInterchangeability:
    def test_and_is_symmetric(self):
        table = TruthTable.from_callable(2, lambda a, b: a & b)
        assert are_interchangeable(table, 0, 1)

    def test_implication_is_not(self):
        table = TruthTable.from_callable(2, lambda a, b: (1 - a) | b)
        assert not are_interchangeable(table, 0, 1)

    def test_reflexive(self):
        table = TruthTable.random(3, seed=1)
        assert are_interchangeable(table, 2, 2)

    def test_range_checked(self):
        with pytest.raises(DimensionError):
            are_interchangeable(TruthTable.random(2, seed=0), 0, 2)

    def test_matches_permutation_definition(self):
        table = TruthTable.random(4, seed=2)
        for i in range(4):
            for j in range(i + 1, 4):
                perm = list(range(4))
                perm[i], perm[j] = perm[j], perm[i]
                assert are_interchangeable(table, i, j) == (
                    table.permute(perm) == table
                )


class TestClasses:
    def test_totally_symmetric_single_class(self):
        assert symmetry_classes(parity(5)) == [[0, 1, 2, 3, 4]]
        assert symmetry_classes(majority(5)) == [[0, 1, 2, 3, 4]]

    def test_achilles_pairs(self):
        assert symmetry_classes(achilles_heel(3)) == [[0, 1], [2, 3], [4, 5]]

    def test_asymmetric_singletons(self):
        assert symmetry_classes(multiplexer(2)) == [[v] for v in range(6)]

    def test_constant_function_fully_symmetric(self):
        assert symmetry_classes(TruthTable.constant(4, 1)) == [[0, 1, 2, 3]]

    def test_classes_partition(self):
        table = TruthTable.random(5, seed=3)
        classes = symmetry_classes(table)
        members = sorted(v for cls in classes for v in cls)
        assert members == list(range(5))


class TestReduction:
    def test_counts(self):
        full, reduced = search_space_reduction(achilles_heel(3))
        assert full == math.factorial(6)
        assert reduced == math.factorial(6) // 8

    def test_symmetric_function_collapses_to_one(self):
        full, reduced = search_space_reduction(threshold(5, 2))
        assert (full, reduced) == (120, 1)

    def test_canonical_orderings_count(self):
        table = achilles_heel(2)
        assert sum(1 for _ in canonical_orderings(table)) == 6  # 4!/4

    def test_canonical_representatives_keep_class_order(self):
        table = achilles_heel(2)
        for order in canonical_orderings(table):
            assert order.index(0) < order.index(1)
            assert order.index(2) < order.index(3)


class TestPrunedSearch:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_optimum_as_fs(self, seed):
        table = TruthTable.random(4, seed=seed + 10)
        _, cost, _ = brute_force_up_to_symmetry(table)
        assert cost == run_fs(table).mincost

    def test_evaluation_savings(self):
        table = achilles_heel(3)
        order, cost, evaluated = brute_force_up_to_symmetry(table)
        assert evaluated == 90
        assert cost == run_fs(table).mincost

    def test_no_symmetry_no_savings(self):
        table = multiplexer(2)
        _, _, evaluated = brute_force_up_to_symmetry(table)
        assert evaluated == math.factorial(6)
