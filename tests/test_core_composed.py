"""Unit tests for the Section 4 composition (OptOBDD*_Gamma)."""

import random

import pytest

from repro.core import (
    ReductionRule,
    TABLE2_ALPHAS,
    TABLE2_BETAS,
    initial_state,
    make_composed_solver,
    opt_obdd_composed,
    run_fs,
)
from repro.quantum import QuantumMinimumFinder, QueryLedger
from repro.truth_table import TruthTable


class TestSchedule:
    def test_table2_shapes(self):
        assert len(TABLE2_ALPHAS) == 10
        assert all(len(row) == 6 for row in TABLE2_ALPHAS)
        assert len(TABLE2_BETAS) == 10

    def test_alphas_decrease_with_depth(self):
        # Deeper (faster) subroutines shift the division points down.
        for earlier, later in zip(TABLE2_ALPHAS, TABLE2_ALPHAS[1:]):
            assert later[0] < earlier[0]

    def test_betas_decrease_to_theorem13(self):
        assert list(TABLE2_BETAS) == sorted(TABLE2_BETAS, reverse=True)
        assert TABLE2_BETAS[-1] == 2.77286


class TestSolverFactory:
    def test_depth_zero_is_fs_star(self):
        tt = TruthTable.random(4, seed=1)
        solver = make_composed_solver(0)
        final = solver(initial_state(tt), 0b1111)
        assert final.mincost == run_fs(tt).mincost

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_deeper_solvers_remain_optimal(self, depth):
        tt = TruthTable.random(5, seed=depth)
        solver = make_composed_solver(depth)
        final = solver(initial_state(tt), 0b11111)
        assert final.mincost == run_fs(tt).mincost

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            make_composed_solver(-1)
        with pytest.raises(ValueError):
            make_composed_solver(11)

    def test_partial_extension(self):
        # Composed solver extending a nonempty base matches FS*.
        from repro.core import compact, run_fs_star

        tt = TruthTable.random(5, seed=4)
        base = compact(initial_state(tt), 2)
        reference = run_fs_star(base, 0b11011).mincost
        solver = make_composed_solver(1)
        assert solver(base, 0b11011).mincost == reference


class TestEndToEnd:
    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_composed_run_optimal(self, depth):
        tt = TruthTable.random(5, seed=10 + depth)
        result = opt_obdd_composed(tt, depth=depth)
        assert result.mincost == run_fs(tt).mincost

    def test_zdd_rule(self):
        tt = TruthTable.random(4, seed=20)
        result = opt_obdd_composed(tt, depth=1, rule=ReductionRule.ZDD)
        assert result.mincost == run_fs(tt, rule=ReductionRule.ZDD).mincost

    def test_quantum_finder_ledger_grows_with_depth(self):
        tt = TruthTable.random(5, seed=21)
        totals = []
        for depth in (1, 2):
            ledger = QueryLedger()
            finder = QuantumMinimumFinder(ledger=ledger, epsilon=1e-4,
                                          rng=random.Random(0))
            opt_obdd_composed(tt, depth=depth, finder=finder)
            totals.append(ledger.total)
        # Nested composition makes strictly more minimum-finding calls.
        assert totals[1] > totals[0] > 0

    def test_custom_schedule(self):
        tt = TruthTable.random(5, seed=22)
        result = opt_obdd_composed(
            tt, depth=1, alpha_schedule=[(0.25, 0.5)]
        )
        assert result.mincost == run_fs(tt).mincost
