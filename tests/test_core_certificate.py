"""Unit tests for optimality certificates and anytime A* bounds."""

import dataclasses

import pytest

from repro.core import (
    OptimalityCertificate,
    ReductionRule,
    extract_certificate,
    run_fs,
    verify_achievability,
    verify_certificate,
    verify_lower_bound,
)
from repro.core.astar import astar_optimal_ordering
from repro.errors import ParseError
from repro.truth_table import TruthTable, count_subfunctions


class TestCertificates:
    @pytest.mark.parametrize("seed", range(5))
    def test_genuine_certificates_verify(self, seed):
        table = TruthTable.random(4, seed=seed)
        certificate = extract_certificate(run_fs(table))
        assert verify_certificate(table, certificate)

    def test_understated_claim_rejected(self):
        table = TruthTable.random(4, seed=10)
        certificate = extract_certificate(run_fs(table))
        forged = dataclasses.replace(certificate, mincost=certificate.mincost - 1)
        assert not verify_certificate(table, forged)

    def test_tampered_table_rejected(self):
        table = TruthTable.random(4, seed=11)
        certificate = extract_certificate(run_fs(table))
        tampered = dataclasses.replace(
            certificate,
            mincost_by_subset={
                **certificate.mincost_by_subset,
                3: certificate.mincost_by_subset[3] + 1,
            },
        )
        assert not verify_lower_bound(table, tampered)

    def test_wrong_function_rejected(self):
        table = TruthTable.random(4, seed=12)
        other = TruthTable.random(4, seed=13)
        certificate = extract_certificate(run_fs(table))
        assert not verify_certificate(other, certificate)

    def test_incomplete_table_rejected(self):
        table = TruthTable.random(3, seed=14)
        certificate = extract_certificate(run_fs(table))
        partial = dict(certificate.mincost_by_subset)
        del partial[5]
        assert not verify_lower_bound(
            table, dataclasses.replace(certificate, mincost_by_subset=partial)
        )

    def test_bad_order_rejected(self):
        table = TruthTable.random(3, seed=15)
        certificate = extract_certificate(run_fs(table))
        assert not verify_achievability(
            table, dataclasses.replace(certificate, order=(0, 0, 1))
        )

    def test_json_roundtrip(self):
        table = TruthTable.random(4, seed=16)
        certificate = extract_certificate(run_fs(table))
        restored = OptimalityCertificate.from_json(certificate.to_json())
        assert restored == certificate
        assert verify_certificate(table, restored)

    def test_json_validation(self):
        with pytest.raises(ParseError):
            OptimalityCertificate.from_json("{nope")
        with pytest.raises(ParseError):
            OptimalityCertificate.from_json('{"format": "other"}')

    def test_only_bdd_rule(self):
        table = TruthTable.random(3, seed=17)
        with pytest.raises(ValueError):
            extract_certificate(run_fs(table, rule=ReductionRule.ZDD))


class TestAnytimeAStar:
    @pytest.mark.parametrize("budget", [1, 2, 8, 30])
    def test_bounds_bracket_optimum(self, budget):
        table = TruthTable.random(5, seed=20)
        optimum = run_fs(table).mincost
        result = astar_optimal_ordering(table, max_expansions=budget)
        assert result.lower_bound <= optimum <= result.mincost
        assert sum(count_subfunctions(table, list(result.order))) == result.mincost

    def test_flag_set_correctly(self):
        table = TruthTable.random(5, seed=21)
        cut = astar_optimal_ordering(table, max_expansions=2)
        full = astar_optimal_ordering(table)
        assert not cut.optimal and cut.gap >= 0
        assert full.optimal and full.gap == 0
        assert full.lower_bound == full.mincost

    def test_large_budget_reaches_optimality(self):
        table = TruthTable.random(4, seed=22)
        result = astar_optimal_ordering(table, max_expansions=1 << 10)
        assert result.optimal
        assert result.mincost == run_fs(table).mincost

    def test_incumbent_improves_with_budget(self):
        table = TruthTable.random(6, seed=23)
        sizes = [
            astar_optimal_ordering(table, max_expansions=b).mincost
            for b in (1, 8, 64, 1 << 12)
        ]
        assert sizes[-1] == run_fs(table).mincost
        assert min(sizes) == sizes[-1]
