"""Unit tests for the table-compaction kernel (both engines)."""

import numpy as np
import pytest

from repro.analysis.counters import OperationCounters
from repro.core import ReductionRule, compact, compact_python, initial_state
from repro.core.spec import FSState
from repro.errors import DimensionError
from repro.truth_table import TruthTable, count_subfunctions


def canonical_partition(table, num_terminals=2):
    """Table cells up to node-id renaming (for engine comparison).

    Terminal ids are kept as-is; node ids are relabelled by order of first
    appearance, which is invariant under any id renaming.
    """
    relabel = {}
    out = []
    for value in table.tolist():
        if value < num_terminals:
            out.append(("t", value))
        else:
            if value not in relabel:
                relabel[value] = len(relabel)
            out.append(("n", relabel[value]))
    return tuple(out)


class TestInitialState:
    def test_table_is_truth_table(self):
        tt = TruthTable.random(3, seed=1)
        state = initial_state(tt)
        assert np.array_equal(state.table, tt.values)
        assert state.mask == 0 and state.mincost == 0 and state.pi == ()

    def test_non_boolean_rejected_for_bdd(self):
        tt = TruthTable(2, [0, 1, 2, 0])
        with pytest.raises(DimensionError):
            initial_state(tt, ReductionRule.BDD)
        with pytest.raises(DimensionError):
            initial_state(tt, ReductionRule.ZDD)

    def test_mtbdd_terminal_mapping(self):
        tt = TruthTable(2, [5, 7, 5, 9])
        state = initial_state(tt, ReductionRule.MTBDD)
        assert state.num_terminals == 3
        # values 5,7,9 -> ids 0,1,2 in increasing order
        assert list(state.table) == [0, 1, 0, 2]

    def test_tracking_flag(self):
        tt = TruthTable.random(2, seed=2)
        assert initial_state(tt).nodes is None
        assert initial_state(tt, track_nodes=True).nodes == {}


class TestStateInvariants:
    def test_shape_checked(self):
        with pytest.raises(ValueError):
            FSState(n=3, mask=0b001, pi=(0,), mincost=0,
                    table=np.zeros(8, dtype=np.int64))

    def test_free_mask_and_next_id(self):
        tt = TruthTable.random(3, seed=3)
        state = initial_state(tt)
        assert state.free_mask == 0b111
        assert state.next_id == 2
        after = compact(state, 1)
        assert after.free_mask == 0b101
        assert after.next_id == 2 + after.mincost


class TestCompactBDD:
    def test_single_step_widths(self):
        # Compacting var v counts the distinct dependent subfunctions of v
        # over each assignment to the rest = the bottom-level width.
        tt = TruthTable.random(4, seed=4)
        for v in range(4):
            state = compact(initial_state(tt), v)
            order = [u for u in range(4) if u != v] + [v]
            assert state.mincost == count_subfunctions(tt, order)[3]

    def test_terminal_only_function(self):
        tt = TruthTable.constant(2, 1)
        state = compact(compact(initial_state(tt), 0), 1)
        assert state.mincost == 0
        assert state.table[0] == 1

    def test_chain_total_equals_oracle(self):
        tt = TruthTable.random(5, seed=5)
        order = [3, 1, 4, 0, 2]
        state = initial_state(tt)
        for v in reversed(order):
            state = compact(state, v)
        assert state.mincost == sum(count_subfunctions(tt, order))

    def test_pi_accumulates(self):
        tt = TruthTable.random(3, seed=6)
        state = compact(compact(initial_state(tt), 2), 0)
        assert state.pi == (2, 0)
        assert state.mask == 0b101

    def test_compact_requires_free_variable(self):
        tt = TruthTable.random(3, seed=7)
        state = compact(initial_state(tt), 1)
        with pytest.raises(ValueError):
            compact(state, 1)

    def test_counters(self):
        tt = TruthTable.random(4, seed=8)
        counters = OperationCounters()
        state = compact(initial_state(tt), 0, counters=counters)
        assert counters.compactions == 1
        assert counters.table_cells == 8
        assert counters.nodes_created == state.mincost


class TestCompactZDD:
    def test_zero_suppression(self):
        # f = ~x0 over 1 var: pairs (u0,u1) = (1,0) -> suppressed to u0.
        tt = TruthTable(1, [1, 0])
        state = compact(initial_state(tt, ReductionRule.ZDD), 0,
                        ReductionRule.ZDD)
        assert state.mincost == 0
        assert state.table[0] == 1

    def test_equal_children_not_merged(self):
        # f = 1 (constant): ZDD chain creates a node per level? No -
        # pairs are (1,1): u1 != 0 so a node IS created (ZDD of the
        # full family needs internal nodes).
        tt = TruthTable.constant(1, 1)
        state = compact(initial_state(tt, ReductionRule.ZDD), 0,
                        ReductionRule.ZDD)
        assert state.mincost == 1

    def test_chain_matches_zdd_manager(self):
        from repro.bdd import ZDD

        tt = TruthTable.random(4, seed=9)
        order = [2, 0, 3, 1]
        state = initial_state(tt, ReductionRule.ZDD)
        for v in reversed(order):
            state = compact(state, v, ReductionRule.ZDD)
        z = ZDD(4, order)
        root = z.from_truth_table(tt)
        assert state.mincost == z.size(root, include_terminals=False)


class TestEngineEquivalence:
    @pytest.mark.parametrize("rule", list(ReductionRule))
    @pytest.mark.parametrize("seed", range(4))
    def test_engines_agree_up_to_renaming(self, rule, seed):
        if rule is ReductionRule.MTBDD:
            tt = TruthTable.random(4, seed=seed, num_values=3)
        else:
            tt = TruthTable.random(4, seed=seed)
        a = initial_state(tt, rule)
        b = initial_state(tt, rule)
        for v in (2, 0, 3):
            a = compact(a, v, rule)
            b = compact_python(b, v, rule)
            assert a.mincost == b.mincost
            assert canonical_partition(
                a.table, a.num_terminals
            ) == canonical_partition(b.table, b.num_terminals)

    def test_python_engine_counters(self):
        tt = TruthTable.random(3, seed=10)
        counters = OperationCounters()
        compact_python(initial_state(tt), 0, counters=counters)
        assert counters.compactions == 1 and counters.table_cells == 4


def canonical_cbdd_partition(table):
    """CBDD cells hold *edges* ``node << 1 | complement``; canonicalize
    the node part up to renaming while keeping the complement bit."""
    relabel = {}
    out = []
    for edge in table.tolist():
        node, complement = edge >> 1, edge & 1
        if node == 0:  # the single TRUE terminal
            out.append(("t", complement))
            continue
        if node not in relabel:
            relabel[node] = len(relabel)
        out.append(("n", relabel[node], complement))
    return tuple(out)


class TestEngineEquivalenceCBDD:
    """The CBDD rule rewrites cofactor pairs before dedup (complement
    normalization), a path the generic renaming check above does not pin
    edge-exactly; these tests compare the full edge semantics."""

    @pytest.mark.parametrize("seed", range(6))
    def test_cbdd_engines_agree_edge_exactly(self, seed):
        tt = TruthTable.random(4, seed=seed)
        a = initial_state(tt, ReductionRule.CBDD)
        b = initial_state(tt, ReductionRule.CBDD)
        for v in (1, 3, 0, 2):
            a = compact(a, v, ReductionRule.CBDD)
            b = compact_python(b, v, ReductionRule.CBDD)
            assert a.mincost == b.mincost
            assert canonical_cbdd_partition(a.table) == (
                canonical_cbdd_partition(b.table)
            )

    def test_cbdd_complement_pair_shares_node_in_both_engines(self):
        # f and ~f over the last variable normalize to one complement
        # class: both kernels must create a single node for x0 here.
        tt = TruthTable(2, [0, 1, 1, 0])  # x0 XOR x1
        for kernel in (compact, compact_python):
            state = kernel(initial_state(tt, ReductionRule.CBDD), 0,
                           ReductionRule.CBDD)
            assert state.mincost == 1  # one class for {x0, ~x0}

    def test_cbdd_node_tracking_agrees(self):
        tt = TruthTable.random(3, seed=31)
        a = initial_state(tt, ReductionRule.CBDD, track_nodes=True)
        b = initial_state(tt, ReductionRule.CBDD, track_nodes=True)
        for v in (2, 1, 0):
            a = compact(a, v, ReductionRule.CBDD)
            b = compact_python(b, v, ReductionRule.CBDD)
        assert len(a.nodes) == len(b.nodes) == a.mincost
        for nodes in (a.nodes, b.nodes):
            for _, (var, lo, hi) in nodes.items():
                assert hi & 1 == 0  # 1-edge normalized to regular


class TestEngineEquivalenceMultiRooted:
    """Shared (num_roots > 1) states: the dedup must span all root
    segments identically in both kernels."""

    @pytest.mark.parametrize("rule", [ReductionRule.BDD, ReductionRule.ZDD,
                                      ReductionRule.MTBDD])
    @pytest.mark.parametrize("seed", range(4))
    def test_multi_rooted_engines_agree(self, rule, seed):
        from repro.core.shared import initial_state_shared

        if rule is ReductionRule.MTBDD:
            tables = [TruthTable.random(4, seed=seed, num_values=3),
                      TruthTable.random(4, seed=seed + 50, num_values=3)]
        else:
            tables = [TruthTable.random(4, seed=seed),
                      TruthTable.random(4, seed=seed + 50)]
        a = initial_state_shared(tables, rule)
        b = initial_state_shared(tables, rule)
        assert a.num_roots == 2
        for v in (0, 2, 3, 1):
            a = compact(a, v, rule)
            b = compact_python(b, v, rule)
            assert a.mincost == b.mincost
            assert canonical_partition(
                a.table, a.num_terminals
            ) == canonical_partition(b.table, b.num_terminals)

    def test_multi_rooted_cbdd_engines_agree(self):
        from repro.core.shared import initial_state_shared

        tables = [TruthTable.random(4, seed=41),
                  TruthTable.random(4, seed=42),
                  TruthTable.random(4, seed=43)]
        a = initial_state_shared(tables, ReductionRule.CBDD)
        b = initial_state_shared(tables, ReductionRule.CBDD)
        assert a.num_roots == 3
        for v in (3, 0, 1, 2):
            a = compact(a, v, ReductionRule.CBDD)
            b = compact_python(b, v, ReductionRule.CBDD)
            assert a.mincost == b.mincost
            assert canonical_cbdd_partition(a.table) == (
                canonical_cbdd_partition(b.table)
            )

    def test_cross_root_sharing_counted_once_by_both_engines(self):
        # Identical outputs: the shared diagram is the single-output one,
        # so the joint dedup must collapse the duplicate segment fully.
        from repro.core.shared import initial_state_shared

        tt = TruthTable.random(3, seed=44)
        shared = initial_state_shared([tt, tt])
        single = initial_state(tt)
        for v in (2, 0, 1):
            shared_np = compact(shared, v)
            shared_py = compact_python(shared, v)
            single = compact(single, v)
            assert shared_np.mincost == shared_py.mincost == single.mincost
            shared = shared_np


class TestNodeTracking:
    def test_tracked_nodes_are_consistent_triples(self):
        tt = TruthTable.random(4, seed=11)
        state = initial_state(tt, track_nodes=True)
        for v in (3, 1, 0, 2):
            state = compact(state, v)
        assert state.nodes is not None
        assert len(state.nodes) == state.mincost
        for node_id, (var, lo, hi) in state.nodes.items():
            assert node_id >= 2
            assert lo != hi  # BDD rule: no redundant nodes tracked
            assert lo < node_id and hi < node_id  # children created earlier

    def test_cross_level_pairs_not_merged(self):
        # Regression for the NODE-membership subtlety (see compaction.py):
        # f = x2 ? x0 : x1 has nodes x0=(F,T) and x1=(F,T) at different
        # levels; a literal reading of the paper's pseudo code would merge
        # them and undercount.
        tt = TruthTable.from_callable(3, lambda a, b, c: a if c else b)
        state = initial_state(tt)
        state = compact(state, 0)
        state = compact(state, 1)
        assert state.mincost == 2  # x0 node AND x1 node, not shared
        state = compact(state, 2)
        assert state.mincost == 3
