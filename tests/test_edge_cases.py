"""Edge cases and failure-path tests across the library."""

import math
import random

import numpy as np
import pytest

from repro import (
    BDD,
    ReductionRule,
    TruthTable,
    brute_force_optimal,
    build_diagram,
    opt_obdd,
    run_fs,
)
from repro.analysis.reproduce import Check, render_report, run_reproduction
from repro.core import run_fs_star, initial_state
from repro.core.divide_conquer import effective_levels, opt_obdd_extend
from repro.errors import DimensionError
from repro.truth_table import count_subfunctions, obdd_size


class TestDegenerateFunctions:
    """Constants, single variables, duplicated structure."""

    @pytest.mark.parametrize("value", [0, 1])
    def test_constants_all_rules(self, value):
        table = TruthTable.constant(4, value)
        for rule in (ReductionRule.BDD, ReductionRule.CBDD,
                     ReductionRule.MTBDD):
            assert run_fs(table, rule=rule).mincost == 0
        # ZDDs are the exception: constant 1 is the family of ALL subsets,
        # which needs one node per variable (constant 0 is free).
        expected_zdd = 4 if value == 1 else 0
        assert run_fs(table, rule=ReductionRule.ZDD).mincost == expected_zdd

    def test_zero_variable_function(self):
        table = TruthTable(0, [1])
        result = run_fs(table)
        assert result.order == () and result.mincost == 0
        assert result.size == 2  # both terminal ids exist even if unused

    def test_function_ignoring_some_variables(self):
        # f depends on x1 only; dead variables cost nothing anywhere.
        table = TruthTable.from_callable(4, lambda a, b, c, d: b)
        result = run_fs(table)
        assert result.mincost == 1
        widths = count_subfunctions(table, list(result.order))
        assert sum(widths) == 1

    def test_all_variables_dead(self):
        table = TruthTable.constant(5, 1)
        for order in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0]):
            assert obdd_size(table, order, include_terminals=False) == 0

    def test_one_minterm_function(self):
        # A single minterm: exactly n nodes under every ordering.
        table = TruthTable.from_minterms(4, [0b1010])
        sizes = {
            sum(count_subfunctions(table, list(p)))
            for p in __import__("itertools").permutations(range(4))
        }
        assert sizes == {4}


class TestNumericalRobustness:
    def test_large_n_widths_do_not_overflow(self):
        table = TruthTable.random(12, seed=1)
        widths = count_subfunctions(table, list(range(12)))
        assert len(widths) == 12
        assert all(w >= 0 for w in widths)

    def test_fs_n1(self):
        for values in ([0, 1], [1, 0], [0, 0], [1, 1]):
            result = run_fs(TruthTable(1, values))
            assert result.mincost == (0 if values[0] == values[1] else 1)

    def test_fs_star_from_full_chain_is_noop_state(self):
        table = TruthTable.random(3, seed=2)
        state = initial_state(table)
        from repro.core import compact

        for var in (2, 1, 0):
            state = compact(state, var)
        assert run_fs_star(state, 0) is state

    def test_effective_levels_n2(self):
        # Smallest n where a division point exists at all.
        assert effective_levels(2, [0.2, 0.4]) == [1]

    def test_opt_obdd_extend_empty_j(self):
        table = TruthTable.random(3, seed=3)
        base = initial_state(table)
        assert opt_obdd_extend(base, 0, [0.3]) is base


class TestResultConsistencyAcrossAlgorithms:
    @pytest.mark.parametrize("seed", range(4))
    def test_five_algorithms_one_answer(self, seed):
        from repro.core.astar import astar_optimal_ordering
        from repro.analysis.symmetry import brute_force_up_to_symmetry

        table = TruthTable.random(4, seed=40 + seed)
        reference = run_fs(table).mincost
        assert brute_force_optimal(table).mincost == reference
        assert astar_optimal_ordering(table).mincost == reference
        assert opt_obdd(table).mincost == reference
        assert brute_force_up_to_symmetry(table)[1] == reference

    def test_engine_and_rule_cross_product(self):
        table = TruthTable.random(3, seed=50)
        for rule in (ReductionRule.BDD, ReductionRule.ZDD, ReductionRule.CBDD):
            numpy_result = run_fs(table, rule=rule, engine="numpy")
            python_result = run_fs(table, rule=rule, engine="python")
            assert numpy_result.mincost == python_result.mincost
            assert (
                numpy_result.mincost_by_subset
                == python_result.mincost_by_subset
            )


class TestDiagramEdgeCases:
    def test_diagram_of_dead_variable_function(self):
        table = TruthTable.from_callable(3, lambda a, b, c: a)
        diagram = build_diagram(table, [1, 2, 0])
        assert diagram.mincost == 1
        assert diagram.level_widths() == [0, 0, 1]
        assert diagram.to_truth_table() == table

    def test_diagram_unreachable_terminal(self):
        # Tautology: F terminal not reachable; size counts only T.
        diagram = build_diagram(TruthTable.constant(2, 1), [0, 1])
        assert diagram.size == 1

    def test_manager_order_affects_node_identity_not_semantics(self):
        table = TruthTable.random(4, seed=60)
        a = BDD(4, [0, 1, 2, 3])
        b = BDD(4, [3, 2, 1, 0])
        ra, rb = a.from_truth_table(table), b.from_truth_table(table)
        assert a.to_truth_table(ra) == b.to_truth_table(rb)


class TestReproductionRunner:
    def test_quick_mode_all_pass(self):
        checks = run_reproduction(quick=True)
        assert all(c.passed for c in checks)
        assert len(checks) >= 20

    def test_report_rendering(self):
        checks = [
            Check("alpha", "1", "1", True),
            Check("beta", "2", "3", False),
        ]
        report = render_report(checks)
        assert "[PASS] alpha" in report
        assert "[FAIL] beta" in report
        assert "1/2 checks passed" in report

    def test_full_mode_includes_theorem5(self):
        checks = run_reproduction(quick=False)
        names = [c.name for c in checks]
        assert any("Theorem 5" in name for name in names)
        assert all(c.passed for c in checks)


class TestCounterPropagation:
    def test_counters_flow_through_opt_obdd(self):
        from repro.analysis.counters import OperationCounters

        counters = OperationCounters()
        table = TruthTable.random(5, seed=70)
        opt_obdd(table, counters=counters)
        assert counters.table_cells > 0
        assert counters.compactions > 0
        assert counters.subsets_processed > 0

    def test_counters_flow_through_shared(self):
        from repro.analysis.counters import OperationCounters
        from repro.core import run_fs_shared

        counters = OperationCounters()
        tables = [TruthTable.random(3, seed=71), TruthTable.random(3, seed=72)]
        run_fs_shared(tables, counters=counters)
        # Each compaction writes num_roots * segment cells.
        assert counters.table_cells == 2 * sum(
            math.comb(3, k) * k * (1 << (3 - k)) for k in range(1, 4)
        )
