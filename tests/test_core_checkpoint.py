"""Crash-safety tests: checkpoint/resume, fault injection, corruption.

The contract under test (ISSUE acceptance criteria): for every DP entry
point that runs on the shared execution engine, a run fault-injected to
die after any layer ``k`` and then resumed from its checkpoint directory
is *bit-identical* to an uninterrupted run — in results and in
:class:`~repro.analysis.counters.OperationCounters` — for jobs=1 and
jobs=4 and for both frontier policies.  And a damaged or mismatched
checkpoint must raise :class:`~repro.errors.CheckpointError` naming the
offending file, never resume silently.
"""

import json
import shutil

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    CheckpointStore,
    EngineConfig,
    FaultInjector,
    InjectedFault,
    corrupt_checkpoint,
    fs_star_levels,
    initial_state,
    run_fs,
    run_fs_constrained,
    run_fs_shared,
    sweep_fingerprint,
    window_sweep,
)
from repro.core.compaction import compact
from repro.core.spec import ReductionRule
from repro.errors import CheckpointError
from repro.observability import Profiler
from repro.truth_table import TruthTable

# jobs x frontier grid required by the acceptance criteria.
MATRIX = [(1, "full"), (1, "mincost"), (4, "full"), (4, "mincost")]


def assert_same_result(resumed, clean):
    assert resumed.order == clean.order
    assert resumed.pi == clean.pi
    assert resumed.mincost == clean.mincost
    assert resumed.counters == clean.counters


# ----------------------------------------------------------------------
# the five entry points, interrupted after every layer
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs,frontier", MATRIX)
class TestCrashResumeMatrix:
    def test_run_fs(self, tmp_path, jobs, frontier):
        table = TruthTable.random(5, seed=11)
        clean = run_fs(table, counters=OperationCounters(),
                       jobs=jobs, frontier=frontier)
        for k in range(1, 6):
            ckpt = str(tmp_path / f"k{k}")
            with pytest.raises(InjectedFault):
                run_fs(table, counters=OperationCounters(), jobs=jobs,
                       frontier=frontier, checkpoint_dir=ckpt,
                       fault_injector=FaultInjector(kill_after_layer=k))
            resumed = run_fs(table, counters=OperationCounters(), jobs=jobs,
                             frontier=frontier, checkpoint_dir=ckpt,
                             resume=True)
            assert_same_result(resumed, clean)

    def test_run_fs_shared(self, tmp_path, jobs, frontier):
        tables = [TruthTable.random(4, seed=s) for s in (0, 1)]
        clean = run_fs_shared(tables, counters=OperationCounters(),
                              jobs=jobs, frontier=frontier)
        for k in range(1, 5):
            ckpt = str(tmp_path / f"k{k}")
            with pytest.raises(InjectedFault):
                run_fs_shared(tables, counters=OperationCounters(),
                              jobs=jobs, frontier=frontier,
                              checkpoint_dir=ckpt,
                              fault_injector=FaultInjector(kill_after_layer=k))
            resumed = run_fs_shared(tables, counters=OperationCounters(),
                                    jobs=jobs, frontier=frontier,
                                    checkpoint_dir=ckpt, resume=True)
            assert_same_result(resumed, clean)

    def test_run_fs_constrained(self, tmp_path, jobs, frontier):
        table = TruthTable.random(5, seed=3)
        precedence = [(0, 1), (2, 3)]
        clean = run_fs_constrained(table, precedence,
                                   counters=OperationCounters(),
                                   jobs=jobs, frontier=frontier)
        for k in range(1, 6):
            ckpt = str(tmp_path / f"k{k}")
            with pytest.raises(InjectedFault):
                run_fs_constrained(table, precedence,
                                   counters=OperationCounters(),
                                   jobs=jobs, frontier=frontier,
                                   checkpoint_dir=ckpt,
                                   fault_injector=FaultInjector(
                                       kill_after_layer=k))
            resumed = run_fs_constrained(table, precedence,
                                         counters=OperationCounters(),
                                         jobs=jobs, frontier=frontier,
                                         checkpoint_dir=ckpt, resume=True)
            assert_same_result(resumed, clean)
            assert resumed.feasible_subsets == clean.feasible_subsets

    def test_fs_star(self, tmp_path, jobs, frontier):
        # An FS* sweep from a non-trivial base: one variable pre-placed.
        table = TruthTable.random(5, seed=9)
        rule = ReductionRule.BDD

        def base_state():
            return compact(initial_state(table, rule), 0, rule,
                           OperationCounters())

        j_mask = 0b11110
        clean_counters = OperationCounters()
        clean = fs_star_levels(
            base_state(), j_mask, counters=clean_counters,
            config=EngineConfig(jobs=jobs, frontier=frontier),
        )[j_mask]
        for k in range(1, 5):
            ckpt = str(tmp_path / f"k{k}")
            with pytest.raises(InjectedFault):
                fs_star_levels(
                    base_state(), j_mask, counters=OperationCounters(),
                    config=EngineConfig(
                        jobs=jobs, frontier=frontier, checkpoint_dir=ckpt,
                        fault_injector=FaultInjector(kill_after_layer=k)),
                )
            resumed_counters = OperationCounters()
            resumed = fs_star_levels(
                base_state(), j_mask, counters=resumed_counters,
                config=EngineConfig(jobs=jobs, frontier=frontier,
                                    checkpoint_dir=ckpt, resume=True),
            )[j_mask]
            assert resumed.pi == clean.pi
            assert resumed.mincost == clean.mincost
            assert resumed.table.tobytes() == clean.table.tobytes()
            assert resumed_counters == clean_counters

    def test_window_sweep(self, tmp_path, jobs, frontier):
        # The window optimizer chains many FS* solves through one
        # directory; kill after every single checkpoint commit across
        # the whole multi-solve run and resume each time.
        table = TruthTable.random(4, seed=6)
        clean = window_sweep(table, width=3, counters=OperationCounters(),
                             config=EngineConfig(jobs=jobs,
                                                 frontier=frontier))
        probe = FaultInjector()
        window_sweep(table, width=3, counters=OperationCounters(),
                     config=EngineConfig(jobs=jobs, frontier=frontier,
                                         checkpoint_dir=str(tmp_path / "p"),
                                         fault_injector=probe))
        assert probe.commits_seen > 3  # several solves' worth of layers
        for writes in range(1, probe.commits_seen + 1):
            ckpt = str(tmp_path / f"w{writes}")
            with pytest.raises(InjectedFault):
                window_sweep(table, width=3, counters=OperationCounters(),
                             config=EngineConfig(
                                 jobs=jobs, frontier=frontier,
                                 checkpoint_dir=ckpt,
                                 fault_injector=FaultInjector(
                                     kill_after_writes=writes)))
            resumed = window_sweep(table, width=3,
                                   counters=OperationCounters(),
                                   config=EngineConfig(jobs=jobs,
                                                       frontier=frontier,
                                                       checkpoint_dir=ckpt,
                                                       resume=True))
            assert resumed.order == clean.order
            assert resumed.size == clean.size
            assert resumed.windows_solved == clean.windows_solved
            assert resumed.counters == clean.counters


# ----------------------------------------------------------------------
# resume semantics
# ----------------------------------------------------------------------

class TestResumeSemantics:
    def test_resume_with_no_checkpoints_is_a_cold_start(self, tmp_path):
        table = TruthTable.random(4, seed=2)
        clean = run_fs(table, counters=OperationCounters())
        resumed = run_fs(table, counters=OperationCounters(),
                         checkpoint_dir=str(tmp_path), resume=True)
        assert_same_result(resumed, clean)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_fs(TruthTable.random(3, seed=0), resume=True)

    def test_resume_after_completion_skips_all_layers(self, tmp_path):
        table = TruthTable.random(4, seed=2)
        ckpt = str(tmp_path)
        clean = run_fs(table, counters=OperationCounters(),
                       checkpoint_dir=ckpt)
        profiler = Profiler()
        resumed = run_fs(table, counters=OperationCounters(),
                         checkpoint_dir=ckpt, resume=True,
                         profiler=profiler)
        assert_same_result(resumed, clean)
        # The final layer's checkpoint restores the whole sweep: no DP
        # layer executes again.
        assert profiler.layers == []
        assert "checkpoint_load" in profiler.phases

    def test_checkpoint_write_and_load_are_profiled(self, tmp_path):
        table = TruthTable.random(4, seed=5)
        ckpt = str(tmp_path)
        writer = Profiler()
        with pytest.raises(InjectedFault):
            run_fs(table, profiler=writer, checkpoint_dir=ckpt,
                   fault_injector=FaultInjector(kill_after_layer=2))
        assert writer.phases["checkpoint_write"] >= 0.0
        loader = Profiler()
        run_fs(table, profiler=loader, checkpoint_dir=ckpt, resume=True)
        assert loader.phases["checkpoint_load"] >= 0.0
        assert loader.phases["checkpoint_write"] >= 0.0

    def test_different_constraints_never_cross_resume(self, tmp_path):
        # Two constrained runs share a directory; the precedence closure
        # is folded into the fingerprint, so B's resume must cold-start
        # rather than pick up A's (incompatible) layers.
        table = TruthTable.random(5, seed=3)
        ckpt = str(tmp_path)
        run_fs_constrained(table, [(0, 1), (2, 3)], checkpoint_dir=ckpt)
        clean_b = run_fs_constrained(table, [(4, 0)],
                                     counters=OperationCounters())
        resumed_b = run_fs_constrained(table, [(4, 0)],
                                       counters=OperationCounters(),
                                       checkpoint_dir=ckpt, resume=True)
        assert_same_result(resumed_b, clean_b)
        assert resumed_b.feasible_subsets == clean_b.feasible_subsets

    def test_frontier_policies_do_not_cross_resume(self, tmp_path):
        # A FULL-frontier run may not resume from MINCOST_ONLY files (the
        # retained layers differ in kind); the fingerprint keeps them
        # apart in the shared directory.
        table = TruthTable.random(4, seed=8)
        ckpt = str(tmp_path)
        run_fs(table, frontier="mincost", checkpoint_dir=ckpt)
        clean = run_fs(table, counters=OperationCounters(),
                       frontier="full")
        resumed = run_fs(table, counters=OperationCounters(),
                         frontier="full", checkpoint_dir=ckpt, resume=True)
        assert_same_result(resumed, clean)


# ----------------------------------------------------------------------
# corruption: every damage mode raises, naming the file
# ----------------------------------------------------------------------

def _checkpointed_run(tmp_path, n=4, seed=7):
    table = TruthTable.random(n, seed=seed)
    directory = tmp_path / "ckpt"
    run_fs(table, checkpoint_dir=str(directory))
    files = sorted(directory.glob("ckpt_*_layer_*.json"))
    assert len(files) == n
    return table, directory, files


class TestCorruption:
    def test_truncated_file(self, tmp_path):
        table, directory, files = _checkpointed_run(tmp_path)
        newest = str(files[-1])
        corrupt_checkpoint(newest, "truncate")
        with pytest.raises(CheckpointError) as excinfo:
            run_fs(table, checkpoint_dir=str(directory), resume=True)
        assert newest in str(excinfo.value)

    def test_garbage_file(self, tmp_path):
        table, directory, files = _checkpointed_run(tmp_path)
        newest = str(files[-1])
        corrupt_checkpoint(newest, "garbage")
        with pytest.raises(CheckpointError, match="JSON") as excinfo:
            run_fs(table, checkpoint_dir=str(directory), resume=True)
        assert newest in str(excinfo.value)

    def test_checksum_mismatch(self, tmp_path):
        # Surgical bit rot: the JSON still parses, the payload changed,
        # the stored checksum no longer matches.
        table, directory, files = _checkpointed_run(tmp_path)
        newest = str(files[-1])
        document = json.loads(files[-1].read_text())
        document["payload"]["subsets_processed"] += 1
        files[-1].write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="checksum") as excinfo:
            run_fs(table, checkpoint_dir=str(directory), resume=True)
        assert newest in str(excinfo.value)

    def test_flipped_byte(self, tmp_path):
        table, directory, files = _checkpointed_run(tmp_path)
        newest = str(files[-1])
        corrupt_checkpoint(newest, "flip")
        with pytest.raises(CheckpointError) as excinfo:
            run_fs(table, checkpoint_dir=str(directory), resume=True)
        assert newest in str(excinfo.value)

    def test_injector_can_corrupt_the_layer_it_kills(self, tmp_path):
        table = TruthTable.random(4, seed=7)
        directory = str(tmp_path)
        with pytest.raises(InjectedFault):
            run_fs(table, checkpoint_dir=directory,
                   fault_injector=FaultInjector(kill_after_layer=2,
                                                corrupt_layer=2,
                                                corruption="truncate"))
        with pytest.raises(CheckpointError):
            run_fs(table, checkpoint_dir=directory, resume=True)

    def test_corrupt_checkpoint_rejects_unknown_mode(self, tmp_path):
        _, _, files = _checkpointed_run(tmp_path)
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_checkpoint(str(files[-1]), "meteor")


class TestFingerprintMismatch:
    """A file forced under the wrong fingerprint name must be rejected
    with the differing configuration keys spelled out."""

    @staticmethod
    def _store(table, kernel="numpy", rule="bdd", frontier="full",
               directory="."):
        base = initial_state(table, ReductionRule(rule))
        full = (1 << table.n) - 1
        return CheckpointStore(
            str(directory),
            sweep_fingerprint(base, full, rule, table.n, kernel, frontier),
        )

    def test_different_kernel(self, tmp_path):
        table, directory, files = _checkpointed_run(tmp_path)
        python_store = self._store(table, kernel="python",
                                   directory=directory)
        target = python_store.layer_path(table.n)
        shutil.copy(str(files[-1]), target)
        with pytest.raises(CheckpointError) as excinfo:
            run_fs(table, engine="python", checkpoint_dir=str(directory),
                   resume=True)
        message = str(excinfo.value)
        assert target in message
        assert "kernel" in message

    def test_different_rule(self, tmp_path):
        table, directory, files = _checkpointed_run(tmp_path)
        zdd_store = self._store(table, rule="zdd", directory=directory)
        target = zdd_store.layer_path(table.n)
        shutil.copy(str(files[-1]), target)
        with pytest.raises(CheckpointError) as excinfo:
            zdd_store.load_file(target)
        message = str(excinfo.value)
        assert target in message
        assert "rule" in message

    def test_different_n(self, tmp_path):
        table, directory, files = _checkpointed_run(tmp_path)
        bigger = TruthTable.random(5, seed=7)
        big_store = self._store(bigger, directory=directory)
        target = big_store.layer_path(4)
        shutil.copy(str(files[-1]), target)
        with pytest.raises(CheckpointError) as excinfo:
            big_store.load_file(target)
        message = str(excinfo.value)
        assert target in message
        assert "universe_mask" in message


# ----------------------------------------------------------------------
# store round-trip details
# ----------------------------------------------------------------------

class TestStoreRoundTrip:
    def test_files_are_scoped_by_fingerprint(self, tmp_path):
        # Two different functions checkpoint into one directory without
        # interfering; each resume sees only its own files.
        a = TruthTable.random(4, seed=1)
        b = TruthTable.random(4, seed=2)
        directory = str(tmp_path)
        run_fs(a, checkpoint_dir=directory)
        run_fs(b, checkpoint_dir=directory)
        assert len(list(tmp_path.glob("ckpt_*_layer_*.json"))) == 8
        for table in (a, b):
            clean = run_fs(table, counters=OperationCounters())
            resumed = run_fs(table, counters=OperationCounters(),
                             checkpoint_dir=directory, resume=True)
            assert_same_result(resumed, clean)

    def test_layers_on_disk_and_load_latest(self, tmp_path):
        table, directory, files = _checkpointed_run(tmp_path)
        store = TestFingerprintMismatch._store(table, directory=directory)
        assert store.layers_on_disk() == [1, 2, 3, 4]
        restored = store.load_latest(upto=4)
        assert restored.layer == 4
        assert restored.path == store.layer_path(4)
        # upto caps which layers are considered (shorter sweeps ignore
        # deeper files).
        assert store.load_latest(upto=2).layer == 2
        assert store.load_latest(upto=0) is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        _, directory, _ = _checkpointed_run(tmp_path)
        assert list(directory.glob("*.tmp")) == []
