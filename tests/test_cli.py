"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import load_diagram, write_pla
from repro.truth_table import TruthTable


@pytest.fixture
def run(capsys):
    def invoke(*argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    return invoke


class TestOptimize:
    def test_expr(self, run):
        code, out, err = run("optimize", "--expr", "x0 & x1 | x2 & x3")
        assert code == 0
        assert "total size       : 6" in out
        assert "optimal ordering" in out

    @pytest.mark.parametrize("algorithm", ["fs", "astar", "optobdd", "bruteforce"])
    def test_algorithms_agree(self, run, algorithm):
        code, out, _ = run(
            "optimize", "--expr", "x0 & x1 | x2", "--algorithm", algorithm
        )
        assert code == 0
        assert "internal nodes   : 3" in out

    def test_zdd_rule(self, run):
        code, out, _ = run("optimize", "--expr", "x0 & x1", "--rule", "zdd")
        assert code == 0
        assert "rule             : zdd" in out

    def test_engine_and_jobs_flags(self, run):
        expr = "x0 & x1 | x2 & x3"
        _, reference, _ = run("optimize", "--expr", expr)
        for extra in (["--engine", "python"], ["--jobs", "2"]):
            code, out, _ = run("optimize", "--expr", expr, *extra)
            assert code == 0
            assert out == reference

    def test_unknown_engine_rejected(self, run):
        with pytest.raises(SystemExit):
            run("optimize", "--expr", "x0", "--engine", "cuda")

    def test_backend_flags_agree(self, run):
        expr = "x0 & x1 | x2 & x3"
        _, reference, _ = run("optimize", "--expr", expr)
        for extra in (["--backend", "serial"],
                      ["--backend", "thread", "--jobs", "2"],
                      ["--backend", "process", "--jobs", "2"]):
            code, out, _ = run("optimize", "--expr", expr, *extra)
            assert code == 0
            assert out == reference

    def test_unknown_backend_rejected(self, run):
        with pytest.raises(SystemExit):
            run("optimize", "--expr", "x0", "--backend", "gpu")

    def test_profile_flag_writes_trajectory(self, run, tmp_path):
        path = tmp_path / "profile.json"
        code, out, _ = run(
            "optimize", "--expr", "x0 & x1 | x2 & x3",
            "--profile", str(path),
        )
        assert code == 0
        assert "wrote profile" in out
        profile = json.loads(path.read_text())
        assert [layer["k"] for layer in profile["layers"]] == [1, 2, 3, 4]
        assert profile["peak_frontier_bytes"] > 0
        assert profile["layers"][-1]["counters"]["subsets_processed"] == 15
        assert profile["meta"]["kernel"] == "numpy"

    def test_pla_input(self, run, tmp_path):
        table = TruthTable.random(4, seed=1)
        path = tmp_path / "f.pla"
        path.write_text(write_pla(table))
        code, out, _ = run("optimize", "--pla", str(path))
        assert code == 0
        assert "variables        : 4" in out

    def test_blif_input(self, run, tmp_path):
        path = tmp_path / "ha.blif"
        path.write_text(
            ".model m\n.inputs a b\n.outputs s\n.names a b s\n10 1\n01 1\n.end\n"
        )
        code, out, _ = run("optimize", "--blif", str(path))
        assert code == 0
        assert "internal nodes   : 3" in out  # XOR

    def test_dimacs_input(self, run, tmp_path):
        path = tmp_path / "f.cnf"
        path.write_text("p cnf 2 2\n1 0\n2 0\n")
        code, out, _ = run("optimize", "--dimacs", str(path))
        assert code == 0
        assert "internal nodes   : 2" in out  # x0 & x1

    def test_exports(self, run, tmp_path):
        dot = tmp_path / "d.dot"
        blob = tmp_path / "d.json"
        code, out, _ = run(
            "optimize", "--expr", "x0 & x1",
            "--dot", str(dot), "--json", str(blob),
        )
        assert code == 0
        assert dot.read_text().startswith("digraph")
        diagram = load_diagram(blob)
        assert diagram.to_truth_table() == TruthTable.from_callable(
            2, lambda a, b: a & b
        )

    def test_requires_exactly_one_source(self, run, tmp_path):
        code, _, err = run("optimize")
        assert code == 2 and "exactly one" in err
        path = tmp_path / "f.pla"
        path.write_text(write_pla(TruthTable.random(2, seed=0)))
        code, _, err = run("optimize", "--expr", "x0", "--pla", str(path))
        assert code == 2

    def test_too_many_variables(self, run):
        code, _, err = run(
            "optimize", "--expr", "x0", "--num-vars", "20"
        )
        assert code == 2 and "practical range" in err


class TestOtherCommands:
    def test_tables(self, run):
        code, out, _ = run("tables")
        assert code == 0
        assert "gamma_0 = 2.98581" in out
        assert "k=6: gamma=2.83728" in out
        assert "2.77286" in out

    def test_gap(self, run):
        code, out, _ = run("gap", "--max-pairs", "3")
        assert code == 0
        lines = [l for l in out.splitlines() if l and l[0].isdigit() is False]
        assert "pairs" in out
        assert "    3     6           8            16        8" in out

    def test_heuristics(self, run):
        code, out, _ = run("heuristics", "--expr", "x0 & x1 | x2 & x3")
        assert code == 0
        assert "exact (FS)" in out
        assert "sift" in out
        assert "(1.00x)" in out  # exact row at least


class TestSharedOptimize:
    def test_all_outputs_blif(self, run, tmp_path):
        path = tmp_path / "ha.blif"
        path.write_text(
            ".model ha\n.inputs a b\n.outputs s c\n"
            ".names a b s\n10 1\n01 1\n.names a b c\n11 1\n.end\n"
        )
        code, out, _ = run("optimize", "--blif", str(path), "--all-outputs")
        assert code == 0
        assert "outputs          : 2 (s c)" in out
        assert "shared nodes     : 4" in out

    def test_all_outputs_pla(self, run, tmp_path):
        path = tmp_path / "f.pla"
        path.write_text(".i 2\n.o 2\n11 10\n01 01\n.e\n")
        code, out, _ = run("optimize", "--pla", str(path), "--all-outputs")
        assert code == 0
        assert "outputs          : 2" in out

    def test_all_outputs_requires_file_input(self, run):
        code, _, err = run("optimize", "--expr", "x0", "--all-outputs")
        assert code == 2 and "requires" in err


class TestReproduce:
    def test_quick_reproduction_passes(self, run):
        code, out, _ = run("reproduce", "--quick")
        assert code == 0
        assert "checks passed" in out
        assert "FAIL" not in out
        assert "Table 2, iteration 10" in out


class TestSymmetryAndCertify:
    def test_symmetry_command(self, run):
        code, out, _ = run("symmetry", "--expr", "x0 & x1 | x2 & x3")
        assert code == 0
        assert "{x0 x1} {x2 x3}" in out
        assert "ordering orbits  : 6 of 24" in out
        assert "size spread" in out

    def test_certify_roundtrip(self, run, tmp_path):
        path = tmp_path / "cert.json"
        code, out, _ = run("certify", "--expr", "x0 & x1 | x2",
                           "--out", str(path))
        assert code == 0 and "certified optimum: 3" in out
        code, out, _ = run("certify", "--expr", "x0 & x1 | x2",
                           "--check", str(path))
        assert code == 0 and "VALID" in out

    def test_certify_detects_wrong_function(self, run, tmp_path):
        path = tmp_path / "cert.json"
        run("certify", "--expr", "x0 & x1 | x2", "--out", str(path))
        # xor has a different DP table, so the certificate cannot verify
        code, out, _ = run("certify", "--expr", "x0 ^ x1 ^ x2",
                           "--check", str(path))
        assert code == 1 and "INVALID" in out


class TestProfileFlag:
    """Every DP-running subcommand accepts --profile and writes a
    trajectory with per-layer counters."""

    def _check(self, path, expected_layers):
        profile = json.loads(path.read_text())
        assert [layer["k"] for layer in profile["layers"]] == expected_layers
        assert profile["peak_frontier_bytes"] > 0
        return profile

    def test_optimize_all_outputs(self, run, tmp_path):
        blif = tmp_path / "ha.blif"
        blif.write_text(
            ".model ha\n.inputs a b\n.outputs s c\n"
            ".names a b s\n10 1\n01 1\n.names a b c\n11 1\n.end\n"
        )
        path = tmp_path / "profile.json"
        code, out, _ = run("optimize", "--blif", str(blif), "--all-outputs",
                           "--profile", str(path))
        assert code == 0
        assert "wrote profile" in out
        self._check(path, [1, 2])

    def test_gap(self, run, tmp_path):
        path = tmp_path / "profile.json"
        code, out, _ = run("gap", "--max-pairs", "2",
                           "--profile", str(path))
        assert code == 0
        assert "wrote profile" in out
        # One trajectory accumulates both achilles-heel runs (n=2, n=4).
        self._check(path, [1, 2, 1, 2, 3, 4])

    def test_heuristics(self, run, tmp_path):
        path = tmp_path / "profile.json"
        code, out, _ = run("heuristics", "--expr", "x0 & x1 | x2 & x3",
                           "--profile", str(path))
        assert code == 0
        assert "wrote profile" in out
        self._check(path, [1, 2, 3, 4])

    def test_certify(self, run, tmp_path):
        cert = tmp_path / "cert.json"
        path = tmp_path / "profile.json"
        code, out, _ = run("certify", "--expr", "x0 & x1 | x2",
                           "--out", str(cert), "--profile", str(path))
        assert code == 0
        assert "wrote profile" in out
        self._check(path, [1, 2, 3])


class TestCheckpointFlags:
    def test_checkpoint_then_resume(self, run, tmp_path):
        expr = "x0 & x1 | x2 & x3"
        ckpt = tmp_path / "ckpt"
        _, reference, _ = run("optimize", "--expr", expr)
        code, out, _ = run("optimize", "--expr", expr,
                           "--checkpoint-dir", str(ckpt))
        assert code == 0 and out == reference
        assert list(ckpt.glob("ckpt_*_layer_*.json"))
        code, out, _ = run("optimize", "--expr", expr,
                           "--checkpoint-dir", str(ckpt), "--resume")
        assert code == 0 and out == reference

    def test_resume_requires_checkpoint_dir(self, run):
        code, _, err = run("optimize", "--expr", "x0 & x1", "--resume")
        assert code == 2
        assert "--resume requires --checkpoint-dir" in err


class TestCacheFlags:
    def test_cache_dir_warm_run_served_from_cache(self, run, tmp_path):
        expr = "x0 & x1 | x2 & x3"
        cache_dir = str(tmp_path / "cache")
        code, cold, _ = run("optimize", "--expr", expr,
                            "--cache-dir", cache_dir)
        assert code == 0
        assert "served from" not in cold
        code, warm, _ = run("optimize", "--expr", expr,
                            "--cache-dir", cache_dir)
        assert code == 0
        assert "served from      : result cache" in warm
        assert "internal nodes   : 4" in warm

    def test_cache_stats_in_profile(self, run, tmp_path):
        expr = "x0 ^ x1 ^ x2"
        cache_dir = str(tmp_path / "cache")
        profile = tmp_path / "prof.json"
        run("optimize", "--expr", expr, "--cache-dir", cache_dir)
        code, out, _ = run("optimize", "--expr", expr,
                           "--cache-dir", cache_dir,
                           "--profile", str(profile))
        assert code == 0
        assert "cache            : 1 hits / 0 misses" in out
        payload = json.loads(profile.read_text())
        assert payload["cache"]["hits"] == 1
        assert payload["cache"]["misses"] == 0
        assert "cache_lookup" in payload["phases"]

    def test_renamed_variant_hits_across_runs(self, run, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run("optimize", "--expr", "x0 & x1 | x2", "--cache-dir", cache_dir)
        code, out, _ = run("optimize", "--expr", "x1 & x2 | x0",
                           "--cache-dir", cache_dir)
        assert code == 0
        assert "served from      : result cache" in out


class TestBatchOptimize:
    def manifest(self, tmp_path, entries):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(entries))
        return str(path)

    def test_batch_dedupes_variants(self, run, tmp_path):
        path = self.manifest(tmp_path, {"tables": [
            {"expr": "x0 & x1 | x2", "label": "f"},
            {"expr": "x1 & x2 | x0", "label": "f-renamed"},
            {"expr": "~(x0 & x1 | x2)", "label": "f-complemented"},
            {"expr": "x0 ^ x1", "label": "xor"},
        ]})
        code, out, _ = run("optimize", "--batch", path)
        assert code == 0
        assert "batch            : 4 tables, 2 unique functions" in out
        assert out.count("[cached]") == 2
        assert "f-renamed" in out

    def test_batch_bare_expression_strings(self, run, tmp_path):
        path = self.manifest(tmp_path, ["x0 & x1", "x0 | x1"])
        code, out, _ = run("optimize", "--batch", path)
        assert code == 0
        assert "2 tables, 2 unique functions" in out

    def test_batch_jobs_deterministic(self, run, tmp_path):
        entries = {"tables": [
            {"expr": "x0 & x1 | x2 & x3", "label": "a"},
            {"expr": "x0 ^ x1 ^ x2", "label": "b"},
            {"expr": "x2 & x3 | x0 & x1", "label": "c"},
        ]}
        path = self.manifest(tmp_path, entries)
        _, sequential, _ = run("optimize", "--batch", path)
        _, parallel, _ = run("optimize", "--batch", path, "--jobs", "3")
        assert sequential == parallel

    def test_batch_with_cache_dir_is_warm_second_time(self, run, tmp_path):
        path = self.manifest(tmp_path, ["x0 & x1 | x2"])
        cache_dir = str(tmp_path / "cache")
        run("optimize", "--batch", path, "--cache-dir", cache_dir)
        code, out, _ = run("optimize", "--batch", path,
                           "--cache-dir", cache_dir)
        assert code == 0
        assert "[cached]" in out
        assert "1 hits / 0 misses" in out

    def test_batch_pla_entry(self, run, tmp_path):
        tt = TruthTable.from_callable(3, lambda a, b, c: a & b | c)
        (tmp_path / "f.pla").write_text(write_pla(tt))
        path = self.manifest(tmp_path, [{"pla": "f.pla", "label": "from-pla"}])
        code, out, _ = run("optimize", "--batch", path)
        assert code == 0
        assert "from-pla" in out

    def test_batch_rejects_empty_manifest(self, run, tmp_path):
        path = self.manifest(tmp_path, [])
        code, _, err = run("optimize", "--batch", path)
        assert code == 2
        assert "non-empty" in err

    def test_batch_isolates_ambiguous_entry(self, run, tmp_path):
        # A malformed entry becomes a [failed] row (exit 1), not a
        # batch-aborting traceback; the other entries still solve.
        path = self.manifest(tmp_path, [
            {"expr": "x0", "pla": "f.pla"},
            {"expr": "x0 & x1", "label": "fine"},
        ])
        code, out, _ = run("optimize", "--batch", path)
        assert code == 1
        assert "[failed]" in out
        assert "exactly one" in out
        assert "fine" in out and "nodes=" in out
        assert "1 ok / 0 fallback / 1 failed" in out

    def test_shared_optimize_warm_marker(self, run, tmp_path):
        pla = tmp_path / "two.pla"
        pla.write_text(".i 3\n.o 2\n1-1 10\n011 01\n110 11\n.e\n")
        cache_dir = str(tmp_path / "cache")
        code, cold, _ = run("optimize", "--pla", str(pla), "--all-outputs",
                            "--cache-dir", cache_dir)
        assert code == 0
        assert "served from" not in cold
        code, warm, _ = run("optimize", "--pla", str(pla), "--all-outputs",
                            "--cache-dir", cache_dir)
        assert code == 0
        assert "served from      : result cache" in warm
        assert [l for l in warm.splitlines() if "shared nodes" in l] == \
               [l for l in cold.splitlines() if "shared nodes" in l]


class TestResourceGovernance:
    """--timeout / --max-frontier-mb / --fallback / --max-retries."""

    def heavy_pla(self, tmp_path, n=12, seed=3):
        path = tmp_path / f"heavy{n}.pla"
        path.write_text(write_pla(TruthTable.random(n, seed=seed)))
        return str(path)

    def test_timeout_without_fallback_is_a_clean_error(self, run, tmp_path):
        code, out, err = run("optimize", "--pla", self.heavy_pla(tmp_path),
                             "--timeout", "0.05")
        assert code == 2
        assert "error:" in err
        assert "wall-clock budget" in err
        assert "Traceback" not in err

    def test_timeout_with_fallback_degrades_and_tags(self, run, tmp_path):
        code, out, _ = run("optimize", "--pla", self.heavy_pla(tmp_path),
                           "--timeout", "0.05", "--fallback")
        assert code == 0
        assert "best ordering" in out
        assert "fallback, not certified optimal" in out
        assert "optimal ordering" not in out

    def test_fallback_with_ample_budget_stays_exact(self, run):
        code, out, _ = run("optimize", "--expr", "x0 & x1 | x2 & x3",
                           "--timeout", "60", "--fallback")
        assert code == 0
        assert "optimal ordering" in out
        assert "method           : fs (exact)" in out

    def test_generous_limits_do_not_change_output(self, run):
        expr = "x0 & x1 | x2 & x3"
        _, reference, _ = run("optimize", "--expr", expr)
        code, out, _ = run("optimize", "--expr", expr,
                           "--timeout", "60", "--max-frontier-mb", "512")
        assert code == 0
        assert out == reference

    def test_frontier_cap_without_fallback_is_a_clean_error(self, run):
        code, _, err = run("optimize", "--expr",
                           " | ".join(f"x{i} & x{i+1}" for i in range(0, 8, 2)),
                           "--max-frontier-mb", "0.0001")
        assert code == 2
        assert "frontier" in err

    def test_fallback_requires_fs_algorithm(self, run):
        code, _, err = run("optimize", "--expr", "x0 & x1",
                           "--algorithm", "astar", "--fallback")
        assert code == 2
        assert "requires --algorithm fs" in err

    def test_dot_rejected_for_uncertified_ordering(self, run, tmp_path):
        code, _, err = run("optimize", "--pla", self.heavy_pla(tmp_path),
                           "--timeout", "0.05", "--fallback",
                           "--dot", str(tmp_path / "out.dot"))
        assert code == 2
        assert "uncertified" in err

    def test_certify_rejects_inexact_result(self, run, tmp_path):
        code, _, err = run("certify", "--pla", self.heavy_pla(tmp_path),
                           "--timeout", "0.05", "--fallback",
                           "--out", str(tmp_path / "cert.json"))
        assert code == 2
        assert "cannot certify" in err

    def test_gap_marks_fallback_bounds(self, run):
        code, out, _ = run("gap", "--max-pairs", "6",
                           "--timeout", "0.05", "--fallback")
        assert code == 0
        assert "~" in out

    def test_max_retries_flag_accepted(self, run, tmp_path):
        code, out, _ = run("optimize", "--expr", "x0 & x1 | x2",
                           "--cache-dir", str(tmp_path / "cache"),
                           "--max-retries", "2")
        assert code == 0
        assert "total size" in out

    def manifest(self, tmp_path, entries):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(entries))
        return str(path)

    def test_batch_timeout_without_fallback_fails_only_slow_items(
            self, run, tmp_path):
        self.heavy_pla(tmp_path)
        path = self.manifest(tmp_path, [
            {"pla": "heavy12.pla", "label": "slow"},
            {"expr": "x0 & x1", "label": "fast"},
        ])
        code, out, _ = run("optimize", "--batch", path, "--timeout", "0.05")
        assert code == 1
        assert "[failed] BudgetExceeded" in out
        assert "fast" in out and "nodes=" in out
        assert "1 ok / 0 fallback / 1 failed" in out

    def test_batch_timeout_with_fallback_tags_rung(self, run, tmp_path):
        self.heavy_pla(tmp_path)
        path = self.manifest(tmp_path, [
            {"pla": "heavy12.pla", "label": "slow"},
            {"expr": "x0 & x1", "label": "fast"},
        ])
        code, out, _ = run("optimize", "--batch", path,
                           "--timeout", "0.05", "--fallback")
        assert code == 0
        assert "[fallback:" in out
        assert "1 ok / 1 fallback / 0 failed" in out
