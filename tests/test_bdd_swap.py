"""Unit tests for the in-place reordering manager (adjacent level swaps)."""

import random

import pytest

from repro.bdd import ReorderingBDD
from repro.errors import DimensionError, OrderingError
from repro.functions import achilles_bad_order, achilles_heel
from repro.truth_table import TruthTable, count_subfunctions, obdd_size


class TestBasics:
    def test_bad_order_rejected(self):
        with pytest.raises(OrderingError):
            ReorderingBDD(3, order=[0, 0, 1])

    def test_var_out_of_range(self):
        with pytest.raises(DimensionError):
            ReorderingBDD(2).var(2)

    def test_build_and_evaluate(self):
        tt = TruthTable.random(4, seed=0)
        m = ReorderingBDD(4)
        root = m.from_truth_table(tt)
        assert m.to_truth_table(root) == tt

    def test_size_matches_oracle(self):
        tt = TruthTable.random(5, seed=1)
        order = [3, 0, 4, 2, 1]
        m = ReorderingBDD(5, order)
        m.from_truth_table(tt)
        assert m.size() == obdd_size(tt, order)
        assert m.level_widths() == count_subfunctions(tt, order)

    def test_protect_unprotect(self):
        tt = TruthTable.random(3, seed=2)
        m = ReorderingBDD(3)
        root = m.from_truth_table(tt)
        m.unprotect(root)
        m.collect()
        assert m.size(include_terminals=False) == 0


class TestSwap:
    def test_swap_preserves_function(self):
        tt = TruthTable.random(4, seed=3)
        m = ReorderingBDD(4)
        root = m.from_truth_table(tt)
        m.swap(1)
        assert m.order == [0, 2, 1, 3]
        assert m.to_truth_table(root) == tt

    def test_swap_size_matches_oracle(self):
        rnd = random.Random(4)
        tt = TruthTable.random(5, seed=4)
        m = ReorderingBDD(5)
        root = m.from_truth_table(tt)
        for _ in range(30):
            level = rnd.randrange(4)
            m.swap(level)
            m.collect()
            assert m.size() == obdd_size(tt, m.order)
            assert m.to_truth_table(root) == tt

    def test_swap_is_involution(self):
        tt = TruthTable.random(4, seed=5)
        m = ReorderingBDD(4)
        m.from_truth_table(tt)
        before = m.size()
        m.swap(2)
        m.swap(2)
        m.collect()
        assert m.order == [0, 1, 2, 3]
        assert m.size() == before

    def test_swap_bounds(self):
        m = ReorderingBDD(3)
        with pytest.raises(OrderingError):
            m.swap(2)
        with pytest.raises(OrderingError):
            m.swap(-1)

    def test_swap_only_touches_two_levels(self):
        # Widths outside the swapped pair must be unchanged (Lemma 3).
        tt = TruthTable.random(6, seed=6)
        m = ReorderingBDD(6)
        m.from_truth_table(tt)
        before = m.level_widths()
        m.swap(2)
        m.collect()
        after = m.level_widths()
        assert before[:2] == after[:2]
        assert before[4:] == after[4:]

    def test_collision_forwarding(self):
        # A function engineered so a swap merges an upper node into an
        # existing lower node: f = (x0 ? g : g') where the swap creates
        # duplicate (var, lo, hi) triples.  Correctness = the oracle check.
        tt = TruthTable.from_callable(
            4, lambda a, b, c, d: (b & c) | (a & c & d) | ((1 - a) & b & d)
        )
        m = ReorderingBDD(4)
        root = m.from_truth_table(tt)
        for level in (0, 1, 2, 1, 0):
            m.swap(level)
            m.collect()
            assert m.size() == obdd_size(tt, m.order)
        assert m.to_truth_table(root) == tt


class TestMoveReorder:
    def test_move_var(self):
        tt = TruthTable.random(5, seed=7)
        m = ReorderingBDD(5)
        root = m.from_truth_table(tt)
        m.move_var(4, 0)
        assert m.order[0] == 4
        assert m.to_truth_table(root) == tt

    @pytest.mark.parametrize("seed", range(5))
    def test_reorder_to_arbitrary(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 6)
        tt = TruthTable.random(n, seed=100 + seed)
        target = list(range(n))
        rnd.shuffle(target)
        m = ReorderingBDD(n)
        root = m.from_truth_table(tt)
        m.reorder_to(target)
        assert m.order == target
        assert m.size() == obdd_size(tt, target)
        assert m.to_truth_table(root) == tt

    def test_reorder_validation(self):
        m = ReorderingBDD(3)
        with pytest.raises(OrderingError):
            m.reorder_to([0, 1])

    def test_multiple_roots_survive(self):
        m = ReorderingBDD(4)
        t1 = TruthTable.random(4, seed=8)
        t2 = TruthTable.random(4, seed=9)
        r1 = m.from_truth_table(t1)
        r2 = m.from_truth_table(t2)
        m.reorder_to([2, 3, 0, 1])
        assert m.to_truth_table(r1) == t1
        assert m.to_truth_table(r2) == t2


class TestInPlaceSift:
    def test_recovers_achilles_optimum(self):
        tt = achilles_heel(3)
        m = ReorderingBDD(6, achilles_bad_order(3))
        root = m.from_truth_table(tt)
        order, size = m.sift()
        assert size == 8
        assert m.to_truth_table(root) == tt
        assert obdd_size(tt, order) == size

    def test_never_worse(self):
        tt = TruthTable.random(6, seed=10)
        m = ReorderingBDD(6)
        m.from_truth_table(tt)
        before = m.size()
        _, size = m.sift()
        assert size <= before

    def test_matches_evaluation_level_sifting_quality(self):
        # The swap-based and truth-table-based sifting explore the same
        # neighbourhood; sizes must agree on a symmetric function where
        # every path leads to the unique optimum.
        from repro.bdd import sift as eval_sift
        from repro.functions import parity

        tt = parity(5)
        m = ReorderingBDD(5)
        m.from_truth_table(tt)
        _, size = m.sift()
        assert size == eval_sift(tt).size


class _NoCompressionBDD(ReorderingBDD):
    """``resolve`` without path compression.

    The base class's compressing resolve repairs forwarding chains as a
    side effect of ``collect()``'s own reachability pass (``roots()``
    resolves every root before the forward table is filtered), which
    masks GC bugs in the filter itself.  Disabling compression exposes
    the chain to ``collect()`` exactly as a traversal that has not yet
    touched the root would see it.
    """

    def resolve(self, u: int) -> int:
        while u in self._forward:
            u = self._forward[u]
        return u


class TestForwardGC:
    def _forward_identity(self, mgr, u):
        """Retire node ``u`` to a fresh id, exactly as a swap-collision
        does: the triple moves to a new id and ``u`` becomes a forward."""
        var, lo, hi = mgr._nodes.pop(u)
        del mgr._unique[(var, lo, hi)]
        fresh = mgr._next_id
        mgr._next_id += 1
        mgr._nodes[fresh] = (var, lo, hi)
        mgr._unique[(var, lo, hi)] = fresh
        mgr._forward[u] = fresh
        return fresh

    def test_double_forwarded_root_survives_collect(self):
        # A root forwarded twice between collects (r -> b -> c, the
        # target of the first collision itself colliding later).  Random
        # swap sequences essentially never produce this chain — the
        # intermediate must collide again before anything resolves the
        # root — so build it through the same mechanics swap() uses.
        tt = TruthTable.random(3, seed=5)
        mgr = _NoCompressionBDD(3)
        root = mgr.from_truth_table(tt)
        b = self._forward_identity(mgr, root)
        c = self._forward_identity(mgr, b)
        assert mgr._forward == {root: b, b: c}

        mgr.collect()

        # The kept entry must point at the final live node, not at the
        # dead intermediate id this very collect() just dropped.
        assert mgr._forward == {root: c}
        assert mgr.resolve(root) in mgr._nodes
        mgr.triple(root)  # would KeyError on a dangling forward
        assert mgr.to_truth_table(root) == tt

    def test_collect_leaves_only_final_live_targets(self):
        # Invariant after any collect: every kept forward belongs to a
        # root and points directly at a live node (or terminal).
        rng = random.Random(7)
        mgr = ReorderingBDD(4)
        for seed in (1, 2):
            mgr.from_truth_table(TruthTable.random(4, seed=seed))
        for _ in range(30):
            mgr.swap(rng.randrange(3))
        mgr.collect()
        for source, target in mgr._forward.items():
            assert source in mgr._roots
            assert target not in mgr._forward
            assert target in mgr._nodes or target in (0, 1)
