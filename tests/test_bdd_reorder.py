"""Unit tests for the ordering heuristics (the paper's motivating baselines)."""

import pytest

from repro.bdd import greedy_append, random_restart_search, sift, window_permute
from repro.core import run_fs
from repro.functions import (
    achilles_bad_order,
    achilles_good_size,
    achilles_heel,
    parity,
)
from repro.truth_table import TruthTable, obdd_size


class TestSift:
    def test_recovers_achilles_optimum(self):
        table = achilles_heel(3)
        result = sift(table, initial_order=achilles_bad_order(3))
        assert result.size == achilles_good_size(3)

    def test_order_is_permutation(self):
        table = TruthTable.random(5, seed=1)
        result = sift(table)
        assert sorted(result.order) == list(range(5))

    def test_size_consistent_with_oracle(self):
        table = TruthTable.random(5, seed=2)
        result = sift(table)
        assert obdd_size(table, list(result.order)) == result.size

    def test_never_worse_than_initial(self):
        table = TruthTable.random(5, seed=3)
        initial = [4, 2, 0, 3, 1]
        result = sift(table, initial_order=initial)
        assert result.size <= obdd_size(table, initial)

    def test_trajectory_monotone(self):
        table = achilles_heel(3)
        result = sift(table, initial_order=achilles_bad_order(3))
        assert result.trajectory == sorted(result.trajectory, reverse=True)

    def test_single_variable(self):
        result = sift(TruthTable.projection(1, 0))
        assert result.order == (0,)

    def test_custom_size_fn(self):
        from repro.bdd.mtbdd import mtbdd_size

        table = TruthTable.random(4, seed=4, num_values=3)
        result = sift(table, size_fn=mtbdd_size)
        assert result.size == mtbdd_size(table, list(result.order))


class TestWindowPermute:
    def test_recovers_achilles_optimum_with_wide_window(self):
        table = achilles_heel(2)
        result = window_permute(
            table, initial_order=achilles_bad_order(2), window=4
        )
        assert result.size == achilles_good_size(2)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            window_permute(TruthTable.random(3, seed=0), window=1)

    def test_result_consistent(self):
        table = TruthTable.random(5, seed=5)
        result = window_permute(table, window=3)
        assert obdd_size(table, list(result.order)) == result.size

    def test_never_worse_than_initial(self):
        table = TruthTable.random(5, seed=6)
        initial = list(range(5))
        result = window_permute(table, initial_order=initial, window=2)
        assert result.size <= obdd_size(table, initial)


class TestRandomRestart:
    def test_reproducible(self):
        table = TruthTable.random(5, seed=7)
        a = random_restart_search(table, tries=20, seed=42)
        b = random_restart_search(table, tries=20, seed=42)
        assert a.order == b.order and a.size == b.size

    def test_evaluation_budget(self):
        table = TruthTable.random(4, seed=8)
        result = random_restart_search(table, tries=10, seed=0)
        assert result.evaluations == 11  # initial + tries

    def test_finds_optimum_with_enough_tries(self):
        table = achilles_heel(2)
        # 4! = 24 orderings; 200 tries all but guarantees hitting an optimum.
        result = random_restart_search(table, tries=200, seed=1)
        assert result.size == achilles_good_size(2)


class TestGreedyAppend:
    def test_consistent_size(self):
        table = TruthTable.random(5, seed=9)
        result = greedy_append(table)
        assert obdd_size(table, list(result.order)) == result.size

    def test_exact_on_symmetric_functions(self):
        # Every ordering of a symmetric function is optimal.
        table = parity(4)
        result = greedy_append(table)
        assert result.size == run_fs(table).size

    def test_achilles(self):
        table = achilles_heel(3)
        result = greedy_append(table)
        assert result.size == achilles_good_size(3)


class TestHeuristicVsExact:
    @pytest.mark.parametrize("seed", range(5))
    def test_heuristics_bounded_below_by_optimum(self, seed):
        table = TruthTable.random(5, seed=100 + seed)
        optimum = run_fs(table).size
        for heuristic in (
            sift(table),
            window_permute(table, window=3),
            random_restart_search(table, tries=30, seed=seed),
            greedy_append(table),
        ):
            assert heuristic.size >= optimum
