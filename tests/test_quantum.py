"""Unit tests for the simulated quantum substrate."""

import math
import random

import pytest

from repro.analysis.counters import OperationCounters
from repro.quantum import (
    ClassicalMinimumFinder,
    QuantumMinimumFinder,
    QueryLedger,
    bbht_expected_queries,
    durr_hoyer,
    durr_hoyer_expected_queries,
    lemma6_query_bound,
    optimal_iterations,
    success_probability,
)


class TestGroverFormulas:
    def test_no_marked_items(self):
        assert success_probability(16, 0, 5) == 0.0

    def test_all_marked(self):
        assert success_probability(16, 16, 0) == 1.0

    def test_zero_iterations_is_uniform(self):
        assert success_probability(100, 7, 0) == pytest.approx(7 / 100)

    def test_optimal_iterations_boost(self):
        n, t = 1024, 1
        j = optimal_iterations(n, t)
        assert success_probability(n, t, j) > 0.99
        assert j == pytest.approx(math.pi / 4 * math.sqrt(n), rel=0.1)

    def test_optimal_iterations_single_query_when_half_marked(self):
        assert optimal_iterations(4, 1) == 1  # the famous exact case
        assert success_probability(4, 1, 1) == pytest.approx(1.0)

    def test_iteration_count_validation(self):
        with pytest.raises(ValueError):
            optimal_iterations(8, 0)
        with pytest.raises(ValueError):
            success_probability(0, 0, 1)
        with pytest.raises(ValueError):
            success_probability(4, 5, 1)

    def test_bbht_shape(self):
        assert bbht_expected_queries(100, 4) == pytest.approx(4.5 * 5.0)
        assert bbht_expected_queries(100, 0) == math.inf

    def test_dh_shape(self):
        assert durr_hoyer_expected_queries(64) == pytest.approx(22.5 * 8)


class TestLedger:
    def test_charge_accumulates(self):
        ledger = QueryLedger()
        ledger.charge(10, phase="a")
        ledger.charge(5, phase="b")
        ledger.charge(2.5, phase="a")
        assert ledger.total == 17.5
        assert ledger.by_phase == {"a": 12.5, "b": 5.0}
        assert ledger.invocations == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QueryLedger().charge(-1)

    def test_lemma6_charge(self):
        ledger = QueryLedger()
        amount = ledger.charge_minimum_finding(100, 1e-6)
        assert amount == math.ceil(lemma6_query_bound(100, 1e-6))
        assert ledger.total == amount

    def test_lemma6_bound_shape(self):
        # sqrt(N) scaling at fixed epsilon; sqrt(log 1/eps) at fixed N.
        assert lemma6_query_bound(400, 0.1) == pytest.approx(
            2 * lemma6_query_bound(100, 0.1)
        )
        assert lemma6_query_bound(100, 0.1 ** 4) == pytest.approx(
            2 * lemma6_query_bound(100, 0.1)
        )

    def test_snapshot(self):
        ledger = QueryLedger()
        ledger.charge(3, phase="x")
        snap = ledger.snapshot()
        assert snap["total"] == 3 and snap["phase:x"] == 3


class TestDurrHoyer:
    def test_single_element(self):
        out = durr_hoyer([42], rng=random.Random(0))
        assert out.index == 0 and out.succeeded

    def test_finds_unique_minimum_whp(self):
        rnd = random.Random(1)
        values = [rnd.randint(10, 100) for _ in range(50)]
        values[17] = 1
        hits = sum(
            durr_hoyer(values, rng=random.Random(t), epsilon=0.01).index == 17
            for t in range(50)
        )
        assert hits >= 47

    def test_accepts_tied_minima(self):
        values = [5, 1, 3, 1]
        out = durr_hoyer(values, rng=random.Random(2), epsilon=0.01)
        assert values[out.index] == 1

    def test_query_count_positive_and_bounded(self):
        values = list(range(64))
        out = durr_hoyer(values, rng=random.Random(3), epsilon=0.1)
        repetitions = math.ceil(math.log2(10))
        assert 0 < out.queries <= repetitions * (22.5 * 8 + 8 + 1) + repetitions

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            durr_hoyer([])

    def test_error_rate_within_epsilon_budget(self):
        # Adversarial-ish: many near-minima. Failure rate must be well
        # under the configured epsilon=0.25 across trials.
        values = [2] * 63 + [1]
        failures = sum(
            not durr_hoyer(values, rng=random.Random(t), epsilon=0.25).succeeded
            for t in range(200)
        )
        assert failures / 200 <= 0.25


class TestFinders:
    def test_classical_exact(self):
        finder = ClassicalMinimumFinder()
        out = finder.find(10, lambda i: (i - 7) ** 2)
        assert out.index == 7 and out.exact and out.queries == 0

    def test_classical_counts_evaluations(self):
        counters = OperationCounters()
        ClassicalMinimumFinder(counters).find(12, lambda i: i)
        assert counters.classical_evaluations == 12

    def test_classical_empty_rejected(self):
        with pytest.raises(ValueError):
            ClassicalMinimumFinder().find(0, lambda i: i)

    def test_quantum_exact_mode(self):
        ledger = QueryLedger()
        finder = QuantumMinimumFinder(ledger=ledger, epsilon=1e-6,
                                      rng=random.Random(0))
        out = finder.find(100, lambda i: abs(i - 31))
        assert out.index == 31 and out.exact
        assert out.queries == math.ceil(lemma6_query_bound(100, 1e-6))
        assert ledger.total == out.queries

    def test_quantum_sampled_mode(self):
        finder = QuantumMinimumFinder(epsilon=0.01, mode="sampled",
                                      rng=random.Random(4))
        out = finder.find(32, lambda i: i)
        assert not out.exact
        assert 0 <= out.index < 32
        assert out.queries > 0

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            QuantumMinimumFinder(mode="teleport")
        with pytest.raises(ValueError):
            QuantumMinimumFinder(epsilon=0.0)
