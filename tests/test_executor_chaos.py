"""Chaos tests: the process backend survives SIGKILLed workers.

The robustness contract under test: a worker killed before or during any
chunk of any layer costs the sweep one pool rebuild and the unmerged
chunks of that layer — never the run, and never bit-identity.  Results
AND operation counters of a crashed-and-healed sweep must equal the
serial baseline exactly, the sanctioned transport/healing gauges aside
(``tasks_shipped`` / ``bytes_shipped`` / ``pool_rebuilds`` /
``chunks_retried``).  When the healing budget runs out the failure mode
is :class:`~repro.errors.ExecutorBrokenError` carrying the last
committed checkpoint path, and a crash must never leak a ``/dev/shm``
segment.

Kills are injected deterministically via
:class:`~repro.core.checkpoint.FaultInjector` — the coordinator arms a
one-shot ``kill_self`` flag on a specific chunk's task, the worker
SIGKILLs itself (uncatchable, no cleanup: the OOM-killer scenario), and
the *healed* resubmission of the same chunk runs clean, which is what
makes recovery assertable.
"""

import os

import pytest

from repro.core import (
    EngineConfig,
    FrontierPolicy,
    ProcessBackend,
    run_fs,
)
from repro.core import executor as executor_module
from repro.core.checkpoint import FaultInjector
from repro.core.executor import shared_backend
from repro.errors import ExecutorBrokenError
from repro.truth_table import TruthTable

N = 5
TABLE = TruthTable.random(N, seed=1729)

# Gauges sanctioned to differ between a crashed-and-healed run and any
# clean run: transport volume (re-shipping the base table and retried
# chunks adds bytes) and the healing tallies themselves.
TRANSPORT_AND_HEALING = (
    "tasks_shipped",
    "bytes_shipped",
    "pool_rebuilds",
    "chunks_retried",
)


def chaos_counters(counters):
    snap = counters.snapshot()
    for extra in TRANSPORT_AND_HEALING:
        snap.pop(extra, None)
    return snap


def injector(layer, chunk=0, phase="before", kills=1):
    return FaultInjector(
        kill_worker_layer=layer,
        kill_worker_chunk=chunk,
        kill_worker_phase=phase,
        worker_kills=kills,
    )


@pytest.fixture(scope="module")
def healing_pool():
    """One self-healing pool for the whole module; rebuilt pools are the
    point of the tests, so cells deliberately share the instance."""
    backend = ProcessBackend(jobs=4, max_pool_rebuilds=2)
    yield backend
    backend.close()


def serial_baseline(**kwargs):
    return run_fs(TABLE, jobs=4, backend="serial", **kwargs)


class TestKillEveryLayer:
    """SIGKILL at every pooled layer x {before, during} the chunk."""

    @pytest.mark.parametrize("phase", ["before", "during"])
    @pytest.mark.parametrize("layer", [1, 2, 3, 4])
    def test_bit_identical_after_heal(self, healing_pool, phase, layer):
        base = serial_baseline()
        fi = injector(layer, phase=phase)
        result = run_fs(
            TABLE, jobs=4, backend=healing_pool, fault_injector=fi
        )
        assert fi.worker_kills_injected == 1
        assert result.order == base.order
        assert result.mincost == base.mincost
        assert chaos_counters(result.counters) == chaos_counters(
            base.counters
        )
        extras = dict(result.counters.extra)
        assert extras["pool_rebuilds"] == 1
        assert extras["chunks_retried"] >= 1

    def test_late_chunk_kill(self, healing_pool):
        """Killing a non-zero chunk index exercises the slot merge: the
        already-merged earlier chunks must not be re-run."""
        base = serial_baseline()
        fi = injector(2, chunk=2, phase="during")
        result = run_fs(
            TABLE, jobs=4, backend=healing_pool, fault_injector=fi
        )
        assert fi.worker_kills_injected == 1
        assert result.order == base.order
        assert result.mincost == base.mincost
        assert chaos_counters(result.counters) == chaos_counters(
            base.counters
        )


class TestKillMatrix:
    """Store x policy x jobs cells at one fixed kill site."""

    @pytest.mark.parametrize("store", ["dict", "packed"])
    @pytest.mark.parametrize(
        "policy", [FrontierPolicy.FULL, FrontierPolicy.MINCOST_ONLY]
    )
    def test_store_policy_cells(self, healing_pool, store, policy):
        base = serial_baseline(frontier=policy, frontier_store=store)
        fi = injector(2, phase="during")
        result = run_fs(
            TABLE,
            jobs=4,
            backend=healing_pool,
            frontier=policy,
            frontier_store=store,
            fault_injector=fi,
        )
        assert fi.worker_kills_injected == 1
        assert result.order == base.order
        assert result.mincost == base.mincost
        assert chaos_counters(result.counters) == chaos_counters(
            base.counters
        )
        assert dict(result.counters.extra)["pool_rebuilds"] == 1

    def test_jobs1_runs_inline_and_clean(self):
        """jobs=1 layers are single-chunk and run on the coordinator —
        there is no worker to kill, so an armed injector stays unspent
        and the run completes clean.  This pins the inline fast path."""
        base = serial_baseline()
        fi = injector(2, phase="before")
        backend = ProcessBackend(jobs=1, max_pool_rebuilds=2)
        try:
            result = run_fs(
                TABLE, jobs=1, backend=backend, fault_injector=fi
            )
        finally:
            backend.close()
        assert fi.worker_kills_injected == 0
        assert result.order == base.order
        assert result.mincost == base.mincost
        extras = dict(result.counters.extra)
        assert "pool_rebuilds" not in extras


class TestHealingExhausted:
    """More kills than rebuilds: fail loudly, point at the checkpoint."""

    def test_raises_executor_broken(self):
        backend = ProcessBackend(jobs=4, max_pool_rebuilds=1)
        try:
            fi = injector(2, phase="before", kills=5)
            with pytest.raises(ExecutorBrokenError) as excinfo:
                run_fs(TABLE, jobs=4, backend=backend, fault_injector=fi)
        finally:
            backend.close()
        err = excinfo.value
        assert err.layer == 2
        assert err.pool_rebuilds == 1
        assert err.checkpoint_path is None  # no checkpoint_dir configured
        assert "max_pool_rebuilds" in str(err)

    def test_zero_budget_fails_on_first_death(self):
        backend = ProcessBackend(jobs=4, max_pool_rebuilds=0)
        try:
            fi = injector(1, phase="before")
            with pytest.raises(ExecutorBrokenError) as excinfo:
                run_fs(TABLE, jobs=4, backend=backend, fault_injector=fi)
        finally:
            backend.close()
        assert excinfo.value.pool_rebuilds == 0

    def test_error_carries_last_checkpoint(self, tmp_path):
        """With checkpointing on, the error names the resume point: the
        last layer committed before the pool died for good."""
        backend = ProcessBackend(jobs=4, max_pool_rebuilds=0)
        try:
            fi = injector(3, phase="before", kills=5)
            with pytest.raises(ExecutorBrokenError) as excinfo:
                run_fs(
                    TABLE,
                    jobs=4,
                    backend=backend,
                    checkpoint_dir=str(tmp_path),
                    fault_injector=fi,
                )
        finally:
            backend.close()
        path = excinfo.value.checkpoint_path
        assert path is not None
        assert os.path.exists(path)
        # The run died at layer 3, so the checkpoint is an earlier layer.
        assert excinfo.value.layer == 3

    def test_resume_from_named_checkpoint(self, tmp_path):
        """The advertised recovery actually works: resume from the
        directory the error points into and finish bit-identically."""
        base = serial_baseline()
        backend = ProcessBackend(jobs=4, max_pool_rebuilds=0)
        try:
            fi = injector(3, phase="before", kills=5)
            with pytest.raises(ExecutorBrokenError):
                run_fs(
                    TABLE,
                    jobs=4,
                    backend=backend,
                    checkpoint_dir=str(tmp_path),
                    fault_injector=fi,
                )
        finally:
            backend.close()
        resumed = run_fs(
            TABLE,
            jobs=4,
            backend="process",
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert resumed.order == base.order
        assert resumed.mincost == base.mincost


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a /dev/shm tmpfs"
)
class TestNoShmLeak:
    """Crash paths must not strand shared-memory segments."""

    @staticmethod
    def _segments():
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("psm_")
        }

    def test_exhausted_healing_leaves_no_segment(self):
        before = self._segments()
        backend = ProcessBackend(jobs=4, max_pool_rebuilds=0)
        try:
            fi = injector(2, phase="before")
            with pytest.raises(ExecutorBrokenError):
                run_fs(TABLE, jobs=4, backend=backend, fault_injector=fi)
        finally:
            backend.close()
        assert self._segments() - before == set()
        assert executor_module._LIVE_SEGMENTS == {}

    def test_healed_sweep_leaves_no_segment(self, healing_pool):
        before = self._segments()
        fi = injector(1, phase="before")
        run_fs(TABLE, jobs=4, backend=healing_pool, fault_injector=fi)
        assert self._segments() - before == set()
        assert executor_module._LIVE_SEGMENTS == {}

    def test_atexit_sweeper_unlinks_registered_segments(self):
        """The atexit hook is the backstop for coordinators that die
        between creating a segment and reaching end_sweep."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=64)
        name = shm.name
        executor_module._register_segment(shm)
        assert name in executor_module._LIVE_SEGMENTS
        executor_module._unlink_leaked_segments()
        assert executor_module._LIVE_SEGMENTS == {}
        assert not os.path.exists(f"/dev/shm/{name}")


class TestSharedBackendMasking:
    """A broken close() must never mask the body's own exception."""

    class _ExplodingClose(ProcessBackend):
        def __init__(self, jobs=None, max_pool_rebuilds=None):
            super().__init__(
                jobs=jobs, max_pool_rebuilds=max_pool_rebuilds
            )
            self.close_calls = 0

        def close(self):
            self.close_calls += 1
            raise RuntimeError("pool teardown exploded")

    def _register(self, name):
        executor_module._BACKENDS[name] = self._ExplodingClose
        return name

    def test_body_exception_wins(self):
        name = self._register("exploding-close")
        try:
            with pytest.raises(ValueError, match="body failed"):
                with shared_backend(EngineConfig(backend=name)):
                    raise ValueError("body failed")
        finally:
            del executor_module._BACKENDS[name]

    def test_clean_exit_close_error_still_propagates(self):
        name = self._register("exploding-close")
        try:
            with pytest.raises(RuntimeError, match="teardown exploded"):
                with shared_backend(EngineConfig(backend=name)):
                    pass
        finally:
            del executor_module._BACKENDS[name]
