"""Unit tests for variable influence and the shortest-path query."""

import random

import pytest

from repro.analysis import (
    dead_variables,
    influence,
    influence_order,
    influences,
    total_influence,
)
from repro.bdd import BDD
from repro.core import run_fs
from repro.errors import DimensionError
from repro.functions import achilles_heel, multiplexer, parity, threshold
from repro.truth_table import TruthTable, count_subfunctions


class TestInfluence:
    def test_parity_saturates(self):
        assert influences(parity(5)) == [1.0] * 5

    def test_and_gate(self):
        table = TruthTable.from_callable(2, lambda a, b: a & b)
        assert influences(table) == [0.5, 0.5]

    def test_dead_variable_zero(self):
        table = TruthTable.from_callable(3, lambda a, b, c: a ^ c)
        assert influence(table, 1) == 0.0
        assert dead_variables(table) == [1]

    def test_range_checked(self):
        with pytest.raises(DimensionError):
            influence(TruthTable.random(2, seed=0), 2)

    def test_total_influence_bounds(self):
        table = TruthTable.random(5, seed=1)
        total = total_influence(table)
        assert 0.0 <= total <= 5.0

    def test_influence_is_flip_probability(self):
        table = TruthTable.random(4, seed=2)
        for var in range(4):
            flips = 0
            for a in range(16):
                if table.evaluate_packed(a) != table.evaluate_packed(
                    a ^ (1 << var)
                ):
                    flips += 1
            assert influence(table, var) == flips / 16

    def test_symmetric_function_uniform_influence(self):
        values = influences(threshold(5, 3))
        assert len(set(values)) == 1


class TestInfluenceOrder:
    def test_selects_lead_in_multiplexer(self):
        order = influence_order(multiplexer(2))
        assert set(order[:2]) == {0, 1}

    def test_descending_flag(self):
        table = TruthTable.from_callable(3, lambda a, b, c: (a & b) | c)
        descending = influence_order(table)
        ascending = influence_order(table, descending=False)
        assert descending[0] == ascending[-1] == 2  # x2 most influential

    def test_heuristic_quality_on_multiplexer(self):
        # For the mux, influence ordering matches the optimal family
        # (selects first): it achieves the exact optimum.
        table = multiplexer(2)
        cost = sum(count_subfunctions(table, influence_order(table)))
        assert cost == run_fs(table).mincost

    def test_no_better_than_optimum(self):
        for seed in range(4):
            table = TruthTable.random(5, seed=seed + 10)
            cost = sum(count_subfunctions(table, influence_order(table)))
            assert cost >= run_fs(table).mincost


class TestShortestSat:
    def test_prefers_cheap_branch(self):
        mgr = BDD(3)
        f = mgr.apply_or(
            mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(2)
        )
        assignment = mgr.shortest_sat(f)
        assert assignment == (0, 0, 1)

    def test_constants(self):
        mgr = BDD(2)
        assert mgr.shortest_sat(mgr.false) is None
        assert mgr.shortest_sat(mgr.true) == (0, 0)

    @pytest.mark.parametrize("seed", range(6))
    def test_minimality_vs_enumeration(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        table = TruthTable.random(n, seed=seed + 20)
        mgr = BDD(n)
        root = mgr.from_truth_table(table)
        assignment = mgr.shortest_sat(root)
        if table.count_ones() == 0:
            assert assignment is None
        else:
            assert table(*assignment) == 1
            assert sum(assignment) == min(
                bin(a).count("1") for a in table.ones()
            )

    def test_skipped_variables_default_zero(self):
        mgr = BDD(4)
        f = mgr.var(3)  # levels 0-2 skipped
        assert mgr.shortest_sat(f) == (0, 0, 0, 1)
