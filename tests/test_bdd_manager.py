"""Unit tests for the ITE-based OBDD manager."""

import itertools
import random

import pytest

from repro.bdd import BDD, FALSE, TRUE
from repro.errors import DimensionError, OrderingError
from repro.truth_table import TruthTable, obdd_size


@pytest.fixture
def mgr():
    return BDD(4)


class TestConstruction:
    def test_bad_order_rejected(self):
        with pytest.raises(OrderingError):
            BDD(3, order=[0, 0, 1])

    def test_negative_vars_rejected(self):
        with pytest.raises(DimensionError):
            BDD(-1)

    def test_terminals(self, mgr):
        assert mgr.false == FALSE and mgr.true == TRUE
        assert mgr.is_terminal(FALSE) and mgr.is_terminal(TRUE)
        assert mgr.level(TRUE) == 4

    def test_var_node(self, mgr):
        u = mgr.var(2)
        node = mgr.node(u)
        assert (node.var, node.lo, node.hi) == (2, FALSE, TRUE)

    def test_nvar(self, mgr):
        u = mgr.nvar(1)
        assert mgr.evaluate(u, [0, 0, 0, 0]) == 1
        assert mgr.evaluate(u, [0, 1, 0, 0]) == 0

    def test_custom_order_levels(self):
        mgr = BDD(3, order=[2, 0, 1])
        assert mgr.level_of_var(2) == 0
        assert mgr.level(mgr.var(2)) == 0
        assert mgr.level(mgr.var(1)) == 2


class TestReduction:
    def test_redundant_test_eliminated(self, mgr):
        # ite(x0, x1, x1) must collapse to x1 (rule 5(a)).
        assert mgr.ite(mgr.var(0), mgr.var(1), mgr.var(1)) == mgr.var(1)

    def test_unique_table_shares(self, mgr):
        a = mgr.apply_and(mgr.var(0), mgr.var(1))
        b = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert a == b

    def test_canonicity_across_equivalent_formulas(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        left = mgr.apply_not(mgr.apply_and(x, y))
        right = mgr.apply_or(mgr.apply_not(x), mgr.apply_not(y))
        assert left == right  # De Morgan, same node id by canonicity


class TestOperators:
    CASES = [
        ("and", lambda a, b: a & b),
        ("or", lambda a, b: a | b),
        ("xor", lambda a, b: a ^ b),
        ("nand", lambda a, b: 1 - (a & b)),
        ("nor", lambda a, b: 1 - (a | b)),
        ("xnor", lambda a, b: 1 - (a ^ b)),
        ("implies", lambda a, b: (1 - a) | b),
    ]

    @pytest.mark.parametrize("name,fn", CASES, ids=[c[0] for c in CASES])
    def test_binary_semantics(self, mgr, name, fn):
        f = mgr.var(0)
        g = mgr.var(1)
        r = mgr.apply(name, f, g)
        for a, b in itertools.product((0, 1), repeat=2):
            assert mgr.evaluate(r, [a, b, 0, 0]) == fn(a, b)

    def test_unknown_operator(self, mgr):
        with pytest.raises(ValueError):
            mgr.apply("nope", TRUE, FALSE)

    def test_ite_general(self, mgr):
        f = mgr.apply_xor(mgr.var(0), mgr.var(1))
        g = mgr.var(2)
        h = mgr.var(3)
        r = mgr.ite(f, g, h)
        for bits in itertools.product((0, 1), repeat=4):
            expected = bits[2] if bits[0] ^ bits[1] else bits[3]
            assert mgr.evaluate(r, list(bits)) == expected


class TestStructuralOps:
    def test_restrict(self, mgr):
        f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(2))
        assert mgr.restrict(f, 0, 1) == mgr.apply_or(mgr.var(1), mgr.var(2))
        assert mgr.restrict(f, 0, 0) == mgr.var(2)

    def test_compose(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        g = mgr.apply_or(mgr.var(2), mgr.var(3))
        composed = mgr.compose(f, 1, g)
        expected = mgr.apply_and(mgr.var(0), g)
        assert composed == expected

    def test_exists_forall(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.exists(f, [0]) == mgr.var(1)
        assert mgr.forall(f, [0]) == FALSE
        tautology = mgr.apply_or(mgr.var(0), mgr.apply_not(mgr.var(0)))
        assert mgr.forall(tautology, [0]) == TRUE

    def test_support(self, mgr):
        f = mgr.apply_xor(mgr.var(1), mgr.var(3))
        assert mgr.support(f) == [1, 3]
        assert mgr.support(TRUE) == []

    def test_size_of_terminal(self, mgr):
        assert mgr.size(TRUE) == 1
        assert mgr.size(TRUE, include_terminals=False) == 0

    def test_level_widths(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.level_widths(f) == [1, 1, 0, 0]


class TestCounting:
    def test_satcount_simple(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.satcount(f) == 4  # 2 free variables

    def test_satcount_terminals(self, mgr):
        assert mgr.satcount(TRUE) == 16
        assert mgr.satcount(FALSE) == 0

    def test_satcount_with_level_skips(self, mgr):
        f = mgr.apply_xor(mgr.var(0), mgr.var(3))
        assert mgr.satcount(f) == 8

    def test_sat_iter_matches_satcount(self, mgr):
        f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(2)), mgr.var(3))
        sats = list(mgr.sat_iter(f))
        assert len(sats) == mgr.satcount(f)
        assert len(set(sats)) == len(sats)
        for assignment in sats:
            assert mgr.evaluate(f, list(assignment)) == 1

    def test_sat_iter_false_empty(self, mgr):
        assert list(mgr.sat_iter(FALSE)) == []

    def test_sat_iter_true_complete(self):
        mgr = BDD(2)
        assert sorted(mgr.sat_iter(TRUE)) == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestTruthTableBridge:
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_random(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        order = list(range(n))
        rnd.shuffle(order)
        tt = TruthTable.random(n, seed=seed)
        mgr = BDD(n, order)
        root = mgr.from_truth_table(tt)
        assert mgr.to_truth_table(root) == tt

    @pytest.mark.parametrize("seed", range(8))
    def test_size_matches_subfunction_oracle(self, seed):
        rnd = random.Random(100 + seed)
        n = rnd.randint(1, 5)
        order = list(range(n))
        rnd.shuffle(order)
        tt = TruthTable.random(n, seed=200 + seed)
        mgr = BDD(n, order)
        root = mgr.from_truth_table(tt)
        assert mgr.size(root) == obdd_size(tt, order)

    def test_from_truth_table_arity_check(self):
        with pytest.raises(DimensionError):
            BDD(3).from_truth_table(TruthTable.constant(2, 0))

    def test_zero_variable_table(self):
        mgr = BDD(0)
        assert mgr.from_truth_table(TruthTable(0, [1])) == TRUE
        assert mgr.from_truth_table(TruthTable(0, [0])) == FALSE

    def test_evaluate_arity_check(self, mgr):
        with pytest.raises(DimensionError):
            mgr.evaluate(TRUE, [0, 1])

    def test_clear_caches_preserves_results(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        mgr.clear_caches()
        assert mgr.apply_and(mgr.var(0), mgr.var(1)) == f


class TestConstrain:
    """Coudert-Madre generalized cofactor."""

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_on_care_set(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        f_tt = TruthTable.random(n, seed=seed)
        c_tt = TruthTable.random(n, seed=seed + 100)
        if c_tt.count_ones() == 0:
            c_tt = ~c_tt
        mgr = BDD(n)
        f = mgr.from_truth_table(f_tt)
        c = mgr.from_truth_table(c_tt)
        g_tt = mgr.to_truth_table(mgr.constrain(f, c))
        for a in range(1 << n):
            if c_tt.evaluate_packed(a):
                assert g_tt.evaluate_packed(a) == f_tt.evaluate_packed(a)

    def test_identities(self):
        mgr = BDD(3)
        f = mgr.apply_xor(mgr.var(0), mgr.var(2))
        c = mgr.var(1)
        assert mgr.constrain(f, mgr.true) == f
        assert mgr.constrain(mgr.true, c) == mgr.true
        assert mgr.constrain(mgr.false, c) == mgr.false
        # f AND c is invariant under constraining f by c
        assert mgr.apply_and(mgr.constrain(f, c), c) == mgr.apply_and(f, c)

    def test_empty_care_set_rejected(self):
        mgr = BDD(2)
        with pytest.raises(ValueError):
            mgr.constrain(mgr.var(0), mgr.false)

    def test_can_shrink_the_diagram(self):
        # f restricted to the cube x0=1 collapses to the cofactor.
        mgr = BDD(3)
        f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(2))
        g = mgr.constrain(f, mgr.var(0))
        assert g == mgr.apply_or(mgr.var(1), mgr.var(2))
        assert mgr.size(g) <= mgr.size(f)
