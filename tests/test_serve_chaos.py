"""Serve-layer robustness: a dead pool costs one request, not the daemon.

The supervisor contract under test: when the warm process backend dies
mid-request (workers SIGKILLed — the container-OOM scenario), exactly
the in-flight request fails, with a retryable 503 ``BackendRestarting``;
the daemon swaps in a freshly warmed backend under its mutex, keeps
answering, and accounts the swap in ``backend_restarts`` and the
``health`` op.  On the client side, ``ServeClient(retries=...)`` rides
through both that 503 and dropped connections on idempotent ops —
resubmitting ``solve`` with the *same* request id — while staying
strictly opt-in (default 0 retries) and never auto-retrying
``solve_many``.
"""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro import solve
from repro.errors import ServeError
from repro.serve import ServeClient, ServeConfig, running_server
from repro.truth_table import TruthTable

# Distinct tables per request: the daemon's always-on result cache
# would otherwise answer a repeated fingerprint without ever touching
# the (deliberately broken) backend.
TABLE_A = TruthTable.random(5, seed=41)
TABLE_B = TruthTable.random(5, seed=42)
TABLE_C = TruthTable.random(5, seed=43)


def _values_payload(table):
    return {
        "values": "".join(str(int(v)) for v in table.values),
        "n": table.n,
    }


def _paper_view(wire_counters):
    """Wire counters minus the transport/healing gauges and the daemon's
    cache accounting — the residue must be comparable across backends
    and against a cache-less direct solve."""
    return {
        k: v
        for k, v in wire_counters.items()
        if k
        not in (
            "tasks_shipped",
            "bytes_shipped",
            "pool_rebuilds",
            "chunks_retried",
            "cache_hits",
            "cache_misses",
            "cache_stores",
        )
    }


def _process_config(**overrides):
    """A server whose backend really forks workers — the thing that can
    die.  max_pool_rebuilds=0 turns off executor-level healing so worker
    death surfaces to the supervisor deterministically."""
    defaults = dict(
        backend="process",
        jobs=2,
        max_pool_rebuilds=0,
        max_inflight=1,
        queue_limit=16,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _kill_pool_workers(server):
    """SIGKILL every child of the daemon's warm pool."""
    pool = server._backend._pool
    assert pool is not None, "pool not warmed yet"
    for proc in list(pool._processes.values()):
        os.kill(proc.pid, signal.SIGKILL)


class TestBackendSupervisor:
    def test_daemon_survives_pool_death(self):
        direct_a = solve(TABLE_A)
        direct_c = solve(TABLE_C)
        with running_server(_process_config()) as server:
            with ServeClient(server.address) as client:
                # Warm the pool with a real solve.
                first = client.solve(
                    method="fs", **_values_payload(TABLE_A)
                )
                assert first["mincost"] == direct_a.mincost

                _kill_pool_workers(server)

                # The in-flight request over the corpse fails retryably.
                with pytest.raises(ServeError) as excinfo:
                    client.solve(method="fs", **_values_payload(TABLE_B))
                assert excinfo.value.status == 503
                assert "BackendRestarting" in str(excinfo.value)

                # ...and only that request: the swap already happened by
                # the time the 503 went out, so the next solve succeeds
                # bit-identically on the fresh backend.
                again = client.solve(
                    method="fs", **_values_payload(TABLE_C)
                )
                assert tuple(again["order"]) == direct_c.order
                assert again["mincost"] == direct_c.mincost
                assert _paper_view(again["counters"]) == _paper_view(
                    direct_c.counters.snapshot()
                )

                health = client.health()
                assert health["healthy"] is True
                assert health["backend_alive"] is True
                assert health["backend_restarts"] == 1
                assert health["last_restart_seconds_ago"] is not None
                assert client.metrics()["server"]["backend_restarts"] == 1

    def test_client_retries_ride_through_restart(self):
        direct_b = solve(TABLE_B)
        with running_server(_process_config()) as server:
            client = ServeClient(
                server.address, retries=3, backoff=0.01
            )
            try:
                client.solve(method="fs", **_values_payload(TABLE_A))
                _kill_pool_workers(server)
                # With retries armed the 503 is invisible to the caller.
                healed = client.solve(
                    method="fs", **_values_payload(TABLE_B)
                )
                assert tuple(healed["order"]) == direct_b.order
                assert healed["mincost"] == direct_b.mincost
                assert client.health()["backend_restarts"] == 1
            finally:
                client.close()

    def test_health_op_on_healthy_daemon(self):
        with running_server(_process_config()) as server:
            with ServeClient(server.address) as client:
                health = client.health()
                assert health["healthy"] is True
                assert health["backend"] == "process"
                assert health["backend_restarts"] == 0
                assert health["last_restart_seconds_ago"] is None
                assert health["queue_depth"] == 0
                assert health["in_flight"] == 0
                assert health["uptime_seconds"] >= 0


# ----------------------------------------------------------------------
# ServeClient reconnect-with-backoff against a scripted stub server
# ----------------------------------------------------------------------

class _FlakyStub:
    """A server that drops the first ``drops`` connections after reading
    one request line, then serves normally — the shape of a daemon whose
    frontend died and came back."""

    def __init__(self, drops=1, responses=None):
        self.drops = drops
        self.responses = list(responses or [])
        self.received = []
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                # makefile() keeps the socket alive until the file is
                # closed too, so hang-ups must close both.
                f = conn.makefile("rwb")
                try:
                    if self.connections <= self.drops:
                        f.readline()  # swallow the request, then hang up
                        continue
                    while True:
                        line = f.readline()
                        if not line:
                            break
                        request = json.loads(line)
                        self.received.append(request)
                        if self.responses:
                            body = self.responses.pop(0)
                        else:
                            body = {"ok": True, "pong": True}
                        body = {**body, "id": request.get("id")}
                        f.write(json.dumps(body).encode() + b"\n")
                        f.flush()
                finally:
                    f.close()

    def close(self):
        self._sock.close()


class TestClientReconnect:
    def test_off_by_default(self):
        stub = _FlakyStub(drops=1)
        try:
            with ServeClient(stub.address) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.ping()
                assert excinfo.value.status == 503
        finally:
            stub.close()

    def test_reconnects_and_resends_same_id(self):
        stub = _FlakyStub(drops=2)
        try:
            client = ServeClient(stub.address, retries=3, backoff=0.0)
            try:
                assert client.ping() is True
            finally:
                client.close()
            assert stub.connections == 3
            assert len(stub.received) == 1
        finally:
            stub.close()

    def test_retries_exhausted_raises(self):
        stub = _FlakyStub(drops=5)
        try:
            client = ServeClient(stub.address, retries=2, backoff=0.0)
            try:
                with pytest.raises(ServeError):
                    client.ping()
            finally:
                client.close()
        finally:
            stub.close()

    def test_backend_restarting_resubmits_same_id(self):
        restarting = {
            "ok": False,
            "status": 503,
            "error": {"type": "BackendRestarting", "retryable": True},
        }
        stub = _FlakyStub(
            drops=0,
            responses=[restarting, {"ok": True, "result": {"mincost": 3}}],
        )
        try:
            client = ServeClient(stub.address, retries=2, backoff=0.0)
            try:
                result = client.solve(values="0110", n=2)
                assert result == {"mincost": 3}
            finally:
                client.close()
            # One connection, two submissions, identical request id.
            assert stub.connections == 1
            assert len(stub.received) == 2
            assert stub.received[0]["id"] == stub.received[1]["id"]
            assert stub.received[0] == stub.received[1]
        finally:
            stub.close()

    def test_draining_503_is_not_retried(self):
        draining = {
            "ok": False,
            "status": 503,
            "error": {"type": "Draining", "retryable": True},
        }
        stub = _FlakyStub(drops=0, responses=[draining])
        try:
            client = ServeClient(stub.address, retries=5, backoff=0.0)
            try:
                with pytest.raises(ServeError, match="Draining"):
                    client.ping()
            finally:
                client.close()
            assert len(stub.received) == 1
        finally:
            stub.close()

    def test_client_errors_never_retried(self):
        bad = {
            "ok": False,
            "status": 400,
            "error": {"type": "BadRequest", "message": "no such op"},
        }
        stub = _FlakyStub(drops=0, responses=[bad])
        try:
            client = ServeClient(stub.address, retries=5, backoff=0.0)
            try:
                with pytest.raises(ServeError, match="BadRequest"):
                    client.metrics()
            finally:
                client.close()
            assert len(stub.received) == 1
        finally:
            stub.close()

    def test_solve_many_is_never_auto_retried(self):
        stub = _FlakyStub(drops=1)
        try:
            client = ServeClient(stub.address, retries=5, backoff=0.0)
            try:
                with pytest.raises(ServeError) as excinfo:
                    client.solve_many([{"values": "0110", "n": 2}])
                assert excinfo.value.status == 503
            finally:
                client.close()
            assert stub.connections == 1
        finally:
            stub.close()

    def test_backoff_sleeps_between_attempts(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        stub = _FlakyStub(drops=2)
        try:
            client = ServeClient(stub.address, retries=3, backoff=0.2)
            try:
                assert client.ping() is True
            finally:
                client.close()
            assert sleeps == [0.2, 0.4]
        finally:
            stub.close()

    def test_constructor_validates_knobs(self):
        stub = _FlakyStub(drops=0)
        try:
            with pytest.raises(ValueError):
                ServeClient(stub.address, retries=-1)
            with pytest.raises(ValueError):
                ServeClient(stub.address, backoff=-0.5)
        finally:
            stub.close()
