"""Unit tests for the exponential-size counting argument."""

import math

import pytest

from repro.analysis.counting import (
    exponential_necessity_threshold,
    fraction_of_easy_functions_bound,
    log2_functions_with_at_most,
    max_obdd_nodes,
    max_profile,
)
from repro.core import run_fs
from repro.errors import DimensionError
from repro.truth_table import TruthTable, count_subfunctions


class TestMaxProfile:
    def test_small_cases(self):
        assert max_profile(1) == [1]
        assert max_profile(2) == [1, 2]
        assert max_profile(3) == [1, 2, 2]
        assert max_profile(4) == [1, 2, 4, 2]

    def test_every_measured_profile_is_dominated(self):
        for seed in range(10):
            table = TruthTable.random(5, seed=seed)
            widths = count_subfunctions(table, list(range(5)))
            caps = max_profile(5)
            assert all(w <= c for w, c in zip(widths, caps))

    def test_max_nodes_consistency(self):
        assert max_obdd_nodes(4) == sum(max_profile(4)) + 2
        assert max_obdd_nodes(4, include_terminals=False) == sum(max_profile(4))

    def test_validation(self):
        with pytest.raises(DimensionError):
            max_profile(-1)


class TestCountingBound:
    def test_bound_is_sound_exhaustively_n2(self):
        # All 16 two-variable functions: count how many have optimal
        # size <= s; the log bound must dominate for every s.
        from itertools import product

        sizes = []
        for bits in product((0, 1), repeat=4):
            sizes.append(run_fs(TruthTable(2, list(bits))).mincost)
        for s in range(0, 4):
            actual = sum(1 for size in sizes if size <= s)
            assert math.log2(max(actual, 1)) <= log2_functions_with_at_most(2, s)

    def test_monotone_in_s(self):
        values = [log2_functions_with_at_most(8, s) for s in range(1, 30)]
        assert values == sorted(values)

    def test_threshold_certifies_hard_function(self):
        # At the threshold the easy-function count is strictly below
        # 2^{2^n}: some function must exceed the threshold.
        for n in (4, 8, 12):
            s = exponential_necessity_threshold(n)
            assert log2_functions_with_at_most(n, s) < float(1 << n)
            assert log2_functions_with_at_most(n, s + 1) >= float(1 << n)

    @pytest.mark.parametrize("n", [8, 12, 16, 24, 32])
    def test_threshold_grows_like_2n_over_n(self, n):
        ratio = exponential_necessity_threshold(n) * 2 * n / (1 << n)
        assert 0.8 < ratio < 1.6

    def test_threshold_validation(self):
        with pytest.raises(DimensionError):
            exponential_necessity_threshold(0)

    def test_fraction_bound_range(self):
        assert fraction_of_easy_functions_bound(10, 1) < 1e-200
        assert fraction_of_easy_functions_bound(3, 100) == 1.0

    def test_fraction_bound_empirical_n5(self):
        # Only a vanishing fraction of 5-var functions can be tiny.
        bound = fraction_of_easy_functions_bound(5, 3)
        sample = sum(
            run_fs(TruthTable.random(5, seed=s)).mincost <= 3
            for s in range(40)
        )
        assert sample / 40 <= min(bound * 2 + 0.05, 1.0)
