"""Property-based tests (hypothesis) for the extension subsystems:
in-place swaps, complement edges, shared forests, windows, A*, symmetric
closed forms, and the statevector layer."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.symmetric import (
    symmetric_from_value_vector,
    symmetric_profile,
)
from repro.bdd import ReorderingBDD
from repro.bdd.cbdd import CBDD, cbdd_size, negate
from repro.core import exact_window, run_fs, run_fs_shared
from repro.core.astar import astar_optimal_ordering
from repro.core.shared import brute_force_shared, build_forest, count_shared_subfunctions
from repro.quantum import success_probability
from repro.quantum.statevector import grover_iterate, uniform_state
from repro.truth_table import TruthTable, count_subfunctions, obdd_size

small_tables = st.integers(1, 4).flatmap(
    lambda n: st.lists(
        st.integers(0, 1), min_size=1 << n, max_size=1 << n
    ).map(lambda values: TruthTable(n, values))
)

table_pairs = st.integers(1, 3).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 1), min_size=1 << n, max_size=1 << n),
        st.lists(st.integers(0, 1), min_size=1 << n, max_size=1 << n),
    ).map(lambda vv: (TruthTable(n, vv[0]), TruthTable(n, vv[1])))
)

common = settings(
    max_examples=50, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# in-place swaps
# ----------------------------------------------------------------------
@given(small_tables, st.data())
@common
def test_swap_preserves_function_and_matches_oracle(tt, data):
    if tt.n < 2:
        return
    m = ReorderingBDD(tt.n)
    root = m.from_truth_table(tt)
    for _ in range(4):
        level = data.draw(st.integers(0, tt.n - 2))
        m.swap(level)
    m.collect()
    assert m.to_truth_table(root) == tt
    assert m.size() == obdd_size(tt, m.order)


@given(small_tables, st.data())
@common
def test_reorder_to_any_permutation(tt, data):
    target = data.draw(st.permutations(list(range(tt.n))))
    m = ReorderingBDD(tt.n)
    root = m.from_truth_table(tt)
    m.reorder_to(list(target))
    assert m.to_truth_table(root) == tt
    assert m.size() == obdd_size(tt, list(target))


# ----------------------------------------------------------------------
# complement edges
# ----------------------------------------------------------------------
@given(small_tables)
@common
def test_cbdd_roundtrip_and_free_negation(tt):
    m = CBDD(tt.n)
    root = m.from_truth_table(tt)
    assert m.to_truth_table(root) == tt
    assert m.from_truth_table(~tt) == negate(root)
    assert m.satcount(root) == tt.count_ones()


@given(small_tables, st.data())
@common
def test_cbdd_never_bigger_than_plain(tt, data):
    order = data.draw(st.permutations(list(range(tt.n))))
    assert cbdd_size(tt, list(order), include_terminals=False) <= obdd_size(
        tt, list(order), include_terminals=False
    )


# ----------------------------------------------------------------------
# shared forests
# ----------------------------------------------------------------------
@given(table_pairs)
@common
def test_shared_optimum_matches_bruteforce(pair):
    f, g = pair
    assert run_fs_shared([f, g]).mincost == brute_force_shared([f, g])[1]


@given(table_pairs, st.data())
@common
def test_forest_roundtrip_and_oracle(pair, data):
    f, g = pair
    order = data.draw(st.permutations(list(range(f.n))))
    forest = build_forest([f, g], list(order))
    assert forest.to_truth_tables() == [f, g]
    assert forest.mincost == sum(count_shared_subfunctions([f, g], list(order)))


@given(table_pairs)
@common
def test_shared_bounds(pair):
    f, g = pair
    shared = run_fs_shared([f, g]).mincost
    assert shared <= run_fs(f).mincost + run_fs(g).mincost
    assert shared >= max(run_fs(f).mincost, run_fs(g).mincost)


# ----------------------------------------------------------------------
# windows and A*
# ----------------------------------------------------------------------
@given(small_tables, st.data())
@common
def test_exact_window_never_regresses_and_fixes_outside(tt, data):
    if tt.n < 2:
        return
    order = list(data.draw(st.permutations(list(range(tt.n)))))
    width = data.draw(st.integers(2, tt.n))
    start = data.draw(st.integers(0, tt.n - width))
    before = sum(count_subfunctions(tt, order))
    result = exact_window(tt, order, start, width)
    assert result.size <= before
    assert list(result.order[:start]) == order[:start]
    assert list(result.order[start + width:]) == order[start + width:]


@given(small_tables)
@common
def test_astar_equals_fs(tt):
    assert astar_optimal_ordering(tt).mincost == run_fs(tt).mincost


# ----------------------------------------------------------------------
# symmetric closed form
# ----------------------------------------------------------------------
@given(st.integers(1, 6).flatmap(
    lambda n: st.lists(st.integers(0, 1), min_size=n + 1, max_size=n + 1)
    .map(lambda vec: (n, vec))
))
@common
def test_symmetric_profile_matches_generic_oracle(n_vec):
    n, vec = n_vec
    table = symmetric_from_value_vector(n, vec)
    assert symmetric_profile(n, vec) == count_subfunctions(
        table, list(range(n))
    )


# ----------------------------------------------------------------------
# statevector layer
# ----------------------------------------------------------------------
@given(
    st.integers(2, 64),
    st.data(),
)
@common
def test_grover_iteration_preserves_norm_and_formula(num_items, data):
    num_marked = data.draw(st.integers(0, num_items))
    marked = list(range(num_marked))
    state = uniform_state(num_items)
    for j in range(1, 4):
        state = grover_iterate(state, marked)
        norm = float(np.vdot(state, state).real)
        assert math.isclose(norm, 1.0, abs_tol=1e-9)
        measured = float(sum(abs(state[i]) ** 2 for i in marked))
        assert math.isclose(
            measured, success_probability(num_items, num_marked, j),
            abs_tol=1e-9,
        )
