"""Property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._bitops import (
    compress_assignment,
    extract_bit,
    insert_bit,
    popcount,
    spread_assignment,
)
from repro.analysis.entropy import binary_entropy, log2_binomial
from repro.bdd import BDD, ZDD
from repro.core import (
    ReductionRule,
    brute_force_optimal,
    build_diagram,
    mincost_by_split,
    opt_obdd,
    run_fs,
)
from repro.truth_table import TruthTable, count_subfunctions, obdd_size

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
small_tables = st.integers(1, 4).flatmap(
    lambda n: st.lists(
        st.integers(0, 1), min_size=1 << n, max_size=1 << n
    ).map(lambda values: TruthTable(n, values))
)

tables_with_order = small_tables.flatmap(
    lambda tt: st.permutations(list(range(tt.n))).map(lambda order: (tt, order))
)


common = settings(
    max_examples=60, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# bit-level invariants
# ----------------------------------------------------------------------
@given(b=st.integers(0, 2**20), pos=st.integers(0, 20), val=st.integers(0, 1))
@common
def test_insert_extract_inverse(b, pos, val):
    merged = insert_bit(b, pos, val)
    assert extract_bit(merged, pos) == (b, val)
    assert popcount(merged) == popcount(b) + val


@given(mask=st.integers(0, 2**16 - 1), word=st.integers(0, 2**16 - 1))
@common
def test_spread_compress_galois(mask, word):
    packed = compress_assignment(word, mask)
    spread = spread_assignment(packed, mask)
    assert spread == word & mask
    assert compress_assignment(spread, mask) == packed


# ----------------------------------------------------------------------
# entropy bound (the paper's preliminary inequality)
# ----------------------------------------------------------------------
@given(n=st.integers(1, 200), data=st.data())
@common
def test_binomial_entropy_inequality(n, data):
    k = data.draw(st.integers(0, n))
    assert log2_binomial(n, k) <= n * binary_entropy(k / n) + 1e-9


# ----------------------------------------------------------------------
# truth-table invariants
# ----------------------------------------------------------------------
@given(tables_with_order)
@common
def test_permute_preserves_multiset(tt_order):
    tt, order = tt_order
    permuted = tt.permute(list(order))
    assert sorted(permuted.values.tolist()) == sorted(tt.values.tolist())


@given(small_tables, st.data())
@common
def test_shannon_expansion(tt, data):
    if tt.n == 0:
        return
    var = data.draw(st.integers(0, tt.n - 1))
    lo, hi = tt.cofactor(var, 0), tt.cofactor(var, 1)
    for a in range(1 << tt.n):
        bits = [(a >> i) & 1 for i in range(tt.n)]
        reduced = bits[:var] + bits[var + 1:]
        branch = hi if bits[var] else lo
        assert tt.evaluate_packed(a) == branch(*reduced)


# ----------------------------------------------------------------------
# OBDD size invariants
# ----------------------------------------------------------------------
@given(tables_with_order)
@common
def test_width_oracle_matches_manager(tt_order):
    tt, order = tt_order
    mgr = BDD(tt.n, list(order))
    root = mgr.from_truth_table(tt)
    assert mgr.level_widths(root) == count_subfunctions(tt, list(order))


@given(tables_with_order)
@common
def test_chain_matches_width_oracle(tt_order):
    tt, order = tt_order
    diagram = build_diagram(tt, list(order))
    assert diagram.mincost == sum(count_subfunctions(tt, list(order)))
    assert diagram.to_truth_table() == tt


@given(tables_with_order)
@common
def test_width_bounded_by_levels_above_and_below(tt_order):
    # Width at level k is at most min(2^k, #dependent functions of the
    # remaining variables) — the classical sanity bound behind the
    # "OBDDs are exponential for some function" counting argument.
    tt, order = tt_order
    widths = count_subfunctions(tt, list(order))
    for k, width in enumerate(widths):
        remaining = tt.n - k  # variables at this level and below
        dependent = (1 << (1 << remaining)) - (1 << (1 << (remaining - 1)))
        assert width <= 1 << k
        assert width <= dependent


@given(small_tables)
@common
def test_negation_preserves_obdd_profile(tt):
    order = list(range(tt.n))
    assert count_subfunctions(tt, order) == count_subfunctions(~tt, order)


# ----------------------------------------------------------------------
# FS optimality invariants
# ----------------------------------------------------------------------
@given(small_tables)
@common
def test_fs_is_lower_bound_over_sampled_orders(tt):
    result = run_fs(tt)
    import itertools

    for order in itertools.permutations(range(tt.n)):
        assert result.mincost <= sum(count_subfunctions(tt, list(order)))


@given(small_tables)
@common
def test_fs_equals_bruteforce(tt):
    assert run_fs(tt).mincost == brute_force_optimal(tt).mincost


@given(small_tables)
@common
def test_fs_negation_invariance(tt):
    # Complementing the function cannot change the minimum OBDD size.
    assert run_fs(tt).mincost == run_fs(~tt).mincost


@given(small_tables, st.data())
@common
def test_fs_variable_renaming_invariance(tt, data):
    perm = data.draw(st.permutations(list(range(tt.n))))
    assert run_fs(tt).mincost == run_fs(tt.permute(list(perm))).mincost


@given(small_tables, st.data())
@common
def test_lemma9_split_identity(tt, data):
    k = data.draw(st.integers(0, tt.n))
    assert mincost_by_split(tt, k).mincost == run_fs(tt).mincost


@given(small_tables)
@common
def test_opt_obdd_agrees_with_fs(tt):
    assert opt_obdd(tt).mincost == run_fs(tt).mincost


@given(small_tables)
@common
def test_zdd_fs_matches_zdd_manager(tt):
    result = run_fs(tt, rule=ReductionRule.ZDD)
    z = ZDD(tt.n, list(result.order))
    root = z.from_truth_table(tt)
    assert z.size(root, include_terminals=False) == result.mincost


@given(small_tables)
@common
def test_fs_restriction_monotone(tt):
    # Restricting a variable cannot increase the minimum OBDD size
    # (the restricted function's subfunction set is a subset).
    if tt.n <= 1:
        return
    full = run_fs(tt).mincost
    restricted = run_fs(tt.cofactor(0, 0)).mincost
    assert restricted <= full + 1  # +1: the removed variable's own node
