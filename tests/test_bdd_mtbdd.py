"""Unit tests for the MTBDD manager."""

import random

import pytest

from repro.bdd import MTBDD, mtbdd_size
from repro.errors import DimensionError, OrderingError
from repro.truth_table import TruthTable


@pytest.fixture
def m():
    return MTBDD(3)


class TestTerminals:
    def test_terminal_allocation(self, m):
        t5 = m.terminal(5)
        assert m.is_terminal(t5)
        assert m.terminal_value(t5) == 5

    def test_terminal_deduplication(self, m):
        assert m.terminal(7) == m.terminal(7)

    def test_distinct_values_distinct_terminals(self, m):
        assert m.terminal(1) != m.terminal(2)

    def test_terminal_level(self, m):
        assert m.level(m.terminal(0)) == 3


class TestReduction:
    def test_equal_children_merge(self, m):
        t = m.terminal(4)
        assert m.make(0, t, t) == t

    def test_unique_table(self, m):
        a, b = m.terminal(0), m.terminal(1)
        assert m.make(1, a, b) == m.make(1, a, b)

    def test_bad_order(self):
        with pytest.raises(OrderingError):
            MTBDD(2, order=[0, 2])


class TestBuildEvaluate:
    @pytest.mark.parametrize("seed", range(6))
    def test_roundtrip_multivalued(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        order = list(range(n))
        rnd.shuffle(order)
        tt = TruthTable.random(n, seed=seed + 400, num_values=4)
        m = MTBDD(n, order)
        root = m.from_truth_table(tt)
        assert m.to_truth_table(root) == tt

    def test_constant_table(self):
        m = MTBDD(2)
        root = m.from_truth_table(TruthTable.constant(2, 9))
        assert m.is_terminal(root) and m.terminal_value(root) == 9

    def test_arity_check(self):
        with pytest.raises(DimensionError):
            MTBDD(2).from_truth_table(TruthTable.constant(3, 0))

    def test_evaluate_arity(self, m):
        with pytest.raises(DimensionError):
            m.evaluate(m.terminal(0), [0])

    def test_boolean_special_case_matches_bdd_widths(self):
        # On a 0/1 table an MTBDD is structurally an OBDD.
        from repro.truth_table import count_subfunctions

        tt = TruthTable.random(4, seed=77)
        order = [2, 0, 3, 1]
        m = MTBDD(4, order)
        root = m.from_truth_table(tt)
        assert m.level_widths(root) == count_subfunctions(tt, order)


class TestArithmetic:
    def test_add(self):
        m = MTBDD(2)
        f = m.from_truth_table(TruthTable(2, [0, 1, 2, 3]))
        g = m.from_truth_table(TruthTable(2, [3, 2, 1, 0]))
        assert m.to_truth_table(m.add(f, g)) == TruthTable(2, [3, 3, 3, 3])

    def test_max_min(self):
        m = MTBDD(2)
        f = m.from_truth_table(TruthTable(2, [0, 5, 2, 1]))
        g = m.from_truth_table(TruthTable(2, [3, 1, 2, 4]))
        assert m.to_truth_table(m.max(f, g)) == TruthTable(2, [3, 5, 2, 4])
        assert m.to_truth_table(m.min(f, g)) == TruthTable(2, [0, 1, 2, 1])

    def test_apply_custom(self):
        m = MTBDD(2)
        f = m.from_truth_table(TruthTable(2, [0, 1, 2, 3]))
        doubled = m.apply(lambda a, b: a * b, f, m.terminal(2))
        assert m.to_truth_table(doubled) == TruthTable(2, [0, 2, 4, 6])

    def test_apply_result_reduced(self):
        m = MTBDD(1)
        f = m.from_truth_table(TruthTable(1, [2, 3]))
        g = m.from_truth_table(TruthTable(1, [3, 2]))
        total = m.add(f, g)  # constant 5 -> must collapse to a terminal
        assert m.is_terminal(total) and m.terminal_value(total) == 5


class TestSizeHelper:
    def test_mtbdd_size_counts_value_terminals(self):
        tt = TruthTable(2, [0, 1, 2, 0])
        assert mtbdd_size(tt, [0, 1]) == mtbdd_size(tt, [1, 0])
        # 3 distinct reachable terminals plus internal nodes
        internal = mtbdd_size(tt, [0, 1], include_terminals=False)
        assert mtbdd_size(tt, [0, 1]) == internal + 3

    def test_ordering_sensitivity(self):
        # g(x) = value of (x0, x1 pair) chosen by x2: orderings differ.
        values = [0, 1, 2, 3, 0, 0, 1, 1]
        tt = TruthTable(3, values)
        sizes = {mtbdd_size(tt, list(p)) for p in
                 __import__("itertools").permutations(range(3))}
        assert len(sizes) > 1
