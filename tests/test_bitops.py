"""Unit tests for the bit-manipulation helpers."""

import math

import numpy as np
import pytest

from repro._bitops import (
    all_submasks,
    bits_of,
    compress_assignment,
    extract_bit,
    insert_bit,
    insert_bit_indices,
    iter_submasks,
    mask_of,
    popcount,
    popcount_buffer,
    rank_in_mask,
    spread_assignment,
    subsets_of_size,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount((1 << 12) - 1) == 12

    def test_sparse(self):
        assert popcount(0b1000100010001) == 4

    @pytest.mark.parametrize("value", [1, 7, 255, 12345, 2**40 + 1])
    def test_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")


class TestBitsMask:
    def test_bits_of_empty(self):
        assert bits_of(0) == []

    def test_bits_of_order(self):
        assert bits_of(0b101001) == [0, 3, 5]

    def test_mask_of_roundtrip(self):
        for mask in (0, 1, 0b1010, 0b111, 1 << 20):
            assert mask_of(bits_of(mask)) == mask

    def test_mask_of_iterable(self):
        assert mask_of(v for v in (0, 2)) == 0b101


class TestFastPathsMatchReference:
    """The optimized popcount/bits_of (``int.bit_count`` and lowest-set-bit
    stripping) must agree everywhere with the straightforward versions
    they replaced."""

    @staticmethod
    def _popcount_reference(mask):
        return bin(mask).count("1")

    @staticmethod
    def _bits_of_reference(mask):
        result = []
        bit = 0
        while mask:
            if mask & 1:
                result.append(bit)
            mask >>= 1
            bit += 1
        return result

    def _cases(self):
        yield from range(1 << 10)
        state = 0x9E3779B97F4A7C15
        for _ in range(200):
            state = (state * 6364136223846793005 + 1442695040888963407) % (
                1 << 128
            )
            yield state

    def test_popcount_equivalence(self):
        for mask in self._cases():
            assert popcount(mask) == self._popcount_reference(mask)

    def test_bits_of_equivalence(self):
        for mask in self._cases():
            assert bits_of(mask) == self._bits_of_reference(mask)

    def test_numpy_integer_masks_still_work(self):
        # DP code sometimes hands these helpers numpy scalars; the int()
        # coercion keeps them on the fast path (np.uint64 has no
        # bit_count and overflows under `mask & -mask`).
        for value in (0, 1, 0b1011, (1 << 30) | 5):
            for dtype in (np.int64, np.uint64, np.int32):
                mask = dtype(value)
                assert popcount(mask) == self._popcount_reference(value)
                assert bits_of(mask) == self._bits_of_reference(value)


class TestRank:
    def test_rank_first(self):
        assert rank_in_mask(0b1011, 0) == 0

    def test_rank_middle(self):
        assert rank_in_mask(0b1011, 1) == 1

    def test_rank_skips_holes(self):
        assert rank_in_mask(0b1011, 3) == 2

    def test_rank_requires_membership(self):
        with pytest.raises(ValueError):
            rank_in_mask(0b1011, 2)


class TestSubsets:
    def test_counts_match_binomial(self):
        universe = 0b111111
        for k in range(7):
            assert len(list(subsets_of_size(universe, k))) == math.comb(6, k)

    def test_subsets_are_submasks(self):
        universe = 0b1011010
        for sub in subsets_of_size(universe, 3):
            assert sub & ~universe == 0
            assert popcount(sub) == 3

    def test_non_contiguous_universe(self):
        got = set(subsets_of_size(0b10100, 1))
        assert got == {0b00100, 0b10000}

    def test_k_out_of_range(self):
        assert list(subsets_of_size(0b111, 4)) == []
        assert list(subsets_of_size(0b111, -1)) == []

    def test_zero_k(self):
        assert list(subsets_of_size(0b111, 0)) == [0]

    def test_all_submasks_count(self):
        mask = 0b10110
        subs = list(all_submasks(mask))
        assert len(subs) == 2 ** popcount(mask)
        assert set(subs) == {s for s in range(mask + 1) if s & ~mask == 0}


class TestBitInsertExtract:
    @pytest.mark.parametrize("b,pos,val,expected", [
        (0b0, 0, 1, 0b1),
        (0b1, 0, 0, 0b10),
        (0b101, 1, 1, 0b1011),
        (0b11, 2, 0, 0b011),
        (0b11, 2, 1, 0b111),
    ])
    def test_insert_examples(self, b, pos, val, expected):
        assert insert_bit(b, pos, val) == expected

    def test_insert_extract_roundtrip(self):
        for b in range(32):
            for pos in range(6):
                for val in (0, 1):
                    combined = insert_bit(b, pos, val)
                    back, out = extract_bit(combined, pos)
                    assert (back, out) == (b, val)

    def test_vectorized_matches_scalar(self):
        for pos in range(5):
            idx0, idx1 = insert_bit_indices(16, pos)
            for b in range(16):
                assert idx0[b] == insert_bit(b, pos, 0)
                assert idx1[b] == insert_bit(b, pos, 1)

    def test_vectorized_partition(self):
        # idx0 and idx1 together must cover 0..2*size-1 exactly once.
        idx0, idx1 = insert_bit_indices(8, 2)
        union = np.concatenate([idx0, idx1])
        assert sorted(union.tolist()) == list(range(16))


class TestAssignmentSpread:
    def test_spread_examples(self):
        assert spread_assignment(0b11, 0b101) == 0b101
        assert spread_assignment(0b10, 0b101) == 0b100
        assert spread_assignment(0, 0b1111) == 0

    def test_compress_inverse(self):
        mask = 0b101101
        for packed in range(1 << popcount(mask)):
            word = spread_assignment(packed, mask)
            assert compress_assignment(word, mask) == packed
            assert word & ~mask == 0

    def test_compress_ignores_nonmembers(self):
        assert compress_assignment(0b111111, 0b101) == 0b11


class TestIterSubmasks:
    def test_no_size_matches_all_submasks(self):
        for mask in (0, 0b1, 0b1011, 0b110101):
            assert list(iter_submasks(mask)) == list(all_submasks(mask))

    def test_sized_matches_subsets_of_size(self):
        mask = 0b110101
        for k in range(popcount(mask) + 2):
            assert (list(iter_submasks(mask, k))
                    == list(subsets_of_size(mask, k)))

    def test_sized_yields_exactly_the_right_masks(self):
        mask = 0b101101
        for k in range(popcount(mask) + 1):
            got = list(iter_submasks(mask, k))
            want = [sub for sub in all_submasks(mask) if popcount(sub) == k]
            assert sorted(got) == sorted(want)
            assert len(got) == math.comb(popcount(mask), k)

    def test_reversed_predecessors_align_with_ascending_bits(self):
        # The documented property the batch kernel leans on: dropping
        # one bit from ``mask`` via reversed(iter_submasks(mask, k-1))
        # excludes members in the same ascending order bits_of walks.
        for mask in (0b111, 0b10110, 0b1101001):
            k = popcount(mask)
            preds = list(reversed(list(iter_submasks(mask, k - 1))))
            assert [mask ^ p for p in preds] == [1 << i for i in bits_of(mask)]


class TestPopcountBuffer:
    def reference(self, data):
        return sum(popcount(b) for b in bytes(data))

    def test_small_buffer_matches_scalar_sum(self):
        for blob in (b"", b"\x00", b"\xff", b"\x01\x80\x7f",
                     bytes(range(256))):
            assert popcount_buffer(blob) == self.reference(blob)

    def test_large_buffer_takes_numpy_path(self):
        rng = np.random.default_rng(17)
        blob = rng.integers(0, 256, size=5000, dtype=np.uint8).tobytes()
        assert len(blob) >= 1 << 12  # the vectorized threshold
        assert popcount_buffer(blob) == self.reference(blob)

    def test_accepts_bytearray_and_memoryview(self):
        blob = bytearray(b"\x0f\xf0\xaa")
        assert popcount_buffer(blob) == 12
        assert popcount_buffer(memoryview(blob)) == 12
