"""Unit tests for Lemma 9 and OptOBDD(k, alpha)."""

import random

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    ReductionRule,
    THEOREM10_ALPHAS,
    effective_levels,
    mincost_by_split,
    opt_obdd,
    run_fs,
)
from repro.errors import DimensionError
from repro.functions import achilles_heel
from repro.quantum import ClassicalMinimumFinder, QuantumMinimumFinder, QueryLedger
from repro.truth_table import TruthTable, count_subfunctions


class TestLemma9:
    @pytest.mark.parametrize("seed", range(4))
    def test_identity_at_every_division_point(self, seed):
        n = 5
        tt = TruthTable.random(n, seed=seed)
        optimum = run_fs(tt).mincost
        for k in range(n + 1):
            assert mincost_by_split(tt, k).mincost == optimum

    def test_identity_for_zdd(self):
        tt = TruthTable.random(4, seed=10)
        optimum = run_fs(tt, rule=ReductionRule.ZDD).mincost
        assert mincost_by_split(tt, 2, rule=ReductionRule.ZDD).mincost == optimum

    def test_per_split_upper_bounds(self):
        # Every split cost upper-bounds the optimum; the best one attains it.
        tt = TruthTable.random(5, seed=11)
        optimum = run_fs(tt).mincost
        check = mincost_by_split(tt, 2)
        assert all(cost >= optimum for cost in check.per_split.values())
        assert check.per_split[check.best_kmask] == optimum

    def test_division_point_range_checked(self):
        with pytest.raises(DimensionError):
            mincost_by_split(TruthTable.random(3, seed=0), 4)


class TestEffectiveLevels:
    def test_strictly_increasing(self):
        levels = effective_levels(20, THEOREM10_ALPHAS)
        assert levels == sorted(set(levels))
        assert all(1 <= lv < 20 for lv in levels)

    def test_small_n_collapses(self):
        levels = effective_levels(3, THEOREM10_ALPHAS)
        assert levels == [1, 2] or levels == [1]

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            effective_levels(10, [0.5, 0.2])
        with pytest.raises(ValueError):
            effective_levels(10, [0.0, 0.5])

    def test_rounding(self):
        assert effective_levels(10, [0.18, 0.34]) == [2, 3]


class TestOptOBDD:
    @pytest.mark.parametrize("seed", range(6))
    def test_optimal_with_classical_finder(self, seed):
        n = 3 + seed % 4
        tt = TruthTable.random(n, seed=seed + 20)
        result = opt_obdd(tt)
        assert result.mincost == run_fs(tt).mincost

    def test_order_achieves_mincost(self):
        tt = TruthTable.random(6, seed=26)
        result = opt_obdd(tt)
        assert sum(count_subfunctions(tt, list(result.order))) == result.mincost

    def test_custom_alphas(self):
        tt = TruthTable.random(6, seed=27)
        result = opt_obdd(tt, alphas=(0.3, 0.6))
        assert result.mincost == run_fs(tt).mincost
        assert result.levels == (2, 4)

    def test_achilles(self):
        result = opt_obdd(achilles_heel(3))
        assert result.size == 8

    def test_zdd_rule(self):
        tt = TruthTable.random(5, seed=28)
        result = opt_obdd(tt, rule=ReductionRule.ZDD)
        assert result.mincost == run_fs(tt, rule=ReductionRule.ZDD).mincost

    def test_tiny_n_falls_back(self):
        tt = TruthTable.random(1, seed=29)
        result = opt_obdd(tt)
        assert result.mincost == run_fs(tt).mincost


class TestQuantumFinderIntegration:
    def test_exact_mode_charges_ledger(self):
        ledger = QueryLedger()
        finder = QuantumMinimumFinder(ledger=ledger, epsilon=1e-4,
                                      rng=random.Random(0))
        tt = TruthTable.random(6, seed=30)
        result = opt_obdd(tt, finder=finder)
        assert result.mincost == run_fs(tt).mincost
        assert ledger.total > 0
        assert ledger.invocations >= 1

    def test_counters_record_queries(self):
        counters = OperationCounters()
        finder = QuantumMinimumFinder(epsilon=1e-4, rng=random.Random(1),
                                      counters=counters)
        tt = TruthTable.random(5, seed=31)
        opt_obdd(tt, finder=finder, counters=counters)
        assert counters.oracle_queries > 0

    def test_sampled_mode_output_always_valid(self):
        # Theorem 1: the produced DD is always valid; optimal w.h.p.
        finder = QuantumMinimumFinder(epsilon=0.05, mode="sampled",
                                      rng=random.Random(2))
        tt = TruthTable.random(5, seed=32)
        result = opt_obdd(tt, finder=finder)
        # the ordering is a permutation and the cost is what that
        # ordering actually achieves
        assert sorted(result.order) == list(range(5))
        assert sum(count_subfunctions(tt, list(result.order))) == result.mincost

    def test_sampled_mode_usually_optimal(self):
        optimum_hits = 0
        tt = TruthTable.random(5, seed=33)
        optimum = run_fs(tt).mincost
        for trial in range(10):
            finder = QuantumMinimumFinder(epsilon=0.01, mode="sampled",
                                          rng=random.Random(trial))
            if opt_obdd(tt, finder=finder).mincost == optimum:
                optimum_hits += 1
        assert optimum_hits >= 8
