"""Unit tests for the interchange formats (PLA, BLIF, diagram JSON)."""

import pytest

from repro.core import ReductionRule, build_diagram, reconstruct_minimum_diagram, run_fs
from repro.errors import DimensionError, ParseError
from repro.io import (
    diagram_from_json,
    diagram_to_json,
    load_diagram,
    parse_blif,
    parse_pla,
    read_blif,
    read_pla,
    save_diagram,
    write_pla,
)
from repro.truth_table import TruthTable


EXAMPLE_PLA = """\
# two-output example
.i 3
.o 2
.p 3
1-1 10
011 01
110 11
.e
"""


class TestPlaParse:
    def test_declarations(self):
        pla = parse_pla(EXAMPLE_PLA)
        assert pla.num_inputs == 3
        assert pla.num_outputs == 2
        assert len(pla.cubes) == 3

    def test_truth_tables_semantics(self):
        tables = parse_pla(EXAMPLE_PLA).truth_tables()
        f0, f1 = tables
        # output 0: cubes 1-1 and 110 (positions little-endian)
        assert f0(1, 0, 1) == 1 and f0(1, 1, 1) == 1
        assert f0(1, 1, 0) == 1
        assert f0(0, 1, 1) == 0
        # output 1: cubes 011 and 110
        assert f1(0, 1, 1) == 1 and f1(1, 1, 0) == 1
        assert f1(1, 0, 1) == 0

    def test_single_output_helper(self):
        pla = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert pla.truth_table() == TruthTable.from_callable(2, lambda a, b: a & b)
        with pytest.raises(DimensionError):
            parse_pla(EXAMPLE_PLA).truth_table()

    def test_glued_output_form(self):
        pla = parse_pla(".i 2\n.o 1\n111\n.e\n")
        assert pla.cubes == [("11", "1")]

    def test_labels(self):
        pla = parse_pla(".i 2\n.o 1\n.ilb a b\n.ob f\n11 1\n.e\n")
        assert pla.input_labels == ["a", "b"]
        assert pla.output_labels == ["f"]

    @pytest.mark.parametrize("bad", [
        ".o 1\n11 1\n",                 # missing .i
        ".i 2\n.o 1\n1x 1\n.e\n",       # bad symbol
        ".i 2\n.o 1\n111 1\n.e\n",      # wrong width
        ".i 2\n.o 1\n.p 5\n11 1\n.e\n", # wrong product count
        ".i 2\n.o 1\n.type z\n.e\n",    # unsupported type
        ".i 2\n.o 1\n.frob\n.e\n",      # unknown directive
    ])
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_pla(bad)

    def test_comment_and_blank_lines(self):
        pla = parse_pla("# header\n.i 1\n\n.o 1\n1 1  # cube\n.e\n")
        assert pla.cubes == [("1", "1")]

    def test_ilb_count_must_match_i(self):
        with pytest.raises(ParseError, match=r"\.ilb names 3 inputs"):
            parse_pla(".i 2\n.o 1\n.ilb a b c\n11 1\n.e\n")

    def test_ob_count_must_match_o(self):
        with pytest.raises(ParseError, match=r"\.ob names 1 outputs"):
            parse_pla(".i 2\n.o 2\n.ob f\n11 10\n.e\n")

    def test_matching_label_counts_accepted(self):
        pla = parse_pla(".i 3\n.o 2\n.ilb a b c\n.ob f g\n1-1 10\n.e\n")
        assert pla.input_labels == ["a", "b", "c"]
        assert pla.output_labels == ["f", "g"]

    def test_glued_cube_before_o_declaration(self):
        # The single-field form is ambiguous until '.o 1' has been seen;
        # the parser must say so instead of a generic malformed-cube error.
        with pytest.raises(ParseError, match=r"before the \.o declaration"):
            parse_pla(".i 2\n111\n.o 1\n.e\n")

    def test_glued_cube_in_multi_output_pla(self):
        with pytest.raises(ParseError, match="2-output"):
            parse_pla(".i 2\n.o 2\n1110\n.e\n")


class TestPlaWrite:
    @pytest.mark.parametrize("seed", range(6))
    def test_roundtrip(self, seed):
        tt = TruthTable.random(5, seed=seed)
        text = write_pla(tt)
        assert parse_pla(text).truth_table() == tt

    def test_merge_produces_fewer_cubes(self):
        tt = TruthTable.constant(4, 1)
        merged = write_pla(tt, merge=True)
        plain = write_pla(tt, merge=False)
        assert merged.count("\n") < plain.count("\n")
        assert parse_pla(merged).truth_table() == tt

    def test_empty_onset(self):
        tt = TruthTable.constant(3, 0)
        assert parse_pla(write_pla(tt)).truth_table() == tt

    def test_rejects_multivalued(self):
        with pytest.raises(DimensionError):
            write_pla(TruthTable(1, [0, 2]))

    def test_file_roundtrip(self, tmp_path):
        tt = TruthTable.random(4, seed=9)
        path = tmp_path / "f.pla"
        path.write_text(write_pla(tt))
        assert read_pla(path).truth_table() == tt


EXAMPLE_BLIF = """\
.model half_adder
.inputs a b
.outputs s c
.names a b s
10 1
01 1
.names a b c
11 1
.end
"""


class TestBlif:
    def test_parse_structure(self):
        net = parse_blif(EXAMPLE_BLIF)
        assert net.name == "half_adder"
        assert net.inputs == ["a", "b"]
        assert net.outputs == ["s", "c"]
        assert len(net.nodes) == 2

    def test_semantics(self):
        net = parse_blif(EXAMPLE_BLIF)
        assert net.truth_table("s") == TruthTable.from_callable(
            2, lambda a, b: a ^ b
        )
        assert net.truth_table("c") == TruthTable.from_callable(
            2, lambda a, b: a & b
        )

    def test_default_output(self):
        net = parse_blif(EXAMPLE_BLIF)
        assert net.truth_table() == net.truth_table("s")

    def test_offset_cover(self):
        text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        net = parse_blif(text)
        assert net.truth_table() == TruthTable.from_callable(
            2, lambda a, b: 0 if (a and b) else 1
        )

    def test_constant_node(self):
        text = ".model m\n.inputs a\n.outputs f\n.names f\n1\n.end\n"
        assert parse_blif(text).truth_table() == TruthTable.constant(1, 1)

    def test_empty_cover_is_zero(self):
        text = ".model m\n.inputs a\n.outputs f\n.names f\n.end\n"
        assert parse_blif(text).truth_table() == TruthTable.constant(1, 0)

    def test_dont_care_pattern(self):
        text = ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n1-0 1\n.end\n"
        net = parse_blif(text)
        assert net.truth_table() == TruthTable.from_callable(
            3, lambda a, b, c: a & (1 - c)
        )

    def test_continuation_lines(self):
        text = (".model m\n.inputs a \\\nb\n.outputs f\n"
                ".names a b f\n11 1\n.end\n")
        assert parse_blif(text).inputs == ["a", "b"]

    @pytest.mark.parametrize("bad", [
        ".model m\n.outputs f\n.names f\n1\n.end\n",       # no inputs
        ".model m\n.inputs a\n.outputs f\n11 1\n.end\n",   # cube outside .names
        ".model m\n.inputs a\n.outputs f\n.latch a f\n",   # sequential
        ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end\n",  # mixed
        ".model m\n.inputs a\n.outputs f\n.names a f\nxx 1\n.end\n",      # bad cube
    ])
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_blif(bad)

    def test_optimizer_pipeline(self, tmp_path):
        path = tmp_path / "ha.blif"
        path.write_text(EXAMPLE_BLIF)
        net = read_blif(path)
        result = run_fs(net.truth_table("s"))
        assert result.mincost == 3  # XOR of two variables


class TestDiagramJson:
    @pytest.mark.parametrize("rule", list(ReductionRule))
    def test_roundtrip(self, rule):
        if rule is ReductionRule.MTBDD:
            tt = TruthTable.random(4, seed=20, num_values=3)
        else:
            tt = TruthTable.random(4, seed=20)
        diagram = reconstruct_minimum_diagram(tt, run_fs(tt, rule=rule))
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.to_truth_table() == tt
        assert restored.order == diagram.order
        assert restored.mincost == diagram.mincost

    def test_file_roundtrip(self, tmp_path):
        tt = TruthTable.random(3, seed=21)
        diagram = build_diagram(tt, [2, 0, 1])
        path = tmp_path / "d.json"
        save_diagram(diagram, path)
        assert load_diagram(path).to_truth_table() == tt

    @pytest.mark.parametrize("mutate", [
        lambda p: p.update(format="bogus"),
        lambda p: p.update(order=[0, 0, 1, 2]),
        lambda p: p["nodes"].update({"2": [99, 0, 1]}),
        lambda p: p.update(root=999),
        lambda p: p.update(terminal_values=[0]),
    ])
    def test_validation(self, mutate):
        import json

        tt = TruthTable.random(4, seed=22)
        diagram = build_diagram(tt, [0, 1, 2, 3])
        payload = json.loads(diagram_to_json(diagram))
        mutate(payload)
        with pytest.raises(ParseError):
            diagram_from_json(json.dumps(payload))

    def test_not_json(self):
        with pytest.raises(ParseError):
            diagram_from_json("{nope")
