"""Unit tests for diagram reconstruction (Theorem 1's 'produces a minimum
OBDD together with the ordering')."""

import pytest

from repro.bdd import BDD, MTBDD, ZDD
from repro.core import (
    ReductionRule,
    build_diagram,
    reconstruct_minimum_diagram,
    run_fs,
)
from repro.errors import OrderingError
from repro.functions import achilles_heel
from repro.truth_table import TruthTable, count_subfunctions


class TestBuildDiagram:
    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_bdd(self, seed):
        tt = TruthTable.random(4, seed=seed)
        order = [2, 0, 3, 1]
        diagram = build_diagram(tt, order)
        assert diagram.to_truth_table() == tt

    def test_widths_match_oracle(self):
        tt = TruthTable.random(5, seed=10)
        order = [4, 2, 0, 1, 3]
        diagram = build_diagram(tt, order)
        assert diagram.level_widths() == count_subfunctions(tt, order)

    def test_size_matches_manager(self):
        tt = TruthTable.random(4, seed=11)
        order = [0, 3, 1, 2]
        diagram = build_diagram(tt, order)
        mgr = BDD(4, order)
        assert diagram.size == mgr.size(mgr.from_truth_table(tt))

    def test_invalid_order(self):
        with pytest.raises(OrderingError):
            build_diagram(TruthTable.random(3, seed=0), [0, 1, 1])

    def test_constant_function(self):
        diagram = build_diagram(TruthTable.constant(3, 1), [0, 1, 2])
        assert diagram.mincost == 0
        assert diagram.root == 1
        assert diagram.size == 1  # only the T terminal is reachable

    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_zdd(self, seed):
        tt = TruthTable.random(4, seed=100 + seed)
        order = [1, 3, 0, 2]
        diagram = build_diagram(tt, order, ReductionRule.ZDD)
        assert diagram.to_truth_table() == tt
        z = ZDD(4, order)
        assert diagram.mincost == z.size(z.from_truth_table(tt),
                                         include_terminals=False)

    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_mtbdd(self, seed):
        tt = TruthTable.random(4, seed=200 + seed, num_values=4)
        order = [3, 1, 2, 0]
        diagram = build_diagram(tt, order, ReductionRule.MTBDD)
        assert diagram.to_truth_table() == tt
        m = MTBDD(4, order)
        assert diagram.mincost == m.size(m.from_truth_table(tt),
                                         include_terminals=False)

    def test_node_children_precede_parents(self):
        diagram = build_diagram(TruthTable.random(5, seed=12), list(range(5)))
        for node_id, (_, lo, hi) in diagram.nodes.items():
            assert lo < node_id and hi < node_id


class TestReconstructMinimum:
    @pytest.mark.parametrize("rule", list(ReductionRule))
    def test_minimum_diagram_is_correct_and_minimal(self, rule):
        if rule is ReductionRule.MTBDD:
            tt = TruthTable.random(4, seed=13, num_values=3)
        else:
            tt = TruthTable.random(4, seed=13)
        result = run_fs(tt, rule=rule)
        diagram = reconstruct_minimum_diagram(tt, result)
        assert diagram.to_truth_table() == tt
        assert diagram.mincost == result.mincost
        assert diagram.order == result.order

    def test_achilles_minimum_shape(self):
        tt = achilles_heel(3)
        result = run_fs(tt)
        diagram = reconstruct_minimum_diagram(tt, result)
        # Figure 1 left: one node per level.
        assert diagram.level_widths() == [1, 1, 1, 1, 1, 1]
        assert diagram.size == 8

    def test_terminal_values_boolean(self):
        tt = TruthTable.random(3, seed=14)
        diagram = reconstruct_minimum_diagram(tt, run_fs(tt))
        assert diagram.terminal_values == [0, 1]

    def test_terminal_values_mtbdd(self):
        tt = TruthTable(2, [5, 9, 5, 7])
        diagram = reconstruct_minimum_diagram(
            tt, run_fs(tt, rule=ReductionRule.MTBDD)
        )
        assert diagram.terminal_values == [5, 7, 9]
        assert diagram.evaluate([0, 0]) == 5
