"""Unit tests for the expression layer (Corollary 2's representations)."""

import itertools

import pytest

from repro.errors import DimensionError, EvaluationError, ParseError
from repro.expr import (
    CNF,
    DNF,
    FALSE,
    TRUE,
    And,
    Circuit,
    Const,
    Not,
    Or,
    Var,
    Xor,
    parse,
    ripple_carry_adder_circuit,
    to_truth_table,
)
from repro.functions import adder_bit
from repro.truth_table import TruthTable


class TestAst:
    def test_evaluate_basic(self):
        e = And((Var(0), Or((Var(1), Not(Var(2))))))
        assert e.evaluate([1, 0, 0]) == 1
        assert e.evaluate([1, 0, 1]) == 0

    def test_operator_sugar(self):
        e = (Var(0) & Var(1)) | ~Var(2) ^ Const(1)
        tt = to_truth_table(e)
        ref = TruthTable.from_callable(3, lambda a, b, c: (a & b) | ((1 - c) ^ 1))
        assert tt == ref

    def test_variables_and_num_vars(self):
        e = Xor((Var(1), Var(4)))
        assert e.variables() == frozenset({1, 4})
        assert e.num_vars == 5

    def test_constants(self):
        assert TRUE.evaluate([]) == 1
        assert FALSE.evaluate([]) == 0
        assert TRUE.num_vars == 0

    def test_repr_roundtrip_through_parser(self):
        e = And((Var(0), Not(Var(1))))
        assert to_truth_table(parse(repr(e))) == to_truth_table(e)


class TestParser:
    @pytest.mark.parametrize("text,fn", [
        ("x0 & x1", lambda a, b: a & b),
        ("x0 | x1", lambda a, b: a | b),
        ("x0 ^ x1", lambda a, b: a ^ b),
        ("~x0", lambda a, b: 1 - a),
        ("~(x0 | x1)", lambda a, b: 1 - (a | b)),
        ("x0 & x1 | x0 & ~x1", lambda a, b: a),
        ("1 ^ x0", lambda a, b: 1 - a),
        ("0 | x1", lambda a, b: b),
    ])
    def test_semantics(self, text, fn):
        expr = parse(text)
        tt = to_truth_table(expr, 2)
        assert tt == TruthTable.from_callable(2, fn)

    def test_precedence(self):
        # & binds tighter than ^ binds tighter than |
        e = parse("x0 | x1 ^ x2 & x3")
        ref = TruthTable.from_callable(4, lambda a, b, c, d: a | (b ^ (c & d)))
        assert to_truth_table(e) == ref

    def test_named_variables_get_indices_in_order(self):
        e = parse("alpha & beta | alpha")
        assert e.num_vars == 2
        assert to_truth_table(e) == TruthTable.from_callable(2, lambda a, b: a)

    def test_explicit_indices(self):
        assert parse("x5").num_vars == 6

    @pytest.mark.parametrize("bad", ["x0 &", "(x0", "x0 x1", "&", "x0 ) x1", ""])
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestNormalForms:
    def test_dnf_semantics(self):
        d = DNF.of([[(0, True), (1, True)], [(2, False)]])
        tt = to_truth_table(d)
        ref = TruthTable.from_callable(3, lambda a, b, c: (a & b) | (1 - c))
        assert tt == ref

    def test_empty_dnf_is_false(self):
        assert to_truth_table(DNF.of([]), 2) == TruthTable.constant(2, 0)

    def test_cnf_semantics(self):
        c = CNF.of([[(0, True), (1, True)], [(2, False)]])
        tt = to_truth_table(c)
        ref = TruthTable.from_callable(3, lambda a, b, c_: (a | b) & (1 - c_))
        assert tt == ref

    def test_empty_cnf_is_true(self):
        assert to_truth_table(CNF.of([]), 2) == TruthTable.constant(2, 1)

    def test_contradictory_literals_rejected(self):
        with pytest.raises(ParseError):
            DNF.of([[(0, True), (0, False)]])

    def test_negative_index_rejected(self):
        with pytest.raises(DimensionError):
            CNF.of([[(-1, True)]])

    def test_dimacs(self):
        c = CNF.from_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n")
        assert c.num_vars == 3
        tt = to_truth_table(c)
        ref = TruthTable.from_callable(
            3, lambda a, b, c_: (a | (1 - b)) & (b | c_)
        )
        assert tt == ref

    def test_duplicate_literals_deduped(self):
        d = DNF.of([[(0, True), (0, True)]])
        assert d.terms == (((0, True),),)

    def test_reprs(self):
        assert "x0" in repr(DNF.of([[(0, True)]]))
        assert "~x1" in repr(CNF.of([[(1, False)]]))


class TestCircuit:
    def test_forward_evaluation(self):
        circuit = Circuit(inputs=["a", "b"], output="y")
        circuit.add_gate("and", "t", ["a", "b"])
        circuit.add_gate("not", "y", ["t"])
        assert circuit.evaluate([1, 1]) == 0
        assert circuit.evaluate([1, 0]) == 1

    def test_all_gate_kinds(self):
        cases = {
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: a ^ b,
            "nand": lambda a, b: 1 - (a & b),
            "nor": lambda a, b: 1 - (a | b),
            "xnor": lambda a, b: 1 - (a ^ b),
        }
        for kind, fn in cases.items():
            circuit = Circuit(inputs=["a", "b"], output="y")
            circuit.add_gate(kind, "y", ["a", "b"])
            for a, b in itertools.product((0, 1), repeat=2):
                assert circuit.evaluate([a, b]) == fn(a, b), kind

    def test_unknown_gate(self):
        with pytest.raises(ParseError):
            Circuit(inputs=["a"], output="y").add_gate("maj", "y", ["a"])

    def test_double_drive_rejected(self):
        circuit = Circuit(inputs=["a", "b"], output="y")
        circuit.add_gate("and", "y", ["a", "b"])
        with pytest.raises(ParseError):
            circuit.add_gate("or", "y", ["a", "b"])

    def test_shadowing_input_rejected(self):
        with pytest.raises(ParseError):
            Circuit(inputs=["a"], output="a").add_gate("not", "a", ["a"])

    def test_undriven_wire(self):
        circuit = Circuit(inputs=["a"], output="y")
        circuit.add_gate("and", "y", ["a", "ghost"])
        with pytest.raises(EvaluationError):
            circuit.evaluate([1])

    def test_ripple_carry_matches_reference(self):
        for bits in (2, 3):
            for output in range(bits + 1):
                circuit = ripple_carry_adder_circuit(bits, output)
                assert to_truth_table(circuit) == adder_bit(bits, output)


class TestToTruthTable:
    def test_truth_table_passthrough(self):
        tt = TruthTable.random(3, seed=1)
        assert to_truth_table(tt) is tt

    def test_truth_table_n_mismatch(self):
        with pytest.raises(DimensionError):
            to_truth_table(TruthTable.random(3, seed=2), n=4)

    def test_widening(self):
        # An expression over x0 tabulated over 3 variables.
        tt = to_truth_table(parse("x0"), n=3)
        assert tt == TruthTable.projection(3, 0)

    def test_too_narrow_rejected(self):
        with pytest.raises(DimensionError):
            to_truth_table(parse("x3"), n=2)

    def test_plain_callable_requires_n(self):
        with pytest.raises(DimensionError):
            to_truth_table(lambda a: a)

    def test_manager_node_pair(self):
        from repro.bdd import BDD

        mgr = BDD(2)
        f = mgr.apply_xor(mgr.var(0), mgr.var(1))
        assert to_truth_table((mgr, f)) == TruthTable.from_callable(
            2, lambda a, b: a ^ b
        )

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_truth_table(42)
