"""Unit tests for graph-derived set families."""

import networkx as nx
import pytest

from repro.core import ReductionRule, run_fs
from repro.errors import DimensionError
from repro.functions import (
    cliques,
    family_truth_table,
    family_zdd,
    independent_sets,
    matchings,
    maximal_independent_sets,
    vertex_covers,
)


class TestIndependentSets:
    @pytest.mark.parametrize("n,count", [(1, 2), (2, 3), (3, 5), (4, 8), (5, 13)])
    def test_path_graph_fibonacci(self, n, count):
        family, _ = independent_sets(nx.path_graph(n))
        assert len(family) == count

    def test_cycle_graph_lucas(self):
        family, _ = independent_sets(nx.cycle_graph(5))
        assert len(family) == 11

    def test_all_sets_are_independent(self):
        graph = nx.gnp_random_graph(6, 0.5, seed=1)
        family, index = independent_sets(graph)
        rev = {i: v for v, i in index.items()}
        for s in family:
            vertices = [rev[i] for i in s]
            assert not any(
                graph.has_edge(a, b)
                for a in vertices for b in vertices if a != b
            )

    def test_empty_graph_powerset(self):
        family, _ = independent_sets(nx.empty_graph(4))
        assert len(family) == 16

    def test_complete_graph_singletons(self):
        family, _ = independent_sets(nx.complete_graph(4))
        assert len(family) == 5  # empty set + 4 singletons


class TestDualities:
    def test_vertex_covers_complement_independent_sets(self):
        graph = nx.cycle_graph(5)
        covers, index = vertex_covers(graph)
        rev = {i: v for v, i in index.items()}
        for cover in covers:
            for u, v in graph.edges:
                assert index[u] in cover or index[v] in cover

    def test_matchings_of_path(self):
        family, _ = matchings(nx.path_graph(4))  # 3 edges
        assert len(family) == 5

    def test_matchings_are_matchings(self):
        graph = nx.gnp_random_graph(6, 0.5, seed=2)
        family, index = matchings(graph)
        rev = {i: e for e, i in index.items()}
        for m in family:
            touched = set()
            for i in m:
                u, v = rev[i]
                assert u not in touched and v not in touched
                touched |= {u, v}

    def test_cliques_of_complete_graph(self):
        family, _ = cliques(nx.complete_graph(4))
        assert len(family) == 16  # every subset is a clique

    def test_cliques_are_cliques(self):
        graph = nx.gnp_random_graph(6, 0.5, seed=3)
        family, index = cliques(graph)
        rev = {i: v for v, i in index.items()}
        for c in family:
            vertices = [rev[i] for i in c]
            assert all(
                graph.has_edge(a, b)
                for a in vertices for b in vertices if a != b
            )


class TestZddIntegration:
    def test_maximal_independent_sets_vs_networkx(self):
        for seed in range(4):
            graph = nx.gnp_random_graph(6, 0.5, seed=seed)
            ours = set(maximal_independent_sets(graph))
            _, index = independent_sets(graph)
            reference = {
                frozenset(index[v] for v in clique)
                for clique in nx.find_cliques(nx.complement(graph))
            }
            assert ours == reference

    def test_family_zdd_counts(self):
        family, index = independent_sets(nx.path_graph(5))
        manager, root = family_zdd(family, len(index))
        assert manager.count(root) == len(family)

    def test_family_zdd_validation(self):
        with pytest.raises(DimensionError):
            family_zdd([{5}], 3)

    def test_optimal_zdd_ordering_for_graph_family(self):
        family, index = independent_sets(nx.cycle_graph(5))
        table = family_truth_table(len(index), family)
        result = run_fs(table, rule=ReductionRule.ZDD)
        manager, root = family_zdd(family, len(index))
        natural = manager.size(root, include_terminals=False)
        assert result.mincost <= natural
